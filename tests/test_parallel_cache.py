"""Tests for the worker-side dataset memoisation and the configurable
sparse-backend promotion thresholds (PR satellites).

The load-once guarantee is asserted two ways: in-process (a counting
dataset builder registered for the test is called exactly once across
repeated ``Pipeline.run`` calls) and across a process pool (every worker's
``dataset_cache`` counters — carried in ``RunResult.extra`` — report exactly
one miss for the shared dataset spec).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Pipeline
from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.datasets.registry import DATASETS
from repro.graph.sparse import (
    SparseAdjacency,
    propagation_matrix,
    resolved_sparse_thresholds,
    sparse_threshold_overrides,
)
from repro.models import build_model
from repro.parallel import (
    clear_dataset_cache,
    dataset_cache_info,
    load_dataset_cached,
    run_seeded,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


# ----------------------------------------------------------------------
# dataset cache unit behaviour
# ----------------------------------------------------------------------
class TestDatasetCache:
    def test_second_load_hits(self):
        first = load_dataset_cached("brazil_air_sim", seed=0)
        second = load_dataset_cached("brazil_air_sim", seed=0)
        assert first is second
        info = dataset_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_distinct_specs_never_alias(self):
        by_seed0 = load_dataset_cached("brazil_air_sim", seed=0)
        by_seed1 = load_dataset_cached("brazil_air_sim", seed=1)
        other = load_dataset_cached("europe_air_sim", seed=0)
        assert by_seed0 is not by_seed1 and by_seed0 is not other
        assert dataset_cache_info()["misses"] == 3

    def test_lru_eviction_respects_limit(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE_SIZE", "2")
        load_dataset_cached("brazil_air_sim", seed=0)
        load_dataset_cached("brazil_air_sim", seed=1)
        load_dataset_cached("brazil_air_sim", seed=2)  # evicts seed 0
        assert dataset_cache_info()["size"] == 2
        load_dataset_cached("brazil_air_sim", seed=0)  # rebuilt
        assert dataset_cache_info()["misses"] == 4

    def test_zero_limit_disables_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE_SIZE", "0")
        load_dataset_cached("brazil_air_sim", seed=0)
        load_dataset_cached("brazil_air_sim", seed=0)
        info = dataset_cache_info()
        assert info["misses"] == 2 and info["size"] == 0

    def test_builder_called_once_per_process(self):
        calls = {"count": 0}

        def counting_builder(seed: int = 0):
            calls["count"] += 1
            return DATASETS["brazil_air_sim"](seed)

        DATASETS.add("counting_ds_test", counting_builder)
        try:
            pipeline = (
                Pipeline()
                .dataset("counting_ds_test")
                .model("gae")
                .rethink(update_omega_every=2, update_graph_every=2)
                .training(pretrain_epochs=2, rethink_epochs=2)
            )
            pipeline.seed(0).run()
            pipeline.seed(1).run()
            pipeline.seed(2).run()
            assert calls["count"] == 1
        finally:
            DATASETS.unregister("counting_ds_test")


# ----------------------------------------------------------------------
# load-once guarantee across a process pool
# ----------------------------------------------------------------------
_CACHED_SPEC = {
    "dataset": "brazil_air_sim",
    "model": "gae",
    "variant": "rethink",
    "seed": 0,
    "training": {"pretrain_epochs": 2, "rethink_epochs": 2},
    "rethink": {"overrides": {"update_omega_every": 2, "update_graph_every": 2}},
}


class TestWorkerSideCache:
    def test_pool_workers_load_dataset_once(self):
        results = run_seeded(_CACHED_SPEC, [0, 1, 2, 3], jobs=2)
        by_pid = {}
        for result in results:
            info = result.extra["dataset_cache"]
            by_pid.setdefault(info["pid"], []).append(info)
        assert len(by_pid) >= 1
        for pid, infos in by_pid.items():
            # Workers run one spec over one dataset: exactly one miss each,
            # however many trials the pool handed to that worker.
            assert max(info["misses"] for info in infos) == 1, (pid, infos)
        trials_in_busiest = max(len(infos) for infos in by_pid.values())
        if trials_in_busiest > 1:
            busiest = max(by_pid.values(), key=len)
            assert max(info["hits"] for info in busiest) >= trials_in_busiest - 1

    def test_serial_run_trials_also_memoises(self):
        results = run_seeded(_CACHED_SPEC, [0, 1, 2], jobs=1)
        final = results[-1].extra["dataset_cache"]
        assert final["misses"] == 1 and final["hits"] >= 2


# ----------------------------------------------------------------------
# clean error surfacing across the pool boundary
# ----------------------------------------------------------------------
class TestPoolErrorSurfacing:
    def test_registry_errors_pickle_round_trip(self):
        """Raised-in-worker errors must survive the pool's pickle round-trip
        (a failing round-trip turns a clean message into BrokenProcessPool)."""
        import pickle

        from repro.errors import UnknownEntryError, UnknownVariantError

        error = UnknownEntryError("dataset", "nope", ["a", "b"])
        restored = pickle.loads(pickle.dumps(error))
        assert str(restored) == str(error)
        assert (restored.kind, restored.name, restored.available) == (
            "dataset",
            "nope",
            ["a", "b"],
        )
        variant_error = pickle.loads(pickle.dumps(UnknownVariantError("weird")))
        assert str(variant_error) == str(UnknownVariantError("weird"))

    def test_cli_rejects_non_integer_seed_list(self, tmp_path, capsys):
        import json

        from repro.api.cli import main

        spec_path = tmp_path / "trial.json"
        spec_path.write_text(
            json.dumps({"dataset": "brazil_air_sim", "model": "gae", "seed": ["a"]})
        )
        assert main([str(spec_path)]) == 2
        assert "seed list" in capsys.readouterr().err


# ----------------------------------------------------------------------
# configurable sparse promotion thresholds
# ----------------------------------------------------------------------
class TestSparseThresholds:
    def test_defaults(self):
        assert resolved_sparse_thresholds() == (256, 0.25)

    def test_env_vars_override_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_NODE_THRESHOLD", "10")
        monkeypatch.setenv("REPRO_SPARSE_DENSITY_THRESHOLD", "1.0")
        assert resolved_sparse_thresholds() == (10, 1.0)
        dense = np.zeros((20, 20))
        dense[0, 1] = dense[1, 0] = 1.0
        assert isinstance(propagation_matrix(dense), SparseAdjacency)

    def test_context_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_NODE_THRESHOLD", "1000000")
        with sparse_threshold_overrides(10, 1.0):
            assert resolved_sparse_thresholds() == (10, 1.0)
        assert resolved_sparse_thresholds()[0] == 1000000

    def test_rethink_config_forces_sparse_backend(self, tiny_graph):
        """90 nodes stays dense by default; config thresholds promote it."""
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = RethinkConfig(
            epochs=2,
            pretrain_epochs=1,
            stop_at_convergence=False,
            sparse_node_threshold=10,
            sparse_density_threshold=1.0,
        )
        trainer = RethinkTrainer(model, config)
        trainer.fit(tiny_graph)
        assert isinstance(trainer.adj_norm_, SparseAdjacency)
        # and the process-wide default is untouched afterwards
        assert resolved_sparse_thresholds() == (256, 0.25)

    def test_default_config_keeps_small_graph_dense(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = RethinkConfig(epochs=2, pretrain_epochs=1, stop_at_convergence=False)
        trainer = RethinkTrainer(model, config)
        trainer.fit(tiny_graph)
        assert isinstance(trainer.adj_norm_, np.ndarray)

    def test_threshold_spec_roundtrip(self):
        spec = (
            Pipeline()
            .dataset("brazil_air_sim")
            .model("gae")
            .rethink(sparse_node_threshold=64, sparse_density_threshold=0.5)
            .spec()
        )
        overrides = Pipeline.from_spec(spec.to_json()).spec().rethink.overrides
        assert overrides["sparse_node_threshold"] == 64
        assert overrides["sparse_density_threshold"] == 0.5
