"""Unit tests for the autodiff engine: gradients checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, no_grad, stack_gradients, stack_parameters


def numerical_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of a numpy array."""
    grad = np.zeros_like(value)
    flat = value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn(value)
        flat[index] = original - eps
        minus = fn(value)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autodiff gradient against finite differences for one input."""
    rng = np.random.default_rng(seed)
    value = rng.normal(0.0, 1.0, size=shape)
    x = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(x)
    loss.backward()
    auto_grad = x.grad

    def numeric_fn(arr):
        return build_loss(Tensor(arr)).item()

    num_grad = numerical_gradient(numeric_fn, value.copy())
    np.testing.assert_allclose(auto_grad, num_grad, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_addition_gradient(self):
        check_gradient(lambda x: (x + 3.0).sum(), (4, 3))

    def test_subtraction_gradient(self):
        check_gradient(lambda x: (10.0 - x).sum(), (4, 3))

    def test_multiplication_gradient(self):
        check_gradient(lambda x: (x * x * 2.0).sum(), (3, 3))

    def test_division_gradient(self):
        check_gradient(lambda x: (x / 2.5).sum(), (2, 5))

    def test_reciprocal_gradient(self):
        check_gradient(lambda x: (1.0 / (x * x + 2.0)).sum(), (3, 2))

    def test_power_gradient(self):
        check_gradient(lambda x: ((x * x + 1.0) ** 1.5).sum(), (3, 3))

    def test_negative_power_gradient(self):
        check_gradient(lambda x: ((x * x + 1.0) ** -1.0).sum(), (3, 3))

    def test_negation_gradient(self):
        check_gradient(lambda x: (-x).sum(), (2, 2))

    def test_matmul_gradient(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 4))
        check_gradient(lambda x: (x @ Tensor(other)).sum(), (5, 3))

    def test_matmul_both_sides_gradient(self):
        check_gradient(lambda x: (x @ x.T).sum(), (4, 3))

    def test_transpose_gradient(self):
        check_gradient(lambda x: (x.T * 2.0).sum(), (3, 5))

    def test_reshape_gradient(self):
        check_gradient(lambda x: (x.reshape(6) * 3.0).sum(), (2, 3))

    def test_getitem_gradient(self):
        check_gradient(lambda x: x[np.array([0, 2])].sum(), (4, 3))


class TestNonlinearities:
    def test_exp_gradient(self):
        check_gradient(lambda x: x.exp().sum(), (3, 3))

    def test_log_gradient(self):
        check_gradient(lambda x: (x * x + 1.0).log().sum(), (3, 3))

    def test_relu_gradient(self):
        # Shift away from zero so finite differences are stable.
        check_gradient(lambda x: (x + 0.3).relu().sum(), (4, 4))

    def test_sigmoid_gradient(self):
        check_gradient(lambda x: x.sigmoid().sum(), (4, 4))

    def test_tanh_gradient(self):
        check_gradient(lambda x: x.tanh().sum(), (4, 4))

    def test_softplus_gradient(self):
        check_gradient(lambda x: x.softplus().sum(), (4, 4))

    def test_softplus_matches_log1p_exp(self):
        x = Tensor(np.array([-3.0, 0.0, 2.0, 30.0]))
        np.testing.assert_allclose(x.softplus().numpy(), np.log1p(np.exp(np.minimum(x.data, 30.0))), rtol=1e-6)

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        y = x.clip(-1.0, 1.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all_gradient(self):
        check_gradient(lambda x: x.sum() * 2.0, (3, 4))

    def test_sum_axis_gradient(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_sum_keepdims_gradient(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda x: x.mean() * 5.0, (4, 4))

    def test_mean_axis_gradient(self):
        check_gradient(lambda x: (x.mean(axis=1) ** 2.0).sum(), (3, 5))


class TestBroadcasting:
    def test_broadcast_row_vector(self):
        rng = np.random.default_rng(2)
        row = rng.normal(size=(1, 4))
        check_gradient(lambda x: (x + Tensor(row)).sum(), (3, 4))

    def test_broadcast_gradient_accumulates_on_small_operand(self):
        row = Tensor(np.ones((1, 4)), requires_grad=True)
        x = Tensor(np.ones((3, 4)))
        loss = (x * row).sum()
        loss.backward()
        np.testing.assert_allclose(row.grad, np.full((1, 4), 3.0))

    def test_broadcast_scalar(self):
        scalar = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(np.ones((3, 3)))
        (x * scalar).sum().backward()
        assert scalar.grad == pytest.approx(9.0)


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = (x * 3.0).sum() + (x * x).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, 3.0 + 2.0 * x.data)

    def test_no_grad_context_disables_graph(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            y = (x * 2.0).sum()
        assert y.requires_grad is False
        assert y._backward is None

    def test_no_grad_is_thread_local(self):
        """Regression: no_grad() on one thread must not disable autograd on
        another (the flag used to be a module-level global)."""
        import threading

        x = Tensor(np.ones(4), requires_grad=True)
        inside_no_grad = threading.Event()
        main_done = threading.Event()
        results = {}

        def evaluation_thread():
            with no_grad():
                results["eval"] = (x * 2.0).sum().requires_grad
                inside_no_grad.set()
                # Hold the no_grad context open while the main thread records.
                main_done.wait(timeout=5.0)

        worker = threading.Thread(target=evaluation_thread)
        worker.start()
        assert inside_no_grad.wait(timeout=5.0)
        try:
            results["main"] = (x * 3.0).sum().requires_grad
        finally:
            main_done.set()
            worker.join(timeout=5.0)

        assert results["eval"] is False
        assert results["main"] is True

    def test_no_grad_restores_state_after_exception(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert (x * 2.0).sum().requires_grad is True

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = (x * 2.0).detach()
        assert y.requires_grad is False

    def test_zero_grad_resets(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_as_tensor_passthrough(self):
        x = Tensor(np.ones(3))
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_stack_parameters_and_gradients_align(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (a.sum() + (b * 2.0).sum()).backward()
        params = stack_parameters([a, b])
        grads = stack_gradients([a, b])
        assert params.shape == grads.shape == (7,)
        np.testing.assert_allclose(grads, [1.0] * 4 + [2.0] * 3)

    def test_stack_gradients_zero_for_untouched(self):
        a = Tensor(np.ones(2), requires_grad=True)
        grads = stack_gradients([a])
        np.testing.assert_allclose(grads, [0.0, 0.0])

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))

    def test_diamond_graph_gradient(self):
        # y = f(x) used twice: gradients from both paths must add up.
        check_gradient(lambda x: ((x.sigmoid() * x.sigmoid()).sum()), (3, 3))
