"""REP002 fixture: dense calls outside the guarded packages are fine."""


def not_flagged(adjacency):
    # repro.fix_rep002_out_of_scope is not under core/nn/minibatch.
    return adjacency.to_dense()
