"""REP002 fixture: dense materialization inside repro.core."""

import numpy as np


def violations(adjacency, features):
    dense = adjacency.to_dense()  # flagged: O(N^2) materialization
    adj = np.asarray(adjacency, dtype=np.float64)  # flagged: densifies an adjacency
    x = np.asarray(features, dtype=np.float64)  # fine: features are dense anyway
    return dense, adj, x


def suppressed(adjacency):
    return adjacency.to_dense()  # repro: noqa[REP002] fixture: waiver syntax under test
