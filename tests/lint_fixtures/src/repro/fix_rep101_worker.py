"""REP101 fixture helpers: wrappers that forward callables into the pool."""

from repro.parallel import parallel_map


def run_distributed(fn, items):
    """One level of forwarding: ``fn`` crosses the pool boundary here."""
    return parallel_map(fn, items, jobs=2)


def run_wrapped(fn, items):
    """Two levels of forwarding: ``fn`` flows through ``run_distributed``."""
    return run_distributed(fn, items)
