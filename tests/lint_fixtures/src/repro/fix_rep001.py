"""REP001 fixture: unseeded randomness in library code."""

import numpy as np


def violations():
    a = np.random.rand(3)  # flagged: global-stream draw
    rng = np.random.default_rng()  # flagged: argless, seeds from OS entropy
    return a, rng


def suppressed():
    return np.random.rand(3)  # repro: noqa[REP001] fixture: waiver syntax under test


def compliant(seed: int):
    rng = np.random.default_rng(seed)
    state = np.random.get_state()  # state read, not a draw
    return rng.standard_normal(3), state
