"""REP007 fixture: swallowed exceptions in library code."""

from repro.errors import ArtifactCorruptError, StoreError


def violations(fn):
    try:
        return fn()
    except:  # flagged: bare except eats KeyboardInterrupt too
        return None


def violations_silent_catchall(fn):
    try:
        return fn()
    except Exception:  # flagged: silently swallows every failure
        pass
    try:
        return fn()
    except (ValueError, BaseException):  # flagged: catch-all hidden in a tuple
        ...


def suppressed(fn):
    try:
        return fn()
    except Exception:  # repro: noqa[REP007] fixture: waiver syntax under test
        pass


def compliant(fn, fallback):
    try:
        return fn()
    except ArtifactCorruptError:
        return fallback  # specific type, deliberate degrade
    except Exception as error:
        # catch-all is fine when the failure is handled, not hidden
        raise StoreError(f"fn failed: {error}") from error
