"""REP006 fixture: bare assert / raise Exception in library code."""

from repro.errors import ConfigError


def violations(value):
    assert value > 0  # flagged: vanishes under python -O
    if value > 10:
        raise Exception("too big")  # flagged: untyped
    return value


def suppressed(value):
    assert value > 0  # repro: noqa[REP006] fixture: waiver syntax under test
    return value


def compliant(value):
    if value <= 0:
        raise ConfigError(f"value must be positive, got {value}")
    return value
