"""REP003 fixture: backward() without release_graph()/no_grad() in scope."""

from repro.nn.tensor import no_grad


def leaks(loss):
    loss.backward()  # flagged: nothing releases the graph in this scope
    return loss


def releases(loss):
    loss.backward()
    loss.release_graph()
    return loss


def evaluates(model, x):
    with no_grad():
        out = model(x)
    out.backward()  # no_grad in scope counts as handled
    return out


def suppressed(loss):
    loss.backward()  # repro: noqa[REP003] fixture: waiver syntax under test
    return loss
