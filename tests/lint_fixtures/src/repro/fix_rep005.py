"""REP005 fixture: environment reads bypassing repro.env."""

import os

from repro.env import env_str


def violations():
    a = os.environ.get("REPRO_FIXTURE")  # flagged
    b = os.environ["REPRO_FIXTURE"]  # flagged
    c = os.getenv("REPRO_FIXTURE")  # flagged
    return a, b, c


def writes_are_fine(value):
    # Assigning (tests, env_override) is not a read; only reads are flagged.
    os.environ["REPRO_FIXTURE"] = value


def suppressed():
    return os.getenv("REPRO_FIXTURE")  # repro: noqa[REP005] fixture: waiver syntax under test


def compliant():
    return env_str("REPRO_STORE_DIR", "artifacts")
