"""Import-cycle fixture (half B): closes the cycle with a lazy import."""


def transform(item):
    from repro.fix_cycle_a import helper  # function-level import closing the cycle

    return helper(item) * 2
