"""REP004 fixture: unpicklable callables handed to the process pool."""

from repro.parallel import parallel_map, run_trials


def square(x):
    return x * x


def violations(items, specs):
    doubled = parallel_map(lambda x: 2 * x, items, jobs=2)  # flagged: lambda

    def local_fn(x):  # closure: defined inside this function
        return x + 1

    bumped = parallel_map(local_fn, items, jobs=2)  # flagged: closure
    return doubled, bumped, run_trials(specs, jobs=2)  # fine: specs are data


def suppressed(items):
    return parallel_map(lambda x: x, items)  # repro: noqa[REP004] fixture: waiver syntax under test


def compliant(items):
    return parallel_map(square, items, jobs=2)
