"""REP101 fixture: unpicklable callables entering the pool through wrappers.

REP004 sees the direct ``parallel_map(lambda ...)`` site; these calls go
through the forwarding wrappers in ``fix_rep101_worker`` instead, which
only the inter-procedural pass can connect to the pool boundary.
"""

from repro.fix_rep101_worker import run_distributed, run_wrapped


def square(x):
    return x * x


def violations(items):
    first = run_distributed(lambda x: x + 1, items)  # flagged: lambda through a wrapper

    def local_fn(x):
        return x - 1

    second = run_wrapped(local_fn, items)  # flagged: closure through two wrappers
    return first, second


def suppressed(items):
    return run_distributed(lambda x: x, items)  # repro: noqa[REP101] fixture: waiver syntax under test


def compliant(items):
    return run_wrapped(square, items)
