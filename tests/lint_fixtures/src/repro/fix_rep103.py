"""REP103 fixture: RNG misuse hiding three calls below the pool boundary.

The file-scope REP001 flags the syntax; the waivers on those lines leave
REP103 to prove the *reachability* half — the draw is only a finding
because the call chain connects it to a pool submission.
"""

import numpy as np

from repro.parallel import parallel_map


def _leaf_draw(n):
    return np.random.rand(n)  # repro: noqa[REP001] fixture: REP103 exercises the reachability path


def _middle(n):
    return _leaf_draw(n) + 1.0


def work(item):
    return _middle(item)  # flagged via: work -> _middle -> _leaf_draw


def constant_seeded(item):
    rng = np.random.default_rng(0)  # flagged: every trial would share one stream
    return rng.random(item)


def waived_draw(n):
    return np.random.rand(n)  # repro: noqa[REP001,REP103] fixture: waiver syntax under test


def sweep(items):
    a = parallel_map(work, items, jobs=2)
    b = parallel_map(constant_seeded, items, jobs=2)
    c = parallel_map(waived_draw, items, jobs=2)
    return a, b, c


def compliant(item, rng):
    return rng.normal(size=item)  # seeded Generator arrives as a parameter
