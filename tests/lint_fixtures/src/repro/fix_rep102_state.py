"""REP102 fixture: module-level state mutated by worker-reachable code."""

from repro.parallel import parallel_map

_RESULTS = {}
_COUNTER = 0


def record(key, value):
    global _COUNTER
    _RESULTS[key] = value  # flagged: module dict written inside a worker
    _COUNTER += 1  # flagged: module counter rebound inside a worker
    return _COUNTER


def work(item):
    return record(item, item * 2)


def sweep(items):
    return parallel_map(work, items, jobs=2)
