"""REP102 fixture: cross-module attribute write from worker-reachable code."""

import repro.fix_rep102_state as state_mod
from repro.parallel import parallel_map


def poke(item):
    state_mod.limit = item  # flagged: writes another module's attribute
    return item


def waived(item):
    state_mod.limit = item  # repro: noqa[REP102] fixture: waiver syntax under test
    return item


def sweep(items):
    return parallel_map(poke, items, jobs=2)


def sweep_waived(items):
    return parallel_map(waived, items, jobs=2)


def compliant(item, sink):
    sink[item] = item  # parameter-held state: fine
    return sink
