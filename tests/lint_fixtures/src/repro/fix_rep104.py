"""REP104 fixture: configuration resolved after the pool fan-out."""

from repro.env import env_flag
from repro.parallel import parallel_map


def work(item):
    if env_flag("REPRO_FIXTURE_FLAG"):  # flagged: env read inside a worker
        return item * 2
    return item


def waived(item):
    return item if env_flag("REPRO_FIXTURE_FLAG") else 0  # repro: noqa[REP104] fixture: waiver syntax under test


def sweep(items):
    return parallel_map(work, items, jobs=2)


def sweep_waived(items):
    return parallel_map(waived, items, jobs=2)


def compliant(items, doubled):
    return [item * 2 if doubled else item for item in items]
