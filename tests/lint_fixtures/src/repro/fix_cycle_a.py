"""Import-cycle fixture (half A): the analysis must tolerate cycles."""

from repro.fix_cycle_b import transform
from repro.parallel import parallel_map


def work(item):
    return transform(item)


def sweep(items):
    return parallel_map(work, items, jobs=2)


def helper(item):
    return item + 1
