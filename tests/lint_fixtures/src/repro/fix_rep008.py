"""REP008 fixture: print() in library code."""

from repro.observability.log import get_logger


def violations(epoch, loss):
    print(f"epoch {epoch} loss {loss:.4f}")  # flagged: library print
    if epoch % 20 == 0:
        print("checkpoint", epoch)  # flagged: multiple args, still print


def suppressed(report):
    print(report)  # repro: noqa[REP008] fixture: waiver syntax under test


def compliant(epoch, loss):
    get_logger("fixture").info("epoch %d loss %.4f", epoch, loss)
    logged = "print-free"
    return logged
