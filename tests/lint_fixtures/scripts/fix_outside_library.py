"""Library-scoped rules must skip files outside a ``src`` root."""

import numpy as np


def scripts_may_do_script_things(value):
    assert value > 0  # REP006 is library-scoped; not flagged here
    return np.random.rand(3)  # REP001 is library-scoped; not flagged here
