"""Tests for the Hungarian matching and the ACC / NMI / ARI metrics."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.metrics import (
    adjusted_rand_index,
    align_labels,
    clustering_accuracy,
    evaluate_clustering,
    hungarian_matching,
    normalized_mutual_information,
)
from repro.metrics.hungarian import hungarian_algorithm
from repro.metrics.nmi import contingency_matrix


class TestHungarian:
    def test_pure_implementation_matches_scipy(self, rng):
        for _ in range(10):
            cost = rng.random((5, 5))
            rows_a, cols_a = hungarian_algorithm(cost)
            rows_b, cols_b = linear_sum_assignment(cost)
            assert cost[rows_a, cols_a].sum() == pytest.approx(cost[rows_b, cols_b].sum())

    def test_pure_implementation_rectangular(self, rng):
        cost = rng.random((3, 6))
        rows, cols = hungarian_algorithm(cost)
        assert len(rows) == 3
        rows_b, cols_b = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(cost[rows_b, cols_b].sum())

    def test_matching_identity(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        mapping = hungarian_matching(labels, labels)
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_matching_permutation(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([2, 2, 0, 0, 1, 1])
        mapping = hungarian_matching(true, pred)
        assert mapping[2] == 0 and mapping[0] == 1 and mapping[1] == 2

    def test_align_labels_recovers_permutation(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([1, 1, 2, 2, 0, 0])
        np.testing.assert_array_equal(align_labels(true, pred), true)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hungarian_matching(np.array([0, 1]), np.array([0]))


class TestAccuracy:
    def test_perfect_clustering(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert clustering_accuracy(labels, labels) == 1.0

    def test_permutation_invariance(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([1, 1, 0, 0])
        assert clustering_accuracy(true, pred) == 1.0

    def test_partial_agreement(self):
        true = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 1, 1, 1, 1])
        assert clustering_accuracy(true, pred) == pytest.approx(5.0 / 6.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            clustering_accuracy(np.array([]), np.array([]))

    def test_all_in_one_cluster(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.zeros(6, dtype=int)
        assert clustering_accuracy(true, pred) == pytest.approx(2.0 / 6.0)


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([5, 5, 3, 3])
        assert normalized_mutual_information(true, pred) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        true = np.repeat([0, 1], 500)
        pred = rng.integers(0, 2, size=1000)
        assert normalized_mutual_information(true, pred) < 0.05

    def test_single_cluster_prediction_zero(self):
        true = np.array([0, 0, 1, 1])
        pred = np.zeros(4, dtype=int)
        assert normalized_mutual_information(true, pred) == 0.0

    def test_geometric_average_option(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([0, 0, 1, 2, 2, 2])
        arithmetic = normalized_mutual_information(true, pred, average="arithmetic")
        geometric = normalized_mutual_information(true, pred, average="geometric")
        assert 0.0 < arithmetic <= 1.0 and 0.0 < geometric <= 1.0

    def test_unknown_average_raises(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([0, 1]), np.array([0, 1]), average="max")

    def test_contingency_matrix_counts(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 1])
        matrix = contingency_matrix(true, pred)
        assert matrix.sum() == 4
        assert matrix[0, 0] == 1 and matrix[1, 1] == 2


class TestARI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(true, pred) == pytest.approx(1.0)

    def test_random_partition_near_zero(self, rng):
        true = np.repeat([0, 1, 2], 300)
        pred = rng.integers(0, 3, size=900)
        assert abs(adjusted_rand_index(true, pred)) < 0.05

    def test_can_be_negative(self):
        # Systematic disagreement worse than chance.
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(true, pred) <= 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([0, 1]), np.array([0]))


class TestReport:
    def test_evaluate_clustering_bundles_metrics(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([1, 1, 0, 0, 2, 2])
        report = evaluate_clustering(true, pred)
        assert report.accuracy == pytest.approx(1.0)
        assert report.nmi == pytest.approx(1.0)
        assert report.ari == pytest.approx(1.0)

    def test_report_percentages_and_str(self):
        report = evaluate_clustering(np.array([0, 1, 0, 1]), np.array([0, 1, 1, 1]))
        percentages = report.as_percentages()
        assert percentages["acc"] == pytest.approx(100.0 * report.accuracy)
        assert "ACC=" in str(report)

    def test_report_dict_keys(self):
        report = evaluate_clustering(np.array([0, 1]), np.array([0, 1]))
        assert set(report.as_dict()) == {"acc", "nmi", "ari"}
