"""Tests for the minibatch graph training subsystem.

Covers the CSR substrate operations (induced subgraphs, seeded neighbour
sampling), the METIS-free partitioner, the three loaders, the minibatch
training path of :class:`~repro.core.rethink.RethinkTrainer` — including
the acceptance-criteria guarantees: the full-batch loader reproduces the
legacy full-graph trainer to 1e-10, and minibatch runs are deterministic
for equal seeds across ``jobs=1`` and ``jobs=4`` process pools.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Pipeline
from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.errors import ConfigError, SpecError
from repro.graph.sparse import SparseAdjacency, propagation_matrix
from repro.minibatch import (
    ClusterLoader,
    ClusterPartitioner,
    FullBatchLoader,
    NeighborLoader,
    build_loader,
)
from repro.graph.generators import attributed_sbm_graph
from repro.models import build_model
from repro.parallel import run_seeded


def random_sparse(n: int, p: float, seed: int) -> tuple:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < p).astype(float)
    dense = np.triu(dense, 1)
    dense = dense + dense.T
    return dense, SparseAdjacency.from_dense(dense)


# ----------------------------------------------------------------------
# CSR substrate: induced subgraphs and neighbour sampling
# ----------------------------------------------------------------------
class TestInducedSubgraph:
    def test_matches_dense_slicing(self, rng):
        dense, sparse = random_sparse(70, 0.1, 3)
        nodes = rng.permutation(70)[:25]  # deliberately unsorted
        block = sparse.induced_subgraph(nodes)
        assert np.array_equal(block.to_dense(), dense[np.ix_(nodes, nodes)])

    def test_identity_and_empty(self):
        dense, sparse = random_sparse(30, 0.15, 1)
        assert np.array_equal(
            sparse.induced_subgraph(np.arange(30)).to_dense(), dense
        )
        empty = sparse.induced_subgraph(np.array([], dtype=np.int64))
        assert empty.shape == (0, 0) and empty.nnz == 0

    def test_rejects_bad_indices(self):
        _, sparse = random_sparse(20, 0.2, 0)
        with pytest.raises(ValueError):
            sparse.induced_subgraph(np.array([0, 20]))
        with pytest.raises(ValueError):
            sparse.induced_subgraph(np.array([1, 1, 2]))


class TestSampleNeighbors:
    def test_deterministic_for_equal_rng(self):
        _, sparse = random_sparse(50, 0.2, 2)
        seeds = np.array([0, 7, 13, 21])
        first = sparse.sample_neighbors(seeds, 3, np.random.default_rng(9))
        second = sparse.sample_neighbors(seeds, 3, np.random.default_rng(9))
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_fanout_and_edge_validity(self):
        dense, sparse = random_sparse(50, 0.2, 2)
        seeds = np.array([0, 7, 13, 21])
        src, dst = sparse.sample_neighbors(seeds, 3, np.random.default_rng(0))
        for seed in seeds:
            picked = dst[src == seed]
            assert picked.shape[0] == min(3, int(dense[seed].sum()))
            assert np.unique(picked).shape[0] == picked.shape[0]
            assert all(dense[seed, t] == 1.0 for t in picked)

    def test_large_fanout_keeps_all_neighbours(self):
        dense, sparse = random_sparse(40, 0.2, 4)
        seeds = np.arange(10)
        src, dst = sparse.sample_neighbors(seeds, 10_000, np.random.default_rng(0))
        assert src.shape[0] == int(dense[seeds].sum())

    def test_rejects_bad_arguments(self):
        _, sparse = random_sparse(20, 0.2, 0)
        with pytest.raises(ValueError):
            sparse.sample_neighbors(np.array([0]), 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sparse.sample_neighbors(np.array([25]), 2, np.random.default_rng(0))


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
class TestClusterPartitioner:
    def test_parts_cover_all_nodes_once(self, tiny_graph):
        partition = ClusterPartitioner(4, seed=0).partition(tiny_graph.adjacency)
        ids = np.concatenate(partition.parts)
        assert ids.shape[0] == tiny_graph.num_nodes
        assert np.unique(ids).shape[0] == tiny_graph.num_nodes
        assert partition.num_parts == 4
        assert max(partition.sizes()) <= -(-tiny_graph.num_nodes // 4)
        assert 0.0 <= partition.edge_cut_fraction <= 1.0

    def test_deterministic_per_seed(self, tiny_graph):
        first = ClusterPartitioner(3, seed=5).partition(tiny_graph.adjacency)
        second = ClusterPartitioner(3, seed=5).partition(tiny_graph.adjacency)
        assert all(np.array_equal(a, b) for a, b in zip(first.parts, second.parts))

    def test_part_of_inverts_parts(self, tiny_graph):
        partition = ClusterPartitioner(3, seed=1).partition(tiny_graph.adjacency)
        assignment = partition.part_of()
        for index, part in enumerate(partition.parts):
            assert np.all(assignment[part] == index)

    def test_more_parts_than_nodes_clamps(self):
        dense, _ = random_sparse(5, 0.5, 0)
        partition = ClusterPartitioner(10, seed=0).partition(dense)
        assert partition.num_parts <= 5
        assert sum(partition.sizes()) == 5

    def test_bfs_beats_random_split_on_edge_cut(self):
        # Two well-separated communities: BFS growth should keep most edges
        # inside parts, unlike an arbitrary node split.
        graph = attributed_sbm_graph(
            num_nodes=80,
            proportions=[0.5, 0.5],
            p_intra=0.25,
            p_inter=0.02,
            num_features=20,
            active_per_class=5,
            signal=0.4,
            noise=0.02,
            seed=2,
            name="two_blocks",
        )
        partition = ClusterPartitioner(2, seed=0).partition(graph.adjacency)
        assert partition.edge_cut_fraction < 0.5


# ----------------------------------------------------------------------
# loaders
# ----------------------------------------------------------------------
class TestFullBatchLoader:
    def test_single_batch_equals_prepare_inputs(self, tiny_graph):
        loader = FullBatchLoader(tiny_graph)
        assert loader.batches_per_epoch == 1
        (batch,) = list(loader.epoch_batches(0))
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters)
        features, adj_norm = model.prepare_inputs(tiny_graph)
        assert np.array_equal(batch.features, features)
        assert np.array_equal(np.asarray(batch.adj_norm), np.asarray(adj_norm))
        assert np.array_equal(batch.node_ids, np.arange(tiny_graph.num_nodes))


class TestClusterLoader:
    def test_epoch_covers_all_nodes_once(self, tiny_graph):
        loader = ClusterLoader(tiny_graph, batch_size=32, seed=3)
        batches = list(loader.epoch_batches(0))
        ids = np.concatenate([batch.node_ids for batch in batches])
        assert np.unique(ids).shape[0] == tiny_graph.num_nodes == ids.shape[0]

    def test_identical_sequences_for_equal_seeds(self, tiny_graph):
        first = ClusterLoader(tiny_graph, batch_size=32, seed=3)
        second = ClusterLoader(tiny_graph, batch_size=32, seed=3)
        for epoch in (0, 1, 5):
            a = [tuple(b.node_ids) for b in first.epoch_batches(epoch)]
            b = [tuple(b.node_ids) for b in second.epoch_batches(epoch)]
            assert a == b

    def test_epochs_reshuffle_batch_order(self, tiny_graph):
        loader = ClusterLoader(tiny_graph, batch_size=16, seed=3)
        orders = {
            tuple(tuple(b.node_ids) for b in loader.epoch_batches(epoch))
            for epoch in range(6)
        }
        assert len(orders) > 1  # some epoch permutes differently

    def test_batch_carries_renumbered_normalised_block(self, tiny_graph):
        loader = ClusterLoader(tiny_graph, batch_size=32, seed=0, shuffle=False)
        batch = next(loader.epoch_batches(0))
        ids = batch.node_ids
        expected = propagation_matrix(
            tiny_graph.adjacency[np.ix_(ids, ids)], self_loops=True
        )
        block = batch.adj_norm
        block = block.to_dense() if isinstance(block, SparseAdjacency) else block
        expected = (
            expected.to_dense() if isinstance(expected, SparseAdjacency) else expected
        )
        assert np.allclose(block, expected)
        assert np.array_equal(batch.features, tiny_graph.row_normalized_features()[ids])


class TestNeighborLoader:
    def test_seeds_cover_all_nodes_once(self, tiny_graph):
        loader = NeighborLoader(tiny_graph, batch_size=24, fanout=4, seed=1)
        batches = list(loader.epoch_batches(0))
        seeds = np.concatenate([batch.seed_ids for batch in batches])
        assert np.unique(seeds).shape[0] == tiny_graph.num_nodes == seeds.shape[0]

    def test_seeds_prefix_block_and_unique_nodes(self, tiny_graph):
        loader = NeighborLoader(tiny_graph, batch_size=24, fanout=4, seed=1)
        for batch in loader.epoch_batches(0):
            assert np.array_equal(batch.node_ids[: batch.num_seeds], batch.seed_ids)
            assert np.unique(batch.node_ids).shape[0] == batch.num_nodes
            assert batch.num_nodes >= batch.num_seeds

    def test_identical_sequences_for_equal_seeds(self, tiny_graph):
        make = lambda: NeighborLoader(tiny_graph, batch_size=24, fanout=4, seed=9)
        a = [tuple(b.node_ids) for b in make().epoch_batches(2)]
        b = [tuple(b.node_ids) for b in make().epoch_batches(2)]
        assert a == b

    def test_local_indices_of_maps_global_mask(self, tiny_graph):
        loader = NeighborLoader(tiny_graph, batch_size=24, fanout=4, seed=1)
        batch = next(loader.epoch_batches(0))
        mask = np.zeros(tiny_graph.num_nodes, dtype=bool)
        mask[batch.node_ids[::2]] = True
        local = batch.local_indices_of(mask)
        assert np.array_equal(batch.node_ids[local], batch.node_ids[::2])


class TestBuildLoader:
    def test_dispatch(self, tiny_graph):
        assert isinstance(build_loader("full", tiny_graph), FullBatchLoader)
        assert isinstance(build_loader("neighbor", tiny_graph), NeighborLoader)
        assert isinstance(build_loader("cluster", tiny_graph), ClusterLoader)
        with pytest.raises(ValueError):
            build_loader("metis", tiny_graph)

    def test_default_batch_size(self, tiny_graph):
        loader = build_loader("cluster", tiny_graph)
        assert loader.batches_per_epoch == 1  # 90 nodes < default 256


# ----------------------------------------------------------------------
# trainer integration
# ----------------------------------------------------------------------
def _fit(model_name, dataset_graph, sampler, seed=0, epochs=6, **overrides):
    model = build_model(
        model_name, dataset_graph.num_features, dataset_graph.num_clusters, seed=seed
    )
    config = RethinkConfig(
        epochs=epochs,
        pretrain_epochs=4,
        update_omega_every=2,
        update_graph_every=3,
        stop_at_convergence=False,
        sampler=sampler,
        **overrides,
    )
    trainer = RethinkTrainer(model, config)
    return trainer, trainer.fit(dataset_graph)


class TestFullBatchEquivalence:
    """Acceptance criterion: full-batch loader ≡ legacy trainer to 1e-10."""

    @pytest.mark.parametrize("model_name", ["gae", "dgae", "gmm_vgae"])
    def test_matches_legacy_trainer(self, tiny_graph, model_name):
        _, legacy = _fit(model_name, tiny_graph, sampler=None)
        _, full = _fit(model_name, tiny_graph, sampler="full")
        assert np.allclose(legacy.losses, full.losses, atol=1e-10, rtol=0.0)
        assert np.allclose(
            legacy.reconstruction_losses, full.reconstruction_losses, atol=1e-10, rtol=0.0
        )
        assert legacy.omega_sizes == full.omega_sizes
        assert legacy.final_report.as_dict() == full.final_report.as_dict()

    def test_matches_legacy_on_promoted_sparse_graph(self):
        """cora_sim crosses the CSR promotion threshold, so this exercises
        the sparse Υ / induced-block path against the dense legacy one."""
        from repro.datasets import load_dataset

        graph = load_dataset("cora_sim", seed=0)
        _, legacy = _fit("gae", graph, sampler=None, epochs=4)
        _, full = _fit("gae", graph, sampler="full", epochs=4)
        assert np.allclose(legacy.losses, full.losses, atol=1e-10, rtol=0.0)
        assert legacy.final_report.as_dict() == full.final_report.as_dict()


class TestMinibatchTraining:
    @pytest.mark.parametrize("model_name", ["gae", "dgae", "gmm_vgae"])
    @pytest.mark.parametrize("sampler", ["cluster", "neighbor"])
    def test_trains_and_reports(self, tiny_graph, model_name, sampler):
        trainer, history = _fit(
            model_name, tiny_graph, sampler=sampler, batch_size=32, fanout=4
        )
        assert history.epochs_run == len(history.losses) > 0
        assert history.final_report is not None
        assert trainer.loader_ is not None and trainer.loader_.batches_per_epoch >= 2
        assert all(np.isfinite(history.losses))

    def test_deterministic_repeat(self, tiny_graph):
        _, first = _fit("gae", tiny_graph, sampler="cluster", batch_size=32)
        _, second = _fit("gae", tiny_graph, sampler="cluster", batch_size=32)
        assert first.losses == second.losses

    def test_sampler_seed_changes_batches_not_validity(self, tiny_graph):
        _, a = _fit("gae", tiny_graph, sampler="cluster", batch_size=24, sampler_seed=0)
        _, b = _fit("gae", tiny_graph, sampler="cluster", batch_size=24, sampler_seed=1)
        assert a.losses != b.losses  # different partitions / batch order
        assert a.final_report is not None and b.final_report is not None

    def test_callbacks_fire_on_minibatch_path(self, tiny_graph):
        from repro.api.callbacks import LambdaCallback

        events = {"omega": 0, "graph": 0, "epochs": 0}
        callbacks = [
            LambdaCallback(
                on_omega_update=lambda epoch, sampling: events.__setitem__(
                    "omega", events["omega"] + 1
                ),
                on_graph_transform=lambda epoch, matrix: events.__setitem__(
                    "graph", events["graph"] + 1
                ),
                on_epoch_end=lambda epoch, logs: events.__setitem__(
                    "epochs", events["epochs"] + 1
                ),
            )
        ]
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = RethinkConfig(
            epochs=4,
            pretrain_epochs=2,
            update_omega_every=2,
            update_graph_every=2,
            stop_at_convergence=False,
            sampler="cluster",
            batch_size=32,
        )
        RethinkTrainer(model, config, callbacks=callbacks).fit(tiny_graph)
        assert events == {"omega": 2, "graph": 2, "epochs": 4}


class TestConfigValidation:
    def test_rejects_unknown_sampler(self):
        with pytest.raises(ConfigError):
            RethinkConfig(sampler="metis").validate()

    def test_rejects_bad_batch_and_fanout(self):
        with pytest.raises(ConfigError):
            RethinkConfig(sampler="cluster", batch_size=0).validate()
        with pytest.raises(ConfigError):
            RethinkConfig(fanout=0).validate()
        with pytest.raises(ConfigError):
            RethinkConfig(num_hops=0).validate()

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigError):
            RethinkConfig(sparse_node_threshold=-1).validate()
        with pytest.raises(ConfigError):
            RethinkConfig(sparse_density_threshold=1.5).validate()

    def test_sampler_flows_through_spec_roundtrip(self):
        spec = (
            Pipeline()
            .dataset("brazil_air_sim")
            .model("gae")
            .minibatch(sampler="cluster", batch_size=48)
            .spec()
        )
        rebuilt = Pipeline.from_spec(spec.to_json()).spec()
        assert rebuilt.rethink.overrides["sampler"] == "cluster"
        assert rebuilt.rethink.overrides["batch_size"] == 48

    def test_spec_rejects_unknown_override(self):
        with pytest.raises(SpecError):
            Pipeline.from_spec(
                {
                    "dataset": "brazil_air_sim",
                    "model": "gae",
                    "rethink": {"overrides": {"samplerr": "cluster"}},
                }
            )


# ----------------------------------------------------------------------
# cross-process determinism (acceptance criterion)
# ----------------------------------------------------------------------
_MINIBATCH_SPEC = {
    "dataset": "brazil_air_sim",
    "model": "gae",
    "variant": "rethink",
    "seed": 0,
    "training": {"pretrain_epochs": 3, "rethink_epochs": 4},
    "rethink": {
        "overrides": {
            "update_omega_every": 2,
            "update_graph_every": 2,
            "sampler": "cluster",
            "batch_size": 48,
            "stop_at_convergence": False,
        }
    },
}


class TestJobsDeterminism:
    def test_jobs4_bitwise_equals_jobs1_with_sampler(self):
        seeds = [0, 1, 2, 3]
        serial = run_seeded(_MINIBATCH_SPEC, seeds, jobs=1)
        pooled = run_seeded(_MINIBATCH_SPEC, seeds, jobs=4)

        def strip(result):
            summary = result.summary()
            summary.pop("runtime_seconds", None)
            return summary

        assert [strip(r) for r in serial] == [strip(r) for r in pooled]


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCliMinibatchFlags:
    def test_print_spec_overlays_flags(self, tmp_path, capsys):
        import json

        from repro.api.cli import main

        spec_path = tmp_path / "trial.json"
        spec_path.write_text(json.dumps(_MINIBATCH_SPEC))
        assert (
            main(
                [
                    str(spec_path),
                    "--print-spec",
                    "--sampler",
                    "neighbor",
                    "--batch-size",
                    "64",
                    "--fanout",
                    "5",
                    "--num-hops",
                    "3",
                ]
            )
            == 0
        )
        printed = json.loads(capsys.readouterr().out)
        overrides = printed["rethink"]["overrides"]
        assert overrides["sampler"] == "neighbor"
        assert overrides["batch_size"] == 64
        assert overrides["fanout"] == 5
        assert overrides["num_hops"] == 3

    def test_batch_flags_require_a_sampler(self, tmp_path, capsys):
        import json

        from repro.api.cli import main

        spec = {"dataset": "brazil_air_sim", "model": "gae"}
        spec_path = tmp_path / "trial.json"
        spec_path.write_text(json.dumps(spec))
        assert main([str(spec_path), "--batch-size", "64"]) == 2
        assert "sampler" in capsys.readouterr().err
