"""Self-tests for the ``repro-lint`` rule engine and the REP001–REP008 rules.

Each rule is pinned against a fixture file under ``tests/lint_fixtures/``
containing a violating, a suppressed and a compliant variant of the same
pattern; the fixtures mimic the ``src/repro/...`` layout because several
rules scope themselves by derived module name.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.linter import (
    NOQA_POLICY_CODE,
    PARSE_ERROR_CODE,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
)
from repro.errors import LintConfigError

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def codes_and_lines(diagnostics):
    return [(d.code, d.line) for d in diagnostics]


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
def test_module_name_derivation():
    assert module_name_for("src/repro/core/losses.py") == "repro.core.losses"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("/abs/tree/src/repro/nn/tensor.py") == "repro.nn.tensor"
    assert module_name_for("benchmarks/bench_sparse.py") == ""


def test_all_rules_registered_with_metadata():
    diagnostics = lint_source("x = 1\n")  # forces rule registration
    assert diagnostics == []
    expected = {
        "REP001", "REP002", "REP003", "REP004",
        "REP005", "REP006", "REP007", "REP008",
    }
    assert expected.issubset(set(RULES.names()))
    for code in expected:
        entry = RULES.entry(code)
        assert entry.metadata["summary"]
        assert entry.metadata["severity"] in {"error", "warning"}


def test_syntax_error_reports_parse_diagnostic():
    diagnostics = lint_source("def broken(:\n", path="bad.py")
    assert [d.code for d in diagnostics] == [PARSE_ERROR_CODE]
    assert diagnostics[0].severity == "error"


def test_unknown_select_code_rejected():
    with pytest.raises(LintConfigError, match="REP999"):
        lint_source("x = 1\n", select=["REP999"])


def test_diagnostic_format_is_path_line_column():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep006.py"))
    assert diagnostics, "fixture should produce diagnostics"
    text = diagnostics[0].format()
    assert text.startswith(f"{diagnostics[0].path}:{diagnostics[0].line}:")
    assert diagnostics[0].code in text


# ----------------------------------------------------------------------
# suppression policy
# ----------------------------------------------------------------------
def test_noqa_without_justification_is_policy_error():
    source = "import numpy as np\nx = np.random.rand(3)  # repro: noqa[REP001]\n"
    diagnostics = lint_source(source, module="repro.something")
    assert [d.code for d in diagnostics] == [NOQA_POLICY_CODE]
    assert diagnostics[0].severity == "error"
    assert "justification" in diagnostics[0].message


def test_unused_noqa_is_policy_warning():
    source = "x = 1  # repro: noqa[REP001] nothing here violates REP001\n"
    diagnostics = lint_source(source, module="repro.something")
    assert [(d.code, d.severity) for d in diagnostics] == [(NOQA_POLICY_CODE, "warning")]


def test_unused_noqa_not_reported_under_select():
    # With --select the "unused" judgement would be an artifact of the filter.
    source = "x = 1  # repro: noqa[REP001] nothing here violates REP001\n"
    assert lint_source(source, module="repro.something", select=["REP002"]) == []


def test_invalid_noqa_codes_fail_open():
    # A typo'd code is not a suppression: the real violation still surfaces.
    source = "import numpy as np\nx = np.random.rand(3)  # repro: noqa[REPxxx] typo\n"
    diagnostics = lint_source(source, module="repro.something")
    assert [d.code for d in diagnostics] == ["REP001"]


def test_noqa_suppresses_multiple_codes_on_one_line():
    source = (
        "import numpy as np\n"
        "def f(adjacency):\n"
        "    return np.asarray(adjacency), np.random.rand(2)"
        "  # repro: noqa[REP001,REP002] fixture: both on one line\n"
    )
    assert lint_source(source, module="repro.core.fake") == []


# ----------------------------------------------------------------------
# the project rules, one fixture each
# ----------------------------------------------------------------------
def test_rep001_unseeded_randomness():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep001.py"))
    assert codes_and_lines(diagnostics) == [("REP001", 7), ("REP001", 8)]


def test_rep002_dense_materialization():
    diagnostics = lint_file(fixture("src", "repro", "core", "fix_rep002.py"))
    assert codes_and_lines(diagnostics) == [("REP002", 7), ("REP002", 8)]


def test_rep002_scoped_to_hot_packages():
    assert lint_file(fixture("src", "repro", "fix_rep002_out_of_scope.py")) == []


def test_rep003_backward_without_release():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep003.py"))
    assert codes_and_lines(diagnostics) == [("REP003", 7)]


def test_rep004_pool_picklability():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep004.py"))
    assert codes_and_lines(diagnostics) == [("REP004", 11), ("REP004", 16)]
    assert "lambda" in diagnostics[0].message
    assert "local_fn" in diagnostics[1].message


def test_rep005_env_reads():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep005.py"))
    assert codes_and_lines(diagnostics) == [("REP005", 9), ("REP005", 10), ("REP005", 11)]


def test_rep005_exempts_the_accessor_module():
    source = "import os\nvalue = os.environ.get('REPRO_X')\n"
    assert lint_source(source, module="repro.env") == []
    assert [d.code for d in lint_source(source, module="repro.other")] == ["REP005"]


def test_rep006_bare_assert_and_raise():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep006.py"))
    assert codes_and_lines(diagnostics) == [("REP006", 7), ("REP006", 9)]


def test_rep007_swallowed_exceptions():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep007.py"))
    assert codes_and_lines(diagnostics) == [("REP007", 9), ("REP007", 16), ("REP007", 20)]
    assert "KeyboardInterrupt" in diagnostics[0].message
    assert "swallows" in diagnostics[1].message


def test_rep007_allows_handled_catchalls():
    source = (
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception as error:\n"
        "        raise RuntimeError('wrapped') from error\n"
    )
    assert lint_source(source, module="repro.something") == []


def test_rep008_no_print_in_library():
    diagnostics = lint_file(fixture("src", "repro", "fix_rep008.py"))
    assert codes_and_lines(diagnostics) == [("REP008", 7), ("REP008", 9)]
    assert "logger" in diagnostics[0].message


def test_rep008_exempts_cli_modules():
    source = "print('usage: repro-run SPEC')\n"
    assert lint_source(source, module="repro.api.cli") == []
    assert lint_source(source, module="repro.analysis.cli") == []
    assert [d.code for d in lint_source(source, module="repro.models.base")] == ["REP008"]
    # scripts outside the package (benchmarks, examples) may print freely
    assert lint_source(source, module="") == []


def test_library_scoped_rules_skip_scripts():
    assert lint_file(fixture("scripts", "fix_outside_library.py")) == []


# ----------------------------------------------------------------------
# reports and the CLI
# ----------------------------------------------------------------------
def test_lint_paths_report_counts():
    report = lint_paths([fixture("src")])
    assert report.files_checked >= 6
    assert report.error_count == len([d for d in report.diagnostics if d.severity == "error"])
    assert report.exit_code == 1
    summary = report.summary()
    for code in (
        "REP001", "REP002", "REP003", "REP004",
        "REP005", "REP006", "REP007", "REP008",
    ):
        assert summary.get(code), f"expected {code} findings in the fixture tree"


def test_lint_paths_missing_target():
    with pytest.raises(LintConfigError, match="no such file"):
        lint_paths([fixture("does_not_exist")])


def test_cli_exit_codes_and_report_artifact(tmp_path, capsys):
    report_path = tmp_path / "lint-report.json"
    code = lint_main([fixture("src"), "--report", str(report_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "errors" in out

    payload = json.loads(report_path.read_text())
    assert payload["files_checked"] >= 6
    assert payload["errors"] >= 6
    assert "REP003" in payload["rules"]
    assert all({"path", "line", "code", "severity"} <= set(d) for d in payload["diagnostics"])


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean)]) == 0
    assert "0 errors" in capsys.readouterr().out


def test_cli_select_and_json_format(capsys):
    code = lint_main([fixture("src"), "--select", "REP006", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["summary"]) == {"REP006"}


def test_cli_usage_errors(capsys):
    assert lint_main([]) == 2
    assert lint_main([fixture("src"), "--select", "REP999"]) == 2
    err = capsys.readouterr().err
    assert "no paths" in err and "REP999" in err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "REP001", "REP002", "REP003", "REP004",
        "REP005", "REP006", "REP007", "REP008",
    ):
        assert code in out


def test_repo_source_tree_is_clean():
    """The acceptance gate, as a test: the shipped tree lints clean."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = [
        os.path.join(repo_root, name)
        for name in ("src", "benchmarks", "examples")
        if os.path.exists(os.path.join(repo_root, name))
    ]
    report = lint_paths(targets)
    messages = "\n".join(d.format() for d in diagnostics_of(report))
    assert report.exit_code == 0, f"repo tree has lint errors:\n{messages}"


def diagnostics_of(report):
    return [d for d in report.diagnostics if d.severity == "error"]
