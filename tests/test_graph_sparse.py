"""Tests for the CSR sparse adjacency backend (repro.graph.sparse).

The backbone of this file is the sparse-vs-dense equivalence suite: every
operation the hot path was rewired onto (normalisation, spmm, GCN
forward/backward, the Laplacian quadratic form and the Υ graph transform)
must agree with the dense reference to 1e-10 on random graphs, including
graphs with isolated nodes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph_transform import build_clustering_oriented_graph
from repro.graph import (
    SparseAdjacency,
    as_sparse_adjacency,
    laplacian_quadratic_form,
    laplacian_quadratic_form_dense,
    normalize_adjacency,
    propagation_matrix,
)
from repro.graph.graph import AttributedGraph
from repro.models import GAE
from repro.nn import GraphConvolution, spmm
from repro.nn.tensor import Tensor

TOL = 1e-10


def random_adjacency(rng, n=70, p=0.08, isolated=2):
    """Random symmetric binary adjacency with a few isolated nodes."""
    a = (rng.random((n, n)) < p).astype(np.float64)
    a = np.triu(a, 1)
    a = a + a.T
    for node in rng.choice(n, size=isolated, replace=False):
        a[node, :] = 0.0
        a[:, node] = 0.0
    return a


@pytest.fixture(params=[0, 1, 2])
def adjacency(request):
    rng = np.random.default_rng(request.param)
    return random_adjacency(rng)


class TestSparseAdjacencyConstruction:
    def test_dense_round_trip(self, adjacency):
        sparse = SparseAdjacency.from_dense(adjacency)
        assert sparse.nnz == np.count_nonzero(adjacency)
        np.testing.assert_array_equal(sparse.to_dense(), adjacency)

    def test_from_edges_matches_dense(self, adjacency):
        rows, cols = np.nonzero(np.triu(adjacency, k=1))
        edges = np.stack([rows, cols], axis=1)
        sparse = SparseAdjacency.from_edges(edges, adjacency.shape[0])
        np.testing.assert_array_equal(sparse.to_dense(), adjacency)

    def test_from_coo_sums_duplicates(self):
        sparse = SparseAdjacency.from_coo(
            rows=[0, 0, 1], cols=[1, 1, 0], values=[1.0, 2.0, 4.0], num_nodes=3
        )
        assert sparse.nnz == 2
        assert sparse.to_dense()[0, 1] == 3.0
        assert sparse.to_dense()[1, 0] == 4.0

    def test_empty_graph(self):
        sparse = SparseAdjacency.from_dense(np.zeros((5, 5)))
        assert sparse.nnz == 0
        assert sparse.matmul(np.ones((5, 3))).sum() == 0.0
        np.testing.assert_array_equal(sparse.normalize().to_dense(), np.eye(5))

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            SparseAdjacency.from_dense(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            SparseAdjacency.from_coo([0], [7], [1.0], num_nodes=3)

    def test_as_sparse_adjacency_is_identity_on_sparse(self, adjacency):
        sparse = SparseAdjacency.from_dense(adjacency)
        assert as_sparse_adjacency(sparse) is sparse

    def test_degrees_and_transpose(self, adjacency):
        sparse = SparseAdjacency.from_dense(adjacency)
        np.testing.assert_allclose(sparse.out_degrees(), adjacency.sum(axis=1))
        np.testing.assert_allclose(sparse.in_degrees(), adjacency.sum(axis=0))
        np.testing.assert_array_equal(sparse.transpose().to_dense(), adjacency.T)
        # The transpose cache is symmetric both ways.
        assert sparse.transpose().transpose() is sparse

    def test_transpose_of_directed_matrix(self):
        dense = np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 3.0], [0.0, 0.0, 0.0]])
        sparse = SparseAdjacency.from_dense(dense)
        np.testing.assert_array_equal(sparse.T.to_dense(), dense.T)


class TestNormalizationEquivalence:
    @pytest.mark.parametrize("self_loops", [True, False])
    def test_matches_dense(self, adjacency, self_loops):
        dense_norm = normalize_adjacency(adjacency, self_loops=self_loops)
        sparse_norm = normalize_adjacency(
            SparseAdjacency.from_dense(adjacency), self_loops=self_loops
        )
        assert isinstance(sparse_norm, SparseAdjacency)
        np.testing.assert_allclose(sparse_norm.to_dense(), dense_norm, atol=TOL)

    def test_isolated_nodes_stay_finite_without_self_loops(self):
        a = np.zeros((4, 4))
        a[0, 1] = a[1, 0] = 1.0
        sparse_norm = normalize_adjacency(SparseAdjacency.from_dense(a), self_loops=False)
        dense = sparse_norm.to_dense()
        assert np.all(np.isfinite(dense))
        assert dense[2].sum() == 0.0 and dense[3].sum() == 0.0


class TestSpmm:
    def test_forward_matches_dense(self, adjacency, rng):
        sparse = SparseAdjacency.from_dense(adjacency)
        x = rng.standard_normal((adjacency.shape[0], 9))
        np.testing.assert_allclose(sparse.matmul(x), adjacency @ x, atol=TOL)
        np.testing.assert_allclose(sparse @ x[:, 0], adjacency @ x[:, 0], atol=TOL)

    def test_dimension_mismatch_raises(self, adjacency):
        sparse = SparseAdjacency.from_dense(adjacency)
        with pytest.raises(ValueError):
            sparse.matmul(np.ones((3, 2)))

    def test_backward_matches_dense_matmul(self, adjacency, rng):
        """spmm gradients equal the gradients of the dense A @ X product."""
        norm = normalize_adjacency(adjacency, self_loops=True)
        sparse = SparseAdjacency.from_dense(norm)
        x_data = rng.standard_normal((adjacency.shape[0], 6))
        weights = rng.standard_normal((adjacency.shape[0], 6))

        x_sparse = Tensor(x_data, requires_grad=True)
        (spmm(sparse, x_sparse) * weights).sum().backward()

        x_dense = Tensor(x_data, requires_grad=True)
        (Tensor(norm) @ x_dense * weights).sum().backward()

        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=TOL)

    def test_backward_finite_difference(self, rng):
        """Central finite differences through spmm confirm the analytic grad."""
        a = random_adjacency(rng, n=12, p=0.3, isolated=1)
        sparse = SparseAdjacency.from_dense(normalize_adjacency(a))
        x_data = rng.standard_normal((12, 3))
        weights = rng.standard_normal((12, 3))

        x = Tensor(x_data, requires_grad=True)
        (spmm(sparse, x) * weights).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(x_data)
        for i in range(x_data.shape[0]):
            for j in range(x_data.shape[1]):
                plus, minus = x_data.copy(), x_data.copy()
                plus[i, j] += eps
                minus[i, j] -= eps
                f_plus = float((sparse.matmul(plus) * weights).sum())
                f_minus = float((sparse.matmul(minus) * weights).sum())
                numeric[i, j] = (f_plus - f_minus) / (2.0 * eps)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)


class TestGCNEquivalence:
    def test_forward_and_weight_gradients_match(self, adjacency, rng):
        norm_dense = normalize_adjacency(adjacency, self_loops=True)
        norm_sparse = SparseAdjacency.from_dense(norm_dense)
        x = rng.standard_normal((adjacency.shape[0], 5))

        layer_dense = GraphConvolution(5, 4, activation="relu", rng=np.random.default_rng(7))
        layer_sparse = GraphConvolution(5, 4, activation="relu", rng=np.random.default_rng(7))

        out_dense = layer_dense(x, norm_dense)
        out_sparse = layer_sparse(x, norm_sparse)
        np.testing.assert_allclose(out_sparse.data, out_dense.data, atol=TOL)

        (out_dense * out_dense).sum().backward()
        (out_sparse * out_sparse).sum().backward()
        np.testing.assert_allclose(
            layer_sparse.weight.grad, layer_dense.weight.grad, atol=TOL
        )

    def test_input_gradients_match_through_two_layers(self, adjacency, rng):
        """A two-layer GCN stack (the paper's encoder shape) agrees end to end."""
        norm_dense = normalize_adjacency(adjacency, self_loops=True)
        norm_sparse = SparseAdjacency.from_dense(norm_dense)
        x_data = rng.standard_normal((adjacency.shape[0], 5))

        grads = {}
        for key, adj in (("dense", norm_dense), ("sparse", norm_sparse)):
            first = GraphConvolution(5, 4, activation="relu", rng=np.random.default_rng(3))
            second = GraphConvolution(4, 2, activation=None, rng=np.random.default_rng(4))
            x = Tensor(x_data, requires_grad=True)
            out = second(first(x, adj), adj)
            (out * out).sum().backward()
            grads[key] = x.grad
        np.testing.assert_allclose(grads["sparse"], grads["dense"], atol=TOL)


class TestQuadraticFormEquivalence:
    def test_matches_dense_reference(self, adjacency, rng):
        z = rng.standard_normal((adjacency.shape[0], 6))
        reference = laplacian_quadratic_form_dense(z, adjacency)
        assert laplacian_quadratic_form(z, adjacency) == pytest.approx(reference, abs=TOL)
        assert laplacian_quadratic_form(
            z, SparseAdjacency.from_dense(adjacency)
        ) == pytest.approx(reference, abs=TOL)

    def test_matches_direct_pairwise_sum(self, rng):
        a = random_adjacency(rng, n=25, p=0.2, isolated=1)
        z = rng.standard_normal((25, 4))
        direct = 0.5 * sum(
            a[i, j] * np.sum((z[i] - z[j]) ** 2)
            for i in range(25)
            for j in range(25)
        )
        assert laplacian_quadratic_form(z, a) == pytest.approx(direct, abs=TOL)
        assert laplacian_quadratic_form(
            z, SparseAdjacency.from_dense(a)
        ) == pytest.approx(direct, abs=TOL)

    def test_weighted_asymmetric_matrix(self, rng):
        """A' can be any non-negative weight matrix, not just binary symmetric."""
        weights = rng.random((30, 30)) * (rng.random((30, 30)) < 0.15)
        z = rng.standard_normal((30, 3))
        reference = laplacian_quadratic_form_dense(z, weights)
        assert laplacian_quadratic_form(z, weights) == pytest.approx(reference, abs=TOL)
        assert laplacian_quadratic_form(
            z, SparseAdjacency.from_dense(weights)
        ) == pytest.approx(reference, abs=TOL)

    def test_high_density_matrix_uses_gram_fallback_correctly(self, rng):
        """Dense weight matrices above the density threshold (e.g. membership
        graphs, nnz ~ N²/K) fall back to the Gram identity; the result must be
        identical either way."""
        n = 40
        labels = rng.integers(0, 3, size=n)
        membership = (labels[:, None] == labels[None, :]).astype(np.float64)
        z = rng.standard_normal((n, 4))
        reference = laplacian_quadratic_form_dense(z, membership)
        assert laplacian_quadratic_form(z, membership) == pytest.approx(
            reference, abs=TOL
        )
        assert laplacian_quadratic_form(
            z, SparseAdjacency.from_dense(membership)
        ) == pytest.approx(reference, abs=TOL)


class TestGraphTransformEquivalence:
    @pytest.mark.parametrize("add_edges", [True, False])
    @pytest.mark.parametrize("drop_edges", [True, False])
    def test_sparse_matches_dense(self, adjacency, rng, add_edges, drop_edges):
        n = adjacency.shape[0]
        assignments = rng.random((n, 4))
        assignments /= assignments.sum(axis=1, keepdims=True)
        embeddings = rng.standard_normal((n, 6))
        reliable = rng.choice(n, size=n // 2, replace=False)

        dense_result = build_clustering_oriented_graph(
            adjacency, assignments, reliable, embeddings,
            add_edges=add_edges, drop_edges=drop_edges,
        )
        sparse_result = build_clustering_oriented_graph(
            SparseAdjacency.from_dense(adjacency), assignments, reliable, embeddings,
            add_edges=add_edges, drop_edges=drop_edges,
        )
        assert isinstance(sparse_result, SparseAdjacency)
        np.testing.assert_array_equal(sparse_result.to_dense(), dense_result)

    def test_sparse_matches_dense_on_asymmetric_weighted_input(self, rng):
        """Υ's dense loop only adds a star edge when (node, centroid) is
        absent, but writes *both* directions when it fires; the sparse path
        must reproduce that even for asymmetric or weighted inputs."""
        n = 40
        weights = (rng.random((n, n)) * (rng.random((n, n)) < 0.12)).astype(np.float64)
        np.fill_diagonal(weights, 0.0)
        assignments = rng.random((n, 3))
        assignments /= assignments.sum(axis=1, keepdims=True)
        embeddings = rng.standard_normal((n, 4))
        reliable = rng.choice(n, size=25, replace=False)

        dense_result = build_clustering_oriented_graph(
            weights, assignments, reliable, embeddings
        )
        sparse_result = build_clustering_oriented_graph(
            SparseAdjacency.from_dense(weights), assignments, reliable, embeddings
        )
        np.testing.assert_array_equal(sparse_result.to_dense(), dense_result)

    def test_empty_reliable_set_returns_copy(self, adjacency):
        sparse = SparseAdjacency.from_dense(adjacency)
        result = build_clustering_oriented_graph(
            sparse, np.ones((adjacency.shape[0], 2)) / 2.0,
            np.array([], dtype=np.int64), np.zeros((adjacency.shape[0], 3)),
        )
        assert result is not sparse
        np.testing.assert_array_equal(result.to_dense(), adjacency)


class TestPropagationMatrixDispatch:
    def test_small_graphs_stay_dense(self, adjacency):
        assert isinstance(propagation_matrix(adjacency), np.ndarray)

    def test_large_sparse_graphs_go_sparse(self, rng):
        big = random_adjacency(rng, n=300, p=0.02, isolated=0)
        result = propagation_matrix(big)
        assert isinstance(result, SparseAdjacency)
        np.testing.assert_allclose(
            result.to_dense(), normalize_adjacency(big, self_loops=True), atol=TOL
        )

    def test_dense_graphs_stay_dense_regardless_of_size(self, rng):
        big = random_adjacency(rng, n=300, p=0.6, isolated=0)
        assert isinstance(propagation_matrix(big), np.ndarray)

    def test_sparse_input_stays_sparse(self, adjacency):
        sparse = SparseAdjacency.from_dense(adjacency)
        assert isinstance(propagation_matrix(sparse), SparseAdjacency)

    def test_model_trains_on_sparse_backend(self, rng):
        """End to end: a GAE pretrain step over the sparse propagation path."""
        n = 300
        adjacency = random_adjacency(rng, n=n, p=0.02, isolated=0)
        features = rng.random((n, 8))
        labels = np.zeros(n, dtype=np.int64)
        graph = AttributedGraph(adjacency, features, labels, name="sparse_smoke")

        model = GAE(num_features=8, num_clusters=2, hidden_dim=8, latent_dim=4, seed=0)
        _, adj_norm = model.prepare_inputs(graph)
        assert isinstance(adj_norm, SparseAdjacency)

        history = model.pretrain(graph, epochs=5)
        assert len(history.losses) == 5
        assert np.isfinite(history.losses).all()
        assert history.losses[-1] < history.losses[0]
        assert model.embed(graph).shape == (n, 4)
