"""Self-tests for the runtime sanitizers (``REPRO_SANITIZE=1``).

Each guard is exercised both ways: the violation it exists to catch is
injected and must raise, and the corresponding clean pattern must pass.
Every test also verifies the guards are no-ops when the sanitizers are
not installed — that is what makes shipping them enabled-in-CI-only free.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizers import (
    autograd_leak_check,
    install_from_env,
    live_graph_nodes,
    rng_isolation_check,
    sanitized,
    sanitizers_enabled,
    uninstall_sanitizers,
)
from repro.env import SANITIZE_ENV, env_override
from repro.errors import (
    AutogradLeakError,
    NonFiniteTensorError,
    RngIsolationError,
)
from repro.nn.tensor import Tensor, no_grad


def small_loss():
    x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
    return (x * x).sum()


@pytest.fixture()
def uninstalled(request):
    """A guaranteed-off baseline, restored afterwards.

    The toggle/no-op tests need the sanitizers *absent* at entry, which is
    false when the whole suite runs under ``REPRO_SANITIZE=1`` (the CI
    sanitized tier-1 run installs them session-wide).
    """
    from repro.analysis.sanitizers import install_sanitizers

    was_enabled = sanitizers_enabled()
    uninstall_sanitizers()
    yield
    if was_enabled:
        install_sanitizers()
    else:
        uninstall_sanitizers()


# ----------------------------------------------------------------------
# install / uninstall plumbing
# ----------------------------------------------------------------------
def test_sanitized_context_toggles_and_restores(uninstalled):
    assert not sanitizers_enabled()
    with sanitized():
        assert sanitizers_enabled()
    assert not sanitizers_enabled()


def test_sanitized_context_nests(uninstalled):
    with sanitized():
        with sanitized():
            assert sanitizers_enabled()
        # the inner exit must not disable the outer scope
        assert sanitizers_enabled()
    assert not sanitizers_enabled()


def test_install_from_env_respects_flag(uninstalled):
    with env_override(SANITIZE_ENV, "0"):
        assert install_from_env() is False
        assert not sanitizers_enabled()
    try:
        with env_override(SANITIZE_ENV, "1"):
            assert install_from_env() is True
            assert sanitizers_enabled()
    finally:
        uninstall_sanitizers()


# ----------------------------------------------------------------------
# NaN/Inf tensor guard
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_nonfinite_forward_output_raises(sanitized_runtime):
    x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
    with pytest.raises(NonFiniteTensorError, match="Inf"):
        x.log()  # log(0) = -inf at the op that produced it


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_nan_forward_output_raises(sanitized_runtime):
    x = Tensor(np.array([-1.0, 4.0]), requires_grad=True)
    with pytest.raises(NonFiniteTensorError, match="NaN"):
        x.sqrt()  # sqrt(-1) = nan


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_nonfinite_gradient_raises(sanitized_runtime):
    x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
    loss = (x ** 0.5).sum()  # forward is finite: sqrt(0) = 0
    with pytest.raises(NonFiniteTensorError, match="gradient"):
        loss.backward()  # d sqrt/dx at 0 = inf


def test_finite_training_step_passes(sanitized_runtime):
    loss = small_loss()
    loss.backward()
    loss.release_graph()


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_guard_is_noop_when_uninstalled(uninstalled):
    assert not sanitizers_enabled()
    x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
    out = x.log()  # no guard: -inf flows through silently, as before this PR
    assert np.isneginf(out.data[0])


# ----------------------------------------------------------------------
# autograd leak detector
# ----------------------------------------------------------------------
def test_retained_graph_is_detected(sanitized_runtime):
    with pytest.raises(AutogradLeakError, match="training-step"):
        with autograd_leak_check("training-step"):
            retained = small_loss()
            retained.backward()
            # missing release_graph(): the step graph survives the scope


def test_released_graph_passes(sanitized_runtime):
    with autograd_leak_check("training-step"):
        loss = small_loss()
        loss.backward()
        loss.release_graph()


def test_dropped_references_pass(sanitized_runtime):
    # Graphs freed by the reference counter alone are not leaks either.
    with autograd_leak_check("eval"):
        small_loss()


def test_no_grad_creates_no_graph_nodes(sanitized_runtime):
    with autograd_leak_check("inference"):
        with no_grad():
            kept = small_loss()  # noqa-free: no closure is ever created
        assert kept._backward is None
    assert live_graph_nodes() == 0


def test_leak_check_exempts_preexisting_nodes(sanitized_runtime):
    # The outer loss is live across the inner check (the ARGAE pattern:
    # a guarded discriminator step inside a guarded pretraining epoch).
    outer = small_loss()
    with autograd_leak_check("inner-step"):
        inner = small_loss()
        inner.backward()
        inner.release_graph()
    assert outer._backward is not None
    outer.release_graph()


def test_leak_error_carries_count_and_scope(sanitized_runtime):
    with pytest.raises(AutogradLeakError) as excinfo:
        with autograd_leak_check("epoch"):
            retained = small_loss()
            retained.backward()
    assert excinfo.value.scope == "epoch"
    assert excinfo.value.count >= 1


def test_leak_check_is_noop_when_uninstalled(uninstalled):
    with autograd_leak_check("anything"):
        retained = small_loss()
        retained.backward()  # no sanitizers: nothing raises
    assert retained._backward is not None


def test_body_exception_propagates_unmasked(sanitized_runtime):
    with pytest.raises(ValueError, match="from the body"):
        with autograd_leak_check("failing-step"):
            leaked = small_loss()
            leaked.backward()
            raise ValueError("from the body")


# ----------------------------------------------------------------------
# RNG isolation check
# ----------------------------------------------------------------------
def test_global_rng_consumption_is_detected(sanitized_runtime):
    with pytest.raises(RngIsolationError, match="worker-trial"):
        with rng_isolation_check("worker-trial"):
            np.random.rand(3)


def test_seeded_generators_pass(sanitized_runtime):
    with rng_isolation_check("worker-trial"):
        rng = np.random.default_rng(1234)
        rng.standard_normal(8)


def test_rng_check_is_noop_when_uninstalled(uninstalled):
    with rng_isolation_check("anything"):
        np.random.rand(1)  # no sanitizers: nothing raises


# ----------------------------------------------------------------------
# end-to-end: a real model trains cleanly under all guards
# ----------------------------------------------------------------------
def test_model_pretrain_is_sanitizer_clean(sanitized_runtime, tiny_graph):
    from repro.models import build_model

    with rng_isolation_check("pretrain"):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=3)
        model.pretrain(tiny_graph, epochs=3)
    assert live_graph_nodes() == 0
