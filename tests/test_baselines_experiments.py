"""Tests for the non-GAE baselines and the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import available_baselines, build_baseline
from repro.experiments import (
    ExperimentConfig,
    aggregate_reports,
    edge_addition_study,
    edge_operation_ablation,
    format_mean_std_table,
    format_table,
    gamma_sensitivity_study,
    learning_dynamics_study,
    protection_vs_correction_fd,
    protection_vs_correction_fr,
    rethink_hyperparameters,
    run_model_pair,
    runtime_comparison,
    threshold_ablation,
    threshold_sensitivity_study,
)
from repro.experiments.tables import format_simple_table
from repro.metrics import clustering_accuracy
from repro.metrics.report import ClusteringReport


TINY_CONFIG = ExperimentConfig(
    pretrain_epochs=12, clustering_epochs=8, rethink_epochs=10, num_trials=1
)


class TestBaselines:
    def test_four_baselines_registered(self):
        assert set(available_baselines()) == {"tadw", "mgae", "agc", "age"}

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            build_baseline("dec", 3)

    @pytest.mark.parametrize("name", ["tadw", "mgae", "agc", "age"])
    def test_baselines_beat_random_on_easy_graph(self, name, tiny_graph):
        labels = build_baseline(name, tiny_graph.num_clusters, seed=0).fit_predict(tiny_graph)
        assert labels.shape == (tiny_graph.num_nodes,)
        assert set(np.unique(labels)).issubset(set(range(tiny_graph.num_clusters)))
        # Random accuracy for 3 roughly balanced clusters is about 0.4.
        assert clustering_accuracy(tiny_graph.labels, labels) > 0.45

    def test_agc_selects_an_order(self, tiny_graph):
        baseline = build_baseline("agc", tiny_graph.num_clusters, seed=0)
        baseline.fit_predict(tiny_graph)
        assert baseline.selected_order_ >= 1

    def test_tadw_embedding_shape(self, tiny_graph):
        baseline = build_baseline("tadw", tiny_graph.num_clusters, seed=0, embedding_dim=16)
        baseline.fit(tiny_graph)
        assert baseline.embedding_.shape[0] == tiny_graph.num_nodes

    def test_age_embedding_available_after_fit(self, tiny_graph):
        baseline = build_baseline("age", tiny_graph.num_clusters, seed=0)
        baseline.fit(tiny_graph)
        assert baseline.embedding_ is not None


class TestExperimentConfig:
    def test_presets(self):
        assert ExperimentConfig.fast().pretrain_epochs < ExperimentConfig.paper().pretrain_epochs
        assert ExperimentConfig.paper().pretrain_epochs == 200

    def test_with_trials(self):
        assert ExperimentConfig().with_trials(5).num_trials == 5

    def test_rethink_hyperparameters_known_pair(self):
        hyper = rethink_hyperparameters("cora_sim", "dgae")
        assert hyper["alpha1"] == pytest.approx(0.3)
        assert hyper["update_omega_every"] == 20

    def test_rethink_hyperparameters_fallback(self):
        hyper = rethink_hyperparameters("my_dataset", "my_model")
        assert set(hyper) == {"alpha1", "update_omega_every", "update_graph_every"}


class TestAggregationAndTables:
    def test_aggregate_reports(self):
        reports = [
            ClusteringReport(accuracy=0.6, nmi=0.5, ari=0.4),
            ClusteringReport(accuracy=0.8, nmi=0.7, ari=0.6),
        ]
        stats = aggregate_reports(reports)
        assert stats["acc"]["mean"] == pytest.approx(0.7)
        assert stats["nmi"]["std"] == pytest.approx(0.1)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_reports([])

    def test_format_table_contains_values(self):
        rows = {"GAE": {"cora_sim": {"acc": 0.613, "nmi": 0.444, "ari": 0.381}}}
        table = format_table(rows, ["cora_sim"], title="Table 1")
        assert "Table 1" in table and "61.3" in table and "GAE" in table

    def test_format_table_missing_value_dash(self):
        rows = {"GAE": {"cora_sim": {"acc": 0.5}}}
        table = format_table(rows, ["cora_sim", "citeseer_sim"])
        assert "--" in table

    def test_format_mean_std_table(self):
        rows = {"GAE": {"cora_sim": {"acc": {"mean": 0.556, "std": 0.049}}}}
        table = format_mean_std_table(rows, ["cora_sim"], metrics=("acc",))
        assert "55.6 ± 4.9" in table

    def test_format_simple_table(self):
        table = format_simple_table(
            [{"case": "no ablation", "acc": 0.767}], columns=["case", "acc"], title="T"
        )
        assert "no ablation" in table and "0.767" in table


@pytest.mark.slow
class TestRunnersIntegration:
    """Integration tests over tiny budgets (each runs a handful of epochs)."""

    def test_run_model_pair_structure(self):
        pair = run_model_pair("dgae", "brazil_air_sim", config=TINY_CONFIG)
        assert len(pair.base_trials) == 1 and len(pair.rethink_trials) == 1
        best = pair.best("base")
        assert 0.0 <= best.accuracy <= 1.0
        stats = pair.mean_std("rethink")
        assert "acc" in stats

    def test_protection_vs_correction_fr(self, tiny_graph):
        rows = protection_vs_correction_fr("dgae", tiny_graph, delays=(0, 5), config=TINY_CONFIG)
        assert rows[0]["mechanism"] == "protection"
        assert rows[1]["mechanism"] == "correction"
        assert all("acc" in row for row in rows)

    def test_protection_vs_correction_fd(self, tiny_graph):
        rows = protection_vs_correction_fd("dgae", tiny_graph, config=TINY_CONFIG)
        assert {row["mechanism"] for row in rows} == {"protection", "correction"}

    def test_threshold_ablation_cases(self, tiny_graph):
        rows = threshold_ablation("dgae", tiny_graph, config=TINY_CONFIG)
        assert len(rows) == 4
        assert {row["case"] for row in rows} == {
            "ablation of alpha2",
            "ablation of alpha1",
            "ablation of both",
            "no ablation",
        }

    def test_edge_operation_ablation_cases(self, tiny_graph):
        rows = edge_operation_ablation("dgae", tiny_graph, config=TINY_CONFIG)
        assert len(rows) == 4

    def test_runtime_comparison_structure(self, tiny_graph):
        timings = runtime_comparison("dgae", tiny_graph, config=TINY_CONFIG, num_runs=1)
        assert set(timings) == {"base", "rethink"}
        for stats in timings.values():
            assert stats["best"] > 0.0 and stats["mean"] >= stats["best"]

    def test_edge_addition_study(self, tiny_graph):
        rows = edge_addition_study(
            "dgae", tiny_graph, num_edges_levels=(0, 30), config=TINY_CONFIG
        )
        assert len(rows) == 2
        assert all({"base", "rethink", "level"} <= set(row) for row in rows)

    def test_threshold_sensitivity_grid(self, tiny_graph):
        rows = threshold_sensitivity_study(
            "dgae",
            tiny_graph,
            alpha1_values=(0.2,),
            alpha2_values=(0.1,),
            config=TINY_CONFIG,
        )
        assert len(rows) == 1 and "final_coverage" in rows[0]

    def test_gamma_sensitivity(self, tiny_graph):
        rows = gamma_sensitivity_study(
            "dgae", tiny_graph, gamma_values=(0.001, 1.0), config=TINY_CONFIG
        )
        assert len(rows) == 2 and all("base" in row and "rethink" in row for row in rows)

    def test_learning_dynamics_study(self, tiny_graph):
        result = learning_dynamics_study("dgae", tiny_graph, config=TINY_CONFIG, snapshot_every=5)
        history = result["history"]
        assert len(history.omega_coverage) > 0
        assert result["final_report"] is not None
        assert all("num_edges" in info for info in result["graph_snapshot_summary"].values())
