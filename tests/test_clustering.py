"""Tests for k-means, the Gaussian mixture model and assignment utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    GaussianMixture,
    KMeans,
    hard_to_one_hot,
    kmeans_plus_plus_init,
    soft_assignment_gaussian,
    soft_assignment_student_t,
    soften_assignments,
    target_distribution,
)
from repro.clustering.assignments import estimate_cluster_moments
from repro.metrics import clustering_accuracy


def make_blobs(rng, num_per_cluster=40, separation=6.0, dim=4, num_clusters=3):
    """Well-separated Gaussian blobs with ground-truth labels."""
    centers = rng.normal(0.0, 1.0, size=(num_clusters, dim)) * separation
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(center + rng.normal(0.0, 0.5, size=(num_per_cluster, dim)))
        labels.extend([index] * num_per_cluster)
    return np.concatenate(points), np.array(labels)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        data, labels = make_blobs(rng)
        predicted = KMeans(3, seed=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.98

    def test_inertia_decreases_with_more_clusters(self, rng):
        data, _ = make_blobs(rng)
        inertia_2 = KMeans(2, seed=0).fit(data).inertia_
        inertia_4 = KMeans(4, seed=0).fit(data).inertia_
        assert inertia_4 < inertia_2

    def test_predict_assigns_to_nearest_center(self, rng):
        data, _ = make_blobs(rng)
        model = KMeans(3, seed=0).fit(data)
        predictions = model.predict(model.cluster_centers_)
        assert sorted(predictions.tolist()) == [0, 1, 2]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_more_clusters_than_points_raises(self):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((2, 2)), 5, np.random.default_rng(0))

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_handles_duplicate_points(self):
        data = np.ones((10, 3))
        labels = KMeans(2, seed=0, num_init=2).fit_predict(data)
        assert labels.shape == (10,)

    def test_deterministic_for_fixed_seed(self, rng):
        data, _ = make_blobs(rng)
        a = KMeans(3, seed=5).fit_predict(data)
        b = KMeans(3, seed=5).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_plus_plus_spreads_centers(self, rng):
        data, _ = make_blobs(rng, separation=10.0)
        centers = kmeans_plus_plus_init(data, 3, rng)
        distances = np.linalg.norm(centers[:, None] - centers[None, :], axis=-1)
        off_diag = distances[~np.eye(3, dtype=bool)]
        assert off_diag.min() > 1.0


class TestGaussianMixture:
    def test_recovers_separated_blobs(self, rng):
        data, labels = make_blobs(rng)
        predicted = GaussianMixture(3, seed=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.98

    def test_responsibilities_are_row_stochastic(self, rng):
        data, _ = make_blobs(rng)
        mixture = GaussianMixture(3, seed=0).fit(data)
        np.testing.assert_allclose(mixture.responsibilities_.sum(axis=1), 1.0, atol=1e-9)

    def test_weights_sum_to_one(self, rng):
        data, _ = make_blobs(rng)
        mixture = GaussianMixture(3, seed=0).fit(data)
        assert mixture.weights_.sum() == pytest.approx(1.0)

    def test_variances_positive(self, rng):
        data, _ = make_blobs(rng)
        mixture = GaussianMixture(3, seed=0).fit(data)
        assert np.all(mixture.variances_ > 0.0)

    def test_predict_proba_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianMixture(2).predict_proba(np.zeros((3, 2)))

    def test_log_likelihood_improves_over_kmeans_init(self, rng):
        data, _ = make_blobs(rng, separation=2.0)
        short = GaussianMixture(3, max_iter=1, seed=0).fit(data)
        long = GaussianMixture(3, max_iter=50, seed=0).fit(data)
        assert long.log_likelihood_ >= short.log_likelihood_ - 1e-6

    def test_empty_kmeans_cluster_keeps_weights_aligned(self, monkeypatch):
        """Regression: an empty k-means cluster must not shift the weights of
        the following components (np.unique used to compact the counts)."""
        data = np.vstack(
            [np.tile([0.0, 0.0], (12, 1)), np.tile([10.0, 10.0], (5, 1))]
        )

        class EmptyMiddleClusterKMeans:
            """Stub init assigning clusters 0 and 2, leaving cluster 1 empty."""

            def __init__(self, num_clusters, num_init=10, seed=0, **kwargs):
                self.num_clusters = num_clusters

            def fit(self, points):
                self.labels_ = np.where(points[:, 0] < 5.0, 0, 2).astype(np.int64)
                self.cluster_centers_ = np.array(
                    [[0.0, 0.0], [5.0, 5.0], [10.0, 10.0]]
                )
                return self

        import repro.clustering.gmm as gmm_module

        monkeypatch.setattr(gmm_module, "KMeans", EmptyMiddleClusterKMeans)
        # max_iter=0 freezes the initial weights so they can be inspected.
        mixture = GaussianMixture(3, max_iter=0, seed=0).fit(data)

        expected = np.array([12.0 / 17.0, 1.0 / 3.0, 5.0 / 17.0])
        expected /= expected.sum()
        np.testing.assert_allclose(mixture.weights_, expected, atol=1e-12)
        # The buggy np.unique version credited cluster 2's count to component 1
        # and gave the uniform floor to component 2 instead.
        buggy = np.array([12.0 / 17.0, 5.0 / 17.0, 1.0 / 3.0])
        buggy /= buggy.sum()
        assert not np.allclose(mixture.weights_, buggy)

    def test_empty_cluster_weights_on_real_kmeans(self):
        """With 2 distinct point locations and 3 components, k-means leaves a
        cluster empty; the fitted mixture must stay a valid distribution."""
        data = np.vstack(
            [np.tile([0.0, 0.0], (12, 1)), np.tile([10.0, 10.0], (5, 1))]
        )
        mixture = GaussianMixture(3, seed=0).fit(data)
        assert mixture.weights_.sum() == pytest.approx(1.0)
        assert np.all(mixture.weights_ > 0.0)
        assert np.all(np.isfinite(mixture.responsibilities_))


class TestAssignments:
    def test_hard_to_one_hot(self):
        one_hot = hard_to_one_hot(np.array([0, 2, 1]), num_clusters=3)
        np.testing.assert_allclose(one_hot, np.eye(3)[[0, 2, 1]])

    def test_soft_gaussian_row_stochastic(self, rng):
        z = rng.normal(size=(20, 4))
        centers = rng.normal(size=(3, 4))
        soft = soft_assignment_gaussian(z, centers)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0, atol=1e-9)

    def test_soft_gaussian_prefers_nearest_center(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        z = np.array([[0.1, -0.1], [9.8, 10.2]])
        soft = soft_assignment_gaussian(z, centers)
        assert soft[0, 0] > 0.9 and soft[1, 1] > 0.9

    def test_soft_gaussian_temperature_flattens(self, rng):
        centers = np.array([[0.0, 0.0], [4.0, 4.0]])
        z = np.array([[1.0, 1.0]])
        sharp = soft_assignment_gaussian(z, centers, temperature=1.0)
        flat = soft_assignment_gaussian(z, centers, temperature=50.0)
        assert flat.max() < sharp.max()

    def test_soft_gaussian_rejects_bad_temperature(self, rng):
        with pytest.raises(ValueError):
            soft_assignment_gaussian(rng.normal(size=(3, 2)), rng.normal(size=(2, 2)), temperature=0.0)

    def test_student_t_row_stochastic_and_ordering(self, rng):
        centers = np.array([[0.0, 0.0], [5.0, 5.0]])
        z = np.array([[0.2, 0.0], [5.1, 4.9]])
        soft = soft_assignment_student_t(z, centers)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0, atol=1e-9)
        assert soft[0, 0] > soft[0, 1] and soft[1, 1] > soft[1, 0]

    def test_target_distribution_sharpens(self, rng):
        soft = np.array([[0.6, 0.4], [0.55, 0.45]])
        target = target_distribution(soft)
        np.testing.assert_allclose(target.sum(axis=1), 1.0, atol=1e-9)
        assert target[0, 0] > soft[0, 0]

    def test_soften_assignments_passthrough_for_soft_input(self, rng):
        soft = rng.random((10, 3))
        soft /= soft.sum(axis=1, keepdims=True)
        out = soften_assignments(soft, rng.normal(size=(10, 4)))
        np.testing.assert_allclose(out, soft)

    def test_soften_assignments_converts_hard_input(self, rng):
        data, labels = make_blobs(rng)
        hard = hard_to_one_hot(labels)
        soft = soften_assignments(hard, data)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0, atol=1e-9)
        assert np.any((soft > 0.0) & (soft < 1.0))
        # argmax preserved for well separated blobs
        assert clustering_accuracy(labels, np.argmax(soft, axis=1)) > 0.98

    def test_soften_assignments_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            soften_assignments(np.array([0, 1, 1]), rng.normal(size=(3, 2)))

    def test_estimate_cluster_moments_handles_empty_cluster(self, rng):
        embeddings = rng.normal(size=(10, 3))
        labels = np.zeros(10, dtype=int)  # cluster 1 and 2 empty
        centers, variances = estimate_cluster_moments(embeddings, labels, 3)
        assert centers.shape == (3, 3) and variances.shape == (3, 3)
        assert np.all(np.isfinite(centers)) and np.all(variances > 0)
