"""Tests for :mod:`repro.resilience`: the supervised pool, deterministic
fault injection, journaled resume, and the hardened artifact store.

The headline invariant, asserted end to end in :class:`TestChaosDeterminism`:
a sweep with injected faults and retries enabled returns results bitwise
identical to a fault-free serial run.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.env import (
    FAULTS_ENV,
    MAX_RETRIES_ENV,
    STORE_MAX_BYTES_ENV,
    TRIAL_TIMEOUT_ENV,
)
from repro.errors import (
    ArtifactCorruptError,
    ConfigError,
    FaultPlanError,
    InjectedFaultError,
    TrialFailedError,
    TrialTimeoutError,
)
from repro.parallel import run_seeded, run_sweep
from repro.resilience import (
    RetryPolicy,
    SweepJournal,
    TrialFailure,
    backoff_delay,
    fault_decision,
    parse_fault_plan,
    supervised_map,
    sweep_key,
)
from repro.resilience.faults import FaultRule, corrupt_file
from repro.store import ArtifactStore, Snapshot, warm_pretrain

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

_SWEEP_SPEC = {
    "dataset": "brazil_air_sim",
    "model": "gae",
    "variant": "rethink",
    "seed": 0,
    "training": {"pretrain_epochs": 2, "rethink_epochs": 2},
    "rethink": {"overrides": {"update_omega_every": 2, "update_graph_every": 2}},
}


def _strip(result):
    """A result summary with the wall-clock-dependent fields removed."""
    summary = result.summary()
    summary.pop("runtime_seconds", None)
    return summary


# ----------------------------------------------------------------------
# module-level work functions (pool workers pickle their work units)
# ----------------------------------------------------------------------
def _double(x):
    return 2 * x


def _sleep_then_double(x):
    time.sleep(float(x) / 10.0)
    return 2 * x


_flaky_counts = {}


def _flaky_twice(x):
    """Fails the first two calls per item; in-process retry tests only."""
    count = _flaky_counts.get(x, 0) + 1
    _flaky_counts[x] = count
    if count <= 2:
        raise ValueError(f"transient failure {count} for {x}")
    return 2 * x


def _always_fails(x):
    raise ValueError(f"permanent failure for {x}")


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_empty_and_rules(self):
        assert parse_fault_plan(None) == ()
        assert parse_fault_plan("  ") == ()
        rules = parse_fault_plan(
            "worker_crash:p=0.3:seed=7,store_corrupt,trial_hang:seconds=2:match=seed3"
        )
        assert [r.kind for r in rules] == ["worker_crash", "store_corrupt", "trial_hang"]
        assert rules[0].probability == 0.3 and rules[0].seed == 7
        assert rules[1].probability == 1.0
        assert rules[2].seconds == 2.0 and rules[2].match == "seed3"

    def test_parse_errors_are_typed(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            parse_fault_plan("segfault")
        with pytest.raises(FaultPlanError, match="name=value"):
            parse_fault_plan("worker_crash:p")
        with pytest.raises(FaultPlanError, match="unknown fault rule field"):
            parse_fault_plan("worker_crash:q=1")
        with pytest.raises(FaultPlanError, match="bad numeric"):
            parse_fault_plan("worker_crash:p=lots")
        with pytest.raises(FaultPlanError, match=r"\[0, 1\]"):
            parse_fault_plan("worker_crash:p=1.5")

    def test_decision_is_deterministic_and_site_scoped(self):
        rule = FaultRule(kind="trial_error", probability=0.5, seed=3)
        decisions = [fault_decision(rule, "trial", f"k{i}") for i in range(200)]
        assert decisions == [fault_decision(rule, "trial", f"k{i}") for i in range(200)]
        # roughly half fire at p=0.5; both outcomes occur
        fired = sum(decisions)
        assert 60 < fired < 140
        assert not fault_decision(rule, "store_write", "k0")
        matched = FaultRule(kind="trial_error", match="seed3")
        assert fault_decision(matched, "trial", "spec-seed3#a1")
        assert not fault_decision(matched, "trial", "spec-seed4#a1")

    def test_inject_degrades_to_typed_error_in_process(self, monkeypatch):
        from repro.resilience import faults

        monkeypatch.setenv(FAULTS_ENV, "worker_crash:p=1")
        with pytest.raises(InjectedFaultError, match="worker_crash"):
            faults.inject("trial", "anything#a1")
        monkeypatch.setenv(FAULTS_ENV, "trial_hang:p=1")
        with pytest.raises(InjectedFaultError, match="trial_hang"):
            faults.inject("trial", "anything#a1")

    def test_corrupt_file_truncates(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"x" * 100)
        monkeypatch.setenv(FAULTS_ENV, "store_corrupt:p=1")
        assert corrupt_file("store_write", "some-key", str(path))
        assert path.stat().st_size == 50
        monkeypatch.setenv(FAULTS_ENV, "")
        path.write_bytes(b"x" * 100)
        assert not corrupt_file("store_write", "some-key", str(path))
        assert path.stat().st_size == 100


# ----------------------------------------------------------------------
# retry policy and backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=-0.1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "3")
        monkeypatch.setenv(TRIAL_TIMEOUT_ENV, "12.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 4
        assert policy.timeout == 12.5
        # explicit arguments win; timeout 0 means "none"
        assert RetryPolicy.from_env(max_attempts=1).max_attempts == 1
        assert RetryPolicy.from_env(timeout=0).timeout is None
        monkeypatch.setenv(MAX_RETRIES_ENV, "-1")
        with pytest.raises(ConfigError):
            RetryPolicy.from_env()

    def test_backoff_is_deterministic_bounded_and_jittered(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_max=0.4)
        delays = [backoff_delay(policy, "trial-a", n) for n in (1, 2, 3, 4)]
        assert delays == [backoff_delay(policy, "trial-a", n) for n in (1, 2, 3, 4)]
        for attempt, delay in enumerate(delays, start=1):
            step = min(0.4, 0.1 * 2 ** (attempt - 1))
            assert 0.5 * step <= delay <= step
        # jitter de-synchronises different keys
        assert backoff_delay(policy, "trial-a", 1) != backoff_delay(policy, "trial-b", 1)


# ----------------------------------------------------------------------
# supervised_map semantics (serial and pooled)
# ----------------------------------------------------------------------
class TestSupervisedMap:
    def test_ordered_results_and_attempt_records(self):
        outcome = supervised_map(_double, [3, 1, 2], jobs=1)
        assert outcome.results == [6, 2, 4]
        assert outcome.ok and outcome.failures == []

    def test_serial_retries_until_success(self):
        _flaky_counts.clear()
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001)
        outcome = supervised_map(_flaky_twice, [7], jobs=1, policy=policy)
        assert outcome.results == [14]
        assert outcome.ok

    def test_quarantine_keeps_the_sweep_alive(self):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.001)
        outcome = supervised_map(
            _always_fails, ["a", "b"], jobs=1, policy=policy, keys=["ka", "kb"]
        )
        assert not outcome.ok
        assert [type(slot) for slot in outcome.results] == [TrialFailure, TrialFailure]
        failure = outcome.failures[0]
        assert failure.key == "ka" and len(failure.attempts) == 2
        assert isinstance(failure.error, TrialFailedError)
        report = outcome.report()
        assert report["total"] == 2 and report["failed"] == 2
        assert report["failures"][0]["attempts"][0]["outcome"] == "error"
        assert report["policy"]["max_attempts"] == 2

    def test_fail_fast_raises_typed_error_with_history(self):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.001)
        with pytest.raises(TrialFailedError, match="2 attempt"):
            supervised_map(_always_fails, ["a"], jobs=1, policy=policy, fail_fast=True)

    def test_typed_errors_pickle_round_trip(self):
        error = TrialFailedError("k", [{"attempt": 1, "outcome": "error"}])
        clone = pickle.loads(pickle.dumps(error))
        assert clone.key == "k" and clone.attempts == error.attempts
        timeout = TrialTimeoutError("k", [{"attempt": 1, "outcome": "timeout"}], 5.0)
        clone = pickle.loads(pickle.dumps(timeout))
        assert clone.timeout == 5.0

    def test_pooled_worker_crash_is_retried_and_recovers(self, monkeypatch):
        # the crash fires on attempt 1 of the matched item only: the
        # attempt index is folded into the fault key, so the retry re-rolls
        monkeypatch.setenv(FAULTS_ENV, "worker_crash:p=1:match=victim#a1")
        policy = RetryPolicy(max_attempts=4, backoff_base=0.001)
        outcome = supervised_map(
            _double,
            [1, 2, 3, 4],
            jobs=2,
            policy=policy,
            keys=["victim", "k2", "k3", "k4"],
        )
        assert outcome.results == [2, 4, 6, 8]
        assert outcome.ok

    def test_pooled_permanent_crash_quarantined_others_survive(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker_crash:p=1:match=victim")
        policy = RetryPolicy(max_attempts=2, backoff_base=0.001)
        outcome = supervised_map(
            _double,
            [1, 2, 3, 4],
            jobs=2,
            policy=policy,
            keys=["victim", "k2", "k3", "k4"],
        )
        assert not outcome.ok
        assert isinstance(outcome.results[0], TrialFailure)
        assert outcome.results[1:] == [4, 6, 8]
        outcomes = {a["outcome"] for a in outcome.failures[0].attempts}
        assert "pool_broken" in outcomes

    def test_pooled_timeout_reaps_hung_trial(self):
        policy = RetryPolicy(max_attempts=1, timeout=0.5, backoff_base=0.001)
        # item 30 sleeps 3 s (over budget); items 1-2 finish quickly
        outcome = supervised_map(
            _sleep_then_double, [30, 1, 2], jobs=2, policy=policy,
            keys=["hung", "fast1", "fast2"],
        )
        assert isinstance(outcome.results[0], TrialFailure)
        assert isinstance(outcome.failures[0].error, TrialTimeoutError)
        assert outcome.failures[0].attempts[-1]["outcome"] == "timeout"
        assert outcome.results[1:] == [2, 4]

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="keys"):
            supervised_map(_double, [1, 2], jobs=1, keys=["only-one"])


# ----------------------------------------------------------------------
# journaled sweeps
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_sweep_key_depends_on_trial_list(self):
        assert sweep_key(["a", "b"]) == sweep_key(["a", "b"])
        assert sweep_key(["a", "b"]) != sweep_key(["b", "a"])
        assert sweep_key(["a", "b"]) != sweep_key(["a", "b", "c"])

    def test_record_load_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        journal = SweepJournal(store, ["t0", "t1", "t2"])
        assert journal.load() == {}
        journal.record(1, {"metric": 0.5})
        journal.record(2, {"metric": 0.7})
        assert journal.load() == {1: {"metric": 0.5}, 2: {"metric": 0.7}}
        assert journal.describe()["journaled"] == 2
        assert journal.clear() == 2
        assert journal.load() == {}

    def test_corrupt_entry_treated_as_missing(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        journal = SweepJournal(store, ["t0", "t1"])
        journal.record(0, "fine")
        journal.record(1, "doomed")
        blob_path = store._blob_path(journal.category, "t1")
        with open(blob_path, "r+b") as handle:
            handle.truncate(3)
        assert journal.load() == {0: "fine"}  # corrupt entry re-runs
        assert store.quarantined()  # and was quarantined as evidence


# ----------------------------------------------------------------------
# store hardening
# ----------------------------------------------------------------------
class TestStoreHardening:
    def _snapshot(self):
        from repro.models import build_model
        from repro.graph.generators import attributed_sbm_graph

        graph = attributed_sbm_graph(
            num_nodes=30, proportions=[0.5, 0.5], p_intra=0.3, p_inter=0.05,
            num_features=5, active_per_class=2, signal=0.4, noise=0.02, seed=0,
        )
        model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        return graph, model, Snapshot.capture(model)

    def test_checksum_mismatch_quarantines_and_raises(self, tmp_path):
        _, _, snapshot = self._snapshot()
        store = ArtifactStore(str(tmp_path))
        key = "ab" + "0" * 62
        path = store.put(key, snapshot)
        with open(path, "ab") as handle:
            handle.write(b"bitrot")
        with pytest.raises(ArtifactCorruptError, match="SHA-256"):
            store.get(key)
        assert not store.contains(key)  # moved out of service
        assert len(store.quarantined()) == 2  # object + manifest
        assert store.stats()["corrupt"] == 1
        # a second read is a plain miss, served by the default
        assert store.get(key, default=None) is None

    def test_truncated_snapshot_raises_typed_corrupt_error(self, tmp_path):
        _, _, snapshot = self._snapshot()
        store = ArtifactStore(str(tmp_path))
        key = "cd" + "0" * 62
        path = store.put(key, snapshot)
        # rewrite manifest checksum to match the truncated payload, so the
        # failure happens at unpickling depth rather than checksum depth
        with open(path, "r+b") as handle:
            handle.truncate(10)
        import hashlib
        import json as json_mod

        manifest_path = store._manifest_path(key)
        with open(manifest_path) as handle:
            manifest = json_mod.load(handle)
        with open(path, "rb") as handle:
            manifest["sha256"] = hashlib.sha256(handle.read()).hexdigest()
        with open(manifest_path, "w") as handle:
            json_mod.dump(manifest, handle)
        with pytest.raises(ArtifactCorruptError, match="unpickled"):
            store.get(key)
        assert store.quarantined()

    def test_blob_corruption_detected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_blob("journal/abc", "entry", [1, 2, 3])
        assert store.get_blob("journal/abc", "entry") == [1, 2, 3]
        path = store._blob_path("journal/abc", "entry")
        with open(path, "r+b") as handle:
            handle.truncate(2)
        with pytest.raises(ArtifactCorruptError, match=path.split(os.sep)[-1]):
            store.get_blob("journal/abc", "entry")
        assert store.blob_names("journal/abc") == []

    def test_gc_evicts_lru_within_budget(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        for index in range(4):
            store.put_blob("journal/gc", f"blob{index}", b"x" * 1000)
            time.sleep(0.01)
        # touching blob0 makes it the most recently used
        store.get_blob("journal/gc", "blob0")
        total = store.total_bytes()
        stats = store.gc(max_bytes=total - 1)  # force at least one eviction
        assert stats["evicted"] >= 1
        assert stats["remaining_bytes"] <= total - 1
        survivors = store.blob_names("journal/gc")
        assert "blob0" in survivors  # LRU evicts the untouched blobs first
        assert "blob1" not in survivors
        # budget 0 disables eviction
        assert store.gc(max_bytes=0)["evicted"] == 0

    def test_gc_budget_from_env(self, tmp_path, monkeypatch):
        store = ArtifactStore(str(tmp_path))
        store.put_blob("journal/gc", "blob", b"x" * 1000)
        monkeypatch.setenv(STORE_MAX_BYTES_ENV, "1")
        stats = store.gc()
        assert stats["max_bytes"] == 1 and stats["evicted"] == 1

    def test_warm_pretrain_degrades_to_cold_on_corruption(self, tmp_path):
        from repro.models import build_model
        from repro.store import pretrain_cache_key

        graph, model, _ = self._snapshot()
        store = ArtifactStore(str(tmp_path))
        warm_pretrain(model, graph, pretrain_epochs=2, store=store)
        key = pretrain_cache_key(model, 2, graph=graph)
        path = store._object_path(key)
        with open(path, "ab") as handle:
            handle.write(b"bitrot")

        cold = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        with pytest.warns(RuntimeWarning, match="degraded to cold"):
            stats = warm_pretrain(cold, graph, pretrain_epochs=2, store=store)
        assert stats["hit"] is False
        assert stats["degraded"] is True
        assert "ArtifactCorruptError" in stats["degraded_reason"]
        # the fresh pretraining replaced the corrupt artifact
        assert store.contains(key)
        fresh = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        assert warm_pretrain(fresh, graph, pretrain_epochs=2, store=store)["hit"]


# ----------------------------------------------------------------------
# the headline invariant: chaos == fault-free, bitwise
# ----------------------------------------------------------------------
class TestChaosDeterminism:
    def test_faulty_pooled_sweep_equals_fault_free_serial(self, tmp_path, monkeypatch):
        seeds = [0, 1, 2]
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        baseline = run_seeded(_SWEEP_SPEC, seeds, jobs=1)

        # crash probability stays low: a pool break charges a pool_broken
        # attempt to every in-flight trial (attribution is impossible), so
        # crash-heavy plans need a generous retry budget
        monkeypatch.setenv(
            FAULTS_ENV,
            "worker_crash:p=0.2:seed=5,trial_error:p=0.3:seed=2,store_corrupt:p=0.5:seed=9",
        )
        policy = RetryPolicy(max_attempts=20, backoff_base=0.001)
        outcome = run_sweep(
            [dict(_SWEEP_SPEC, seed=s) for s in seeds],
            jobs=2,
            store_dir=str(tmp_path),
            policy=policy,
        )
        assert outcome.ok, outcome.report()
        assert [_strip(r) for r in outcome.results] == [_strip(r) for r in baseline]

    def test_journaled_resume_is_bitwise_identical(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        seeds = [0, 1, 2]
        specs = [dict(_SWEEP_SPEC, seed=s) for s in seeds]
        uninterrupted = run_sweep(specs, jobs=1, store_dir=str(tmp_path / "a"))

        # simulate an interruption: journal only seed 0, then resume
        first = run_sweep(specs[:1], jobs=1, store_dir=str(tmp_path / "b"))
        store = ArtifactStore(str(tmp_path / "b"))
        from repro.parallel import _normalise_spec, _spec_key

        journal = SweepJournal(store, [_spec_key(_normalise_spec(s)) for s in specs])
        journal.record(0, first.results[0])
        resumed = run_sweep(specs, jobs=1, store_dir=str(tmp_path / "b"), resume=True)
        assert resumed.resumed == 1
        assert [_strip(r) for r in resumed.results] == [
            _strip(r) for r in uninterrupted.results
        ]


# ----------------------------------------------------------------------
# process-level regressions: Ctrl-C and kill -9
# ----------------------------------------------------------------------
_SIGINT_CHILD = """
import sys, time
sys.path.insert(0, {src!r})

def _hang(x):
    time.sleep(120)
    return x

if __name__ == "__main__":
    from repro.resilience import supervised_map
    print("STARTED", flush=True)
    supervised_map(_hang, [1, 2, 3, 4], jobs=2)
"""

_KILL9_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.parallel import run_sweep

SPEC = {spec!r}
specs = [dict(SPEC, seed=s) for s in (0, 1, 2, 3)]

def _announce(index, value):
    print(f"DONE {{index}}", flush=True)

if __name__ == "__main__":
    from repro.parallel import _normalise_spec, _spec_key
    from repro.resilience import SweepJournal
    from repro.store import ArtifactStore
    # run_sweep journals internally; echo progress by polling is racy, so
    # run it seed by seed against the full sweep's journal instead
    store = ArtifactStore({store!r})
    journal = SweepJournal(store, [_spec_key(_normalise_spec(s)) for s in specs])
    for index, spec in enumerate(specs):
        result = run_sweep([spec], jobs=1, store_dir={store!r}).results[0]
        journal.record(index, result)
        print(f"DONE {{index}}", flush=True)
"""


class TestProcessRegressions:
    def test_sigint_terminates_pooled_sweep_promptly(self, tmp_path):
        """Ctrl-C used to wedge behind ProcessPoolExecutor.__exit__ waiting
        on workers stuck in 120 s trials; the supervisor kills them."""
        script = tmp_path / "sigint_child.py"
        script.write_text(_SIGINT_CHILD.format(src=REPO_SRC))
        child = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "STARTED"
            time.sleep(1.0)  # let the pool spin up and block in trials
            child.send_signal(signal.SIGINT)
            child.wait(timeout=15)
        except subprocess.TimeoutExpired:
            child.kill()
            pytest.fail("SIGINT did not terminate the pooled sweep within 15s")
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode != 0  # KeyboardInterrupt, not success

    def test_kill9_then_resume_matches_uninterrupted_run(self, tmp_path):
        """A sweep killed -9 partway resumes from its journal: finished
        trials are skipped and the results match an uninterrupted run."""
        store_dir = str(tmp_path / "store")
        script = tmp_path / "kill9_child.py"
        script.write_text(_KILL9_CHILD.format(src=REPO_SRC, spec=_SWEEP_SPEC, store=store_dir))
        child = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            # wait until two seeds are journaled, then kill -9 mid-sweep
            for _ in range(2):
                line = child.stdout.readline()
                assert line.startswith("DONE"), f"child died early: {line!r}"
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()

        specs = [dict(_SWEEP_SPEC, seed=s) for s in (0, 1, 2, 3)]
        resumed = run_sweep(specs, jobs=2, store_dir=store_dir, resume=True)
        assert resumed.resumed >= 2  # the killed run's progress was kept
        uninterrupted = run_sweep(
            specs, jobs=1, store_dir=str(tmp_path / "fresh")
        )
        assert [_strip(r) for r in resumed.results] == [
            _strip(r) for r in uninterrupted.results
        ]
