"""Tests for the RunSpec hierarchy: dict / JSON round-trips and validation."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    DatasetSpec,
    ModelSpec,
    RethinkSpec,
    RunSpec,
    SpecError,
    TrainingSpec,
    UnknownVariantError,
)
from repro.experiments.config import ExperimentConfig


def full_spec() -> RunSpec:
    return RunSpec(
        dataset=DatasetSpec(name="cora_sim", seed=3),
        model=ModelSpec(name="gmm_vgae", options={"gamma": 0.5}),
        variant="rethink",
        seed=7,
        training=TrainingSpec(pretrain_epochs=12, clustering_epochs=8, rethink_epochs=10),
        rethink=RethinkSpec(overrides={"alpha1": 0.7, "stop_at_convergence": False}),
        callbacks=["dynamics", {"name": "graph_snapshots", "every": 5}],
        tags={"table": "1"},
    )


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        spec = full_spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_exact(self):
        spec = full_spec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_serialisable(self):
        json.dumps(full_spec().to_dict())

    def test_minimal_spec_uses_defaults(self):
        spec = RunSpec.from_dict({"dataset": "cora_sim", "model": "gae"})
        assert spec.dataset == DatasetSpec(name="cora_sim")
        assert spec.model == ModelSpec(name="gae")
        assert spec.variant == "rethink"
        assert spec.seed == 0
        assert spec.training == TrainingSpec()
        assert spec.rethink == RethinkSpec()

    def test_shorthand_names_expand(self):
        spec = RunSpec.from_dict(
            {"dataset": {"name": "pubmed_sim", "seed": 2}, "model": "vgae"}
        )
        assert spec.dataset.seed == 2
        assert spec.model.name == "vgae"


class TestValidation:
    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SpecError, match="unknown run spec field"):
            RunSpec.from_dict({"dataset": "cora_sim", "model": "gae", "grap": {}})

    def test_missing_dataset_rejected(self):
        with pytest.raises(SpecError, match="dataset"):
            RunSpec.from_dict({"model": "gae"})

    def test_unknown_variant_rejected(self):
        with pytest.raises(UnknownVariantError, match="refine"):
            RunSpec.from_dict({"dataset": "cora_sim", "model": "gae", "variant": "refine"})

    def test_unknown_rethink_override_rejected(self):
        with pytest.raises(SpecError, match="alpha3"):
            RethinkSpec(overrides={"alpha3": 0.1})

    def test_invalid_json_raises_spec_error(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            RunSpec.from_json("{not json")

    def test_unknown_training_field_rejected(self):
        with pytest.raises(SpecError, match="training"):
            TrainingSpec.from_dict({"warmup_epochs": 5})


class TestConvenience:
    def test_replace_returns_modified_copy(self):
        spec = full_spec()
        base = spec.replace(variant="base")
        assert base.variant == "base"
        assert spec.variant == "rethink"

    def test_describe_mentions_variant_and_names(self):
        assert full_spec().describe() == "R-GMM_VGAE on cora_sim (seed 7)"

    def test_training_spec_from_experiment_config(self):
        config = ExperimentConfig(pretrain_epochs=9, clustering_epochs=7, rethink_epochs=5)
        training = TrainingSpec.from_experiment_config(config)
        assert (training.pretrain_epochs, training.clustering_epochs, training.rethink_epochs) == (9, 7, 5)
