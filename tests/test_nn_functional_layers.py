"""Tests for functional ops, layers, modules and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.init import glorot_uniform, normal, zeros
from repro.nn.layers import Dense, GraphConvolution, InnerProductDecoder, MLP, resolve_activation
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.tensor import Tensor


class TestFunctional:
    def test_sigmoid_range(self, rng):
        values = F.sigmoid(rng.normal(size=(5, 5))).numpy()
        assert np.all(values > 0.0) and np.all(values < 1.0)

    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(rng.normal(size=(6, 4)), axis=1).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_softmax_invariant_to_shift(self, rng):
        logits = rng.normal(size=(3, 4))
        a = F.softmax(logits, axis=1).numpy()
        b = F.softmax(logits + 100.0, axis=1).numpy()
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_bce_with_logits_matches_manual(self, rng):
        logits = rng.normal(size=(4, 4))
        targets = (rng.random((4, 4)) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets).item()
        probs = 1.0 / (1.0 + np.exp(-logits))
        manual = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        assert loss == pytest.approx(manual, rel=1e-6)

    def test_bce_pos_weight_upweights_positives(self, rng):
        logits = np.full((3, 3), -2.0)
        targets = np.eye(3)
        plain = F.binary_cross_entropy_with_logits(logits, targets).item()
        weighted = F.binary_cross_entropy_with_logits(logits, targets, pos_weight=5.0).item()
        assert weighted > plain

    def test_bce_norm_scales_loss(self, rng):
        logits = rng.normal(size=(3, 3))
        targets = np.eye(3)
        base = F.binary_cross_entropy_with_logits(logits, targets, norm=1.0).item()
        doubled = F.binary_cross_entropy_with_logits(logits, targets, norm=2.0).item()
        assert doubled == pytest.approx(2.0 * base)

    def test_bce_sum_is_stable_for_large_logits(self):
        logits = np.array([[100.0, -100.0]])
        targets = np.array([[1.0, 0.0]])
        loss = F.binary_cross_entropy_sum(logits, targets).item()
        assert np.isfinite(loss) and loss < 1e-6

    def test_gaussian_kl_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((5, 3)))
        log_sigma = Tensor(np.zeros((5, 3)))
        assert F.gaussian_kl_divergence(mu, log_sigma).item() == pytest.approx(0.0)

    def test_gaussian_kl_positive_otherwise(self, rng):
        mu = Tensor(rng.normal(size=(5, 3)))
        log_sigma = Tensor(rng.normal(size=(5, 3)) * 0.1)
        assert F.gaussian_kl_divergence(mu, log_sigma).item() > 0.0

    def test_kl_divergence_rows_zero_for_identical(self, rng):
        p = rng.random((4, 3))
        p = p / p.sum(axis=1, keepdims=True)
        assert F.kl_divergence_rows(p, p).item() == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_rows_positive(self, rng):
        p = rng.random((4, 3))
        p /= p.sum(axis=1, keepdims=True)
        q = rng.random((4, 3))
        q /= q.sum(axis=1, keepdims=True)
        assert F.kl_divergence_rows(p, q).item() > 0.0

    def test_dropout_eval_mode_is_identity(self, rng):
        x = rng.normal(size=(5, 5))
        out = F.dropout(x, rate=0.5, rng=rng, training=False)
        np.testing.assert_allclose(out.numpy(), x)

    def test_dropout_preserves_expectation_roughly(self, rng):
        x = np.ones((2000, 1))
        out = F.dropout(x, rate=0.5, rng=rng, training=True).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_mean_squared_error(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert F.mean_squared_error(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_pairwise_squared_distances(self, rng):
        z = rng.normal(size=(6, 3))
        d2 = F.pairwise_squared_distances(z)
        expected = np.sum((z[:, None, :] - z[None, :, :]) ** 2, axis=-1)
        np.testing.assert_allclose(d2, expected, atol=1e-9)


class TestLayers:
    def test_dense_output_shape(self, rng):
        layer = Dense(8, 4, rng=np.random.default_rng(0))
        out = layer(rng.normal(size=(10, 8)))
        assert out.shape == (10, 4)

    def test_dense_relu_nonnegative(self, rng):
        layer = Dense(8, 4, activation="relu", rng=np.random.default_rng(0))
        assert np.all(layer(rng.normal(size=(10, 8))).numpy() >= 0.0)

    def test_dense_linear_activation(self, rng):
        layer = Dense(3, 2, activation=None, rng=np.random.default_rng(0))
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(x).numpy(), expected)

    def test_graph_convolution_propagates_neighbours(self):
        # Two connected nodes: output of node 0 must depend on node 1 features.
        adj_norm = np.array([[0.5, 0.5], [0.5, 0.5]])
        layer = GraphConvolution(2, 2, activation=None, rng=np.random.default_rng(0))
        x1 = np.array([[1.0, 0.0], [0.0, 0.0]])
        x2 = np.array([[1.0, 0.0], [5.0, 5.0]])
        out1 = layer(x1, adj_norm).numpy()
        out2 = layer(x2, adj_norm).numpy()
        assert not np.allclose(out1[0], out2[0])

    def test_graph_convolution_shape(self, tiny_graph):
        from repro.graph.laplacian import normalize_adjacency

        layer = GraphConvolution(tiny_graph.num_features, 8, rng=np.random.default_rng(0))
        out = layer(tiny_graph.features, normalize_adjacency(tiny_graph.adjacency))
        assert out.shape == (tiny_graph.num_nodes, 8)

    def test_inner_product_decoder_symmetry(self, rng):
        decoder = InnerProductDecoder()
        z = Tensor(rng.normal(size=(7, 4)))
        logits = decoder(z).numpy()
        np.testing.assert_allclose(logits, logits.T, atol=1e-12)
        probs = decoder.probabilities(z).numpy()
        assert np.all((probs > 0) & (probs < 1))

    def test_mlp_stacks_layers(self, rng):
        mlp = MLP([6, 5, 4, 1], rng=np.random.default_rng(0))
        assert len(mlp.layers) == 3
        assert mlp(rng.normal(size=(3, 6))).shape == (3, 1)

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_resolve_activation_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_activation("swish")

    def test_resolve_activation_accepts_callable(self):
        fn = resolve_activation(lambda t: t)
        assert callable(fn)


class TestModule:
    def test_parameters_discovery(self):
        mlp = MLP([4, 3, 2], rng=np.random.default_rng(0))
        params = mlp.parameters()
        # two layers, each weight + bias
        assert len(params) == 4

    def test_named_parameters_paths(self):
        mlp = MLP([4, 3, 2], rng=np.random.default_rng(0))
        names = set(mlp.named_parameters())
        assert any("layers.0.weight" in name for name in names)

    def test_state_dict_roundtrip(self):
        source = MLP([4, 3, 2], rng=np.random.default_rng(0))
        target = MLP([4, 3, 2], rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        for a, b in zip(source.parameters(), target.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_load_state_dict_shape_mismatch(self):
        source = MLP([4, 3, 2], rng=np.random.default_rng(0))
        bad_state = {name: value[:1] for name, value in source.state_dict().items()}
        with pytest.raises(ValueError):
            source.load_state_dict(bad_state)

    def test_load_state_dict_missing_key(self):
        source = MLP([4, 3, 2], rng=np.random.default_rng(0))
        state = source.state_dict()
        state.pop(sorted(state)[0])
        with pytest.raises(KeyError):
            source.load_state_dict(state)

    def test_parameter_vector_roundtrip(self):
        mlp = MLP([3, 2], rng=np.random.default_rng(0))
        vector = mlp.parameter_vector()
        mlp.load_parameter_vector(vector * 2.0)
        np.testing.assert_allclose(mlp.parameter_vector(), vector * 2.0)

    def test_train_eval_switch(self):
        mlp = MLP([3, 2], rng=np.random.default_rng(0))
        mlp.eval()
        assert mlp.training is False and mlp.layers[0].training is False
        mlp.train()
        assert mlp.training is True


class TestInit:
    def test_glorot_limits(self):
        weight = glorot_uniform(100, 100, np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert weight.data.max() <= limit and weight.data.min() >= -limit
        assert weight.requires_grad

    def test_zeros(self):
        bias = zeros(5)
        np.testing.assert_allclose(bias.data, 0.0)
        assert bias.requires_grad

    def test_normal_scale(self):
        weight = normal((2000,), 0.5, np.random.default_rng(0))
        assert weight.data.std() == pytest.approx(0.5, abs=0.05)


class TestOptimizers:
    @staticmethod
    def _quadratic_problem():
        target = np.array([3.0, -2.0])
        param = Tensor(np.zeros(2), requires_grad=True)
        return param, target

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((param - Tensor(target)) ** 2.0).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
        assert abs(param.data[0]) < 10.0

    def test_step_skips_parameters_without_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        opt = Adam([a, b], lr=0.1)
        opt.zero_grad()
        (a * 2.0).sum().backward()
        opt.step()
        assert b.data[0] == pytest.approx(2.0)

    def test_adam_coerces_string_betas_from_json_specs(self):
        """Regression: a JSON spec passing betas as strings used to fail deep
        inside step(); they must be coerced to float at construction."""
        param = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([param], lr=0.1, betas=["0.9", "0.999"])
        assert opt.beta1 == pytest.approx(0.9)
        assert opt.beta2 == pytest.approx(0.999)
        opt.zero_grad()
        (param * 2.0).sum().backward()
        opt.step()
        assert np.isfinite(param.data).all()

    @pytest.mark.parametrize(
        "betas", [(0.9,), (0.9, 0.999, 0.5), ("x", "y"), (1.0, 0.999), (-0.1, 0.999), None]
    )
    def test_adam_rejects_invalid_betas(self, betas):
        param = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([param], betas=betas)
