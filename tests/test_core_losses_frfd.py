"""Tests for the theoretical loss decompositions (Props 1-2, Thm 1) and FR/FD metrics.

The decomposition identities are checked both on fixed random instances and
property-based with hypothesis over random embeddings, graphs and partitions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import hard_to_one_hot
from repro.core import (
    aligned_oracle_assignments,
    build_clustering_oriented_graph,
    combined_objective,
    elementary_fd,
    elementary_fr,
    feature_drift_metric,
    feature_randomness_metric,
    gradient_cosine,
    graph_filter_impact,
    kmeans_loss,
    laplacian_term,
    reconstruction_bce_sum,
    reconstruction_remainder,
    supervision_graph,
    clustering_graph,
)
from repro.core.losses import kmeans_loss_as_laplacian
from repro.models import build_model


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def embedding_graph_partition(draw):
    """Random (Z, A, labels) triple of modest size."""
    n = draw(st.integers(min_value=4, max_value=12))
    d = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=min(3, n)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    z = rng.normal(0.0, 1.0, size=(n, d))
    upper = np.triu((rng.random((n, n)) < 0.4), k=1)
    adjacency = (upper | upper.T).astype(float)
    labels = rng.integers(0, k, size=n)
    # Guarantee every cluster id below k appears at least once.
    labels[:k] = np.arange(k)
    return z, adjacency, labels


class TestLossDecompositions:
    def test_proposition1_fixed_instance(self, rng):
        z = rng.normal(size=(10, 4))
        upper = np.triu(rng.random((10, 10)) < 0.3, k=1)
        adjacency = (upper | upper.T).astype(float)
        left = reconstruction_bce_sum(z, adjacency)
        right = laplacian_term(z, adjacency) + reconstruction_remainder(z, adjacency)
        assert left == pytest.approx(right, rel=1e-9)

    def test_proposition2_fixed_instance(self, rng):
        z = rng.normal(size=(12, 3))
        labels = rng.integers(0, 3, size=12)
        labels[:3] = [0, 1, 2]
        assert kmeans_loss(z, labels) == pytest.approx(kmeans_loss_as_laplacian(z, labels), rel=1e-9)

    def test_theorem1_fixed_instance(self, rng):
        z = rng.normal(size=(10, 3))
        upper = np.triu(rng.random((10, 10)) < 0.3, k=1)
        adjacency = (upper | upper.T).astype(float)
        labels = rng.integers(0, 2, size=10)
        labels[:2] = [0, 1]
        result = combined_objective(z, adjacency, labels, gamma=0.7)
        assert result["gap"] < 1e-8 * max(1.0, abs(result["direct"]))

    @settings(max_examples=40, deadline=None)
    @given(data=embedding_graph_partition())
    def test_proposition1_property(self, data):
        z, adjacency, _ = data
        left = reconstruction_bce_sum(z, adjacency)
        right = laplacian_term(z, adjacency) + reconstruction_remainder(z, adjacency)
        assert left == pytest.approx(right, rel=1e-8, abs=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(data=embedding_graph_partition())
    def test_proposition2_property(self, data):
        z, _, labels = data
        assert kmeans_loss(z, labels) == pytest.approx(
            kmeans_loss_as_laplacian(z, labels), rel=1e-8, abs=1e-8
        )

    @settings(max_examples=40, deadline=None)
    @given(data=embedding_graph_partition(), gamma=st.floats(min_value=0.01, max_value=5.0))
    def test_theorem1_property(self, data, gamma):
        z, adjacency, labels = data
        result = combined_objective(z, adjacency, labels, gamma=gamma)
        scale = max(1.0, abs(result["direct"]))
        assert result["gap"] < 1e-7 * scale

    def test_laplacian_term_nonnegative(self, rng):
        z = rng.normal(size=(8, 3))
        upper = np.triu(rng.random((8, 8)) < 0.5, k=1)
        adjacency = (upper | upper.T).astype(float)
        assert laplacian_term(z, adjacency) >= 0.0

    def test_kmeans_loss_zero_for_collapsed_clusters(self):
        z = np.tile(np.array([[1.0, 2.0]]), (6, 1))
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert kmeans_loss(z, labels) == pytest.approx(0.0)


class TestElementaryMetrics:
    def test_elementary_fr_positive_when_clustering_matches_truth(self, rng):
        z = rng.normal(size=(12, 3))
        labels = np.repeat([0, 1, 2], 4)
        a_sup = supervision_graph(labels)
        a_clus = clustering_graph(hard_to_one_hot(labels))
        values = elementary_fr(z, a_clus, a_sup)
        # identical graphs -> inner product of identical gradients -> >= 0
        assert np.all(values >= -1e-9)

    def test_elementary_fd_shape(self, rng, tiny_graph):
        z = rng.normal(size=(tiny_graph.num_nodes, 4))
        a_sup = supervision_graph(tiny_graph.labels)
        values = elementary_fd(z, tiny_graph.adjacency, a_sup)
        assert values.shape == (tiny_graph.num_nodes,)
        assert np.all(np.isfinite(values))

    def test_graph_filter_impact_positive_on_homophilous_graph(self, tiny_graph):
        impact = graph_filter_impact(
            tiny_graph.row_normalized_features(), tiny_graph.adjacency, tiny_graph.labels
        )
        # On a strongly homophilous SBM the filtering helps most nodes.
        assert impact.shape == (tiny_graph.num_nodes,)
        assert np.mean(impact >= 0.0) > 0.5


class TestGradientMetrics:
    def test_gradient_cosine_of_identical_losses_is_one(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)

        def loss():
            z = pretrained_dgae.encode(features, adj_norm, sample=False)
            return pretrained_dgae.reconstruction_loss(z, tiny_graph.adjacency)

        assert gradient_cosine(pretrained_dgae, loss, loss) == pytest.approx(1.0, abs=1e-6)

    def test_gradient_cosine_of_opposite_losses_is_minus_one(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)

        def loss():
            z = pretrained_dgae.encode(features, adj_norm, sample=False)
            return pretrained_dgae.reconstruction_loss(z, tiny_graph.adjacency)

        def negative_loss():
            z = pretrained_dgae.encode(features, adj_norm, sample=False)
            return pretrained_dgae.reconstruction_loss(z, tiny_graph.adjacency) * -1.0

        assert gradient_cosine(pretrained_dgae, loss, negative_loss) == pytest.approx(-1.0, abs=1e-6)

    def test_gradient_cosine_clears_model_gradients(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)

        def loss():
            z = pretrained_dgae.encode(features, adj_norm, sample=False)
            return pretrained_dgae.reconstruction_loss(z, tiny_graph.adjacency)

        gradient_cosine(pretrained_dgae, loss, loss)
        assert np.all(pretrained_dgae.gradient_vector() == 0.0)

    def test_feature_randomness_metric_range(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)
        embeddings = pretrained_dgae.embed(tiny_graph)
        assignments = pretrained_dgae.predict_assignments(embeddings)
        oracle = aligned_oracle_assignments(tiny_graph.labels, assignments)
        value = feature_randomness_metric(pretrained_dgae, features, adj_norm, oracle)
        assert -1.0 <= value <= 1.0

    def test_feature_randomness_metric_requires_second_group(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        with pytest.raises(TypeError):
            feature_randomness_metric(model, None, None, None)

    def test_feature_drift_metric_identical_graphs_is_one(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)
        value = feature_drift_metric(
            pretrained_dgae, features, adj_norm, tiny_graph.adjacency, tiny_graph.adjacency
        )
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_feature_drift_metric_with_oracle_graph(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)
        embeddings = pretrained_dgae.embed(tiny_graph)
        assignments = pretrained_dgae.predict_assignments(embeddings)
        oracle = aligned_oracle_assignments(tiny_graph.labels, assignments)
        oracle_graph = build_clustering_oriented_graph(
            tiny_graph.adjacency, oracle, np.arange(tiny_graph.num_nodes), embeddings
        )
        value = feature_drift_metric(
            pretrained_dgae, features, adj_norm, tiny_graph.adjacency, oracle_graph
        )
        assert -1.0 <= value <= 1.0
