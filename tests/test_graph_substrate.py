"""Tests for the graph container, normalisation, generators, edits, stats and IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    AttributedGraph,
    add_feature_noise,
    add_random_edges,
    add_self_loops,
    attributed_sbm_graph,
    degree_corrected_sbm,
    degree_matrix,
    degree_vector,
    density,
    drop_random_edges,
    drop_random_features,
    edge_count,
    edge_difference,
    graph_laplacian,
    homophily,
    laplacian_quadratic_form,
    load_graph_npz,
    normalize_adjacency,
    planted_partition_features,
    save_graph_npz,
    star_subgraph_count,
    stochastic_block_model,
    connected_components,
)
from repro.graph.stats import describe


class TestAttributedGraph:
    def test_basic_properties(self, tiny_graph):
        assert tiny_graph.num_nodes == 90
        assert tiny_graph.num_features == 40
        assert tiny_graph.num_clusters == 3
        assert tiny_graph.num_edges == edge_count(tiny_graph.adjacency)

    def test_rejects_asymmetric_adjacency(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1.0
        with pytest.raises(ValueError):
            AttributedGraph(adjacency, np.zeros((3, 2)))

    def test_rejects_self_loops(self):
        adjacency = np.eye(3)
        with pytest.raises(ValueError):
            AttributedGraph(adjacency, np.zeros((3, 2)))

    def test_rejects_non_binary(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 0.5
        with pytest.raises(ValueError):
            AttributedGraph(adjacency, np.zeros((3, 2)))

    def test_rejects_feature_shape_mismatch(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((3, 3)), np.zeros((4, 2)))

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((3, 3)), np.zeros((3, 2)), labels=np.zeros(4, dtype=int))

    def test_num_clusters_from_metadata(self):
        graph = AttributedGraph(np.zeros((3, 3)), np.zeros((3, 2)), metadata={"num_clusters": 5})
        assert graph.num_clusters == 5

    def test_num_clusters_without_info_raises(self):
        graph = AttributedGraph(np.zeros((3, 3)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            graph.num_clusters

    def test_copy_is_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.adjacency[0, 1] = 1.0 - clone.adjacency[0, 1]
        assert clone.adjacency[0, 1] != tiny_graph.adjacency[0, 1]

    def test_with_adjacency_keeps_features(self, tiny_graph):
        new_adj = np.zeros_like(tiny_graph.adjacency)
        modified = tiny_graph.with_adjacency(new_adj)
        assert modified.num_edges == 0
        np.testing.assert_allclose(modified.features, tiny_graph.features)

    def test_neighbors_and_edge_list_consistent(self, tiny_graph):
        edges = tiny_graph.edge_list()
        assert edges.shape[1] == 2
        node = int(edges[0, 0])
        assert edges[0, 1] in tiny_graph.neighbors(node)

    def test_row_normalized_features_unit_norm(self, tiny_graph):
        normalized = tiny_graph.row_normalized_features()
        norms = np.linalg.norm(normalized, axis=1)
        nonzero = np.linalg.norm(tiny_graph.features, axis=1) > 0
        np.testing.assert_allclose(norms[nonzero], 1.0, atol=1e-9)


class TestLaplacian:
    def test_degree_vector_matches_row_sums(self, tiny_graph):
        np.testing.assert_allclose(
            degree_vector(tiny_graph.adjacency), tiny_graph.adjacency.sum(axis=1)
        )

    def test_degree_matrix_is_diagonal(self, tiny_graph):
        matrix = degree_matrix(tiny_graph.adjacency)
        assert np.count_nonzero(matrix - np.diag(np.diag(matrix))) == 0

    def test_add_self_loops(self):
        adjacency = np.zeros((3, 3))
        np.testing.assert_allclose(np.diag(add_self_loops(adjacency)), 1.0)

    def test_normalized_adjacency_symmetric(self, tiny_graph):
        norm = normalize_adjacency(tiny_graph.adjacency)
        np.testing.assert_allclose(norm, norm.T, atol=1e-12)

    def test_normalized_adjacency_spectral_radius_at_most_one(self, tiny_graph):
        norm = normalize_adjacency(tiny_graph.adjacency, self_loops=True)
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_normalized_adjacency_handles_isolated_nodes(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        norm = normalize_adjacency(adjacency, self_loops=False)
        assert np.all(np.isfinite(norm))
        assert norm[2].sum() == 0.0

    def test_laplacian_row_sums_zero(self, tiny_graph):
        lap = graph_laplacian(tiny_graph.adjacency)
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-9)

    def test_laplacian_quadratic_form_matches_direct_sum(self, rng):
        z = rng.normal(size=(8, 3))
        a = (rng.random((8, 8)) > 0.6).astype(float)
        a = np.triu(a, 1)
        a = a + a.T
        direct = 0.5 * sum(
            a[i, j] * np.sum((z[i] - z[j]) ** 2) for i in range(8) for j in range(8)
        )
        assert laplacian_quadratic_form(z, a) == pytest.approx(direct)

    def test_laplacian_quadratic_form_zero_for_identical_embeddings(self):
        z = np.ones((5, 2))
        a = np.ones((5, 5)) - np.eye(5)
        assert laplacian_quadratic_form(z, a) == pytest.approx(0.0)

    def test_laplacian_quadratic_form_asymmetric_weights(self, rng):
        z = rng.normal(size=(5, 2))
        a = rng.random((5, 5))
        direct = 0.5 * sum(
            a[i, j] * np.sum((z[i] - z[j]) ** 2) for i in range(5) for j in range(5)
        )
        assert laplacian_quadratic_form(z, a) == pytest.approx(direct)


class TestGenerators:
    def test_sbm_shapes_and_labels(self, rng):
        adjacency, labels = stochastic_block_model(60, [0.5, 0.3, 0.2], 0.3, 0.02, rng)
        assert adjacency.shape == (60, 60)
        assert labels.shape == (60,)
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_sbm_homophily_above_noise(self, rng):
        adjacency, labels = stochastic_block_model(200, [0.5, 0.5], 0.2, 0.02, rng)
        assert homophily(adjacency, labels) > 0.6

    def test_sbm_rejects_bad_probabilities(self, rng):
        with pytest.raises(ValueError):
            stochastic_block_model(10, [0.5, 0.5], 0.1, 0.5, rng)

    def test_degree_corrected_sbm_has_hubs(self, rng):
        adjacency, _ = degree_corrected_sbm(200, [0.25] * 4, 0.1, 0.02, rng, degree_exponent=2.0)
        degrees = adjacency.sum(axis=1)
        assert degrees.max() > 3.0 * degrees.mean()

    def test_planted_features_no_empty_rows(self, rng):
        labels = np.repeat(np.arange(3), 20)
        features = planted_partition_features(labels, 60, 10, 0.3, 0.01, rng)
        assert np.all(features.sum(axis=1) > 0)

    def test_planted_features_class_correlation(self, rng):
        labels = np.repeat(np.arange(2), 50)
        features = planted_partition_features(labels, 40, 10, 0.5, 0.01, rng)
        class0_block = features[labels == 0][:, :10].mean()
        class1_block = features[labels == 1][:, :10].mean()
        assert class0_block > 5.0 * class1_block

    def test_planted_features_vocabulary_check(self, rng):
        labels = np.repeat(np.arange(5), 4)
        with pytest.raises(ValueError):
            planted_partition_features(labels, 10, 3, 0.3, 0.01, rng)

    def test_attributed_sbm_deterministic_per_seed(self):
        a = attributed_sbm_graph(50, [0.5, 0.5], 0.2, 0.02, 30, 5, 0.3, 0.01, seed=3)
        b = attributed_sbm_graph(50, [0.5, 0.5], 0.2, 0.02, 30, 5, 0.3, 0.01, seed=3)
        np.testing.assert_allclose(a.adjacency, b.adjacency)
        np.testing.assert_allclose(a.features, b.features)

    def test_attributed_sbm_degree_onehot_mode(self):
        graph = attributed_sbm_graph(
            40, [0.5, 0.5], 0.2, 0.05, 11, 0, 0.0, 0.0, seed=1, features="degree_onehot"
        )
        np.testing.assert_allclose(graph.features.sum(axis=1), 1.0)

    def test_attributed_sbm_unknown_feature_mode(self):
        with pytest.raises(ValueError):
            attributed_sbm_graph(20, [1.0], 0.2, 0.0, 5, 1, 0.5, 0.0, seed=0, features="bogus")


class TestGraphOps:
    def test_add_random_edges_increases_count(self, tiny_graph, rng):
        modified = add_random_edges(tiny_graph, 15, rng)
        assert modified.num_edges == tiny_graph.num_edges + 15
        modified.validate()

    def test_add_random_edges_too_many(self, tiny_graph, rng):
        possible = tiny_graph.num_nodes * (tiny_graph.num_nodes - 1) // 2
        with pytest.raises(ValueError):
            add_random_edges(tiny_graph, possible, rng)

    def test_drop_random_edges_decreases_count(self, tiny_graph, rng):
        modified = drop_random_edges(tiny_graph, 10, rng)
        assert modified.num_edges == tiny_graph.num_edges - 10
        modified.validate()

    def test_drop_random_edges_too_many(self, tiny_graph, rng):
        with pytest.raises(ValueError):
            drop_random_edges(tiny_graph, tiny_graph.num_edges + 1, rng)

    def test_add_feature_noise_zero_variance_identity(self, tiny_graph, rng):
        modified = add_feature_noise(tiny_graph, 0.0, rng)
        np.testing.assert_allclose(modified.features, tiny_graph.features)

    def test_add_feature_noise_changes_features(self, tiny_graph, rng):
        modified = add_feature_noise(tiny_graph, 0.1, rng)
        assert not np.allclose(modified.features, tiny_graph.features)

    def test_add_feature_noise_rejects_negative_variance(self, tiny_graph, rng):
        with pytest.raises(ValueError):
            add_feature_noise(tiny_graph, -0.1, rng)

    def test_drop_random_features_zeroes_columns(self, tiny_graph, rng):
        modified = drop_random_features(tiny_graph, 5, rng)
        zero_columns = np.sum(modified.features.sum(axis=0) == 0)
        assert zero_columns >= 5

    def test_drop_random_features_too_many(self, tiny_graph, rng):
        with pytest.raises(ValueError):
            drop_random_features(tiny_graph, tiny_graph.num_features + 1, rng)

    def test_edge_difference_counts(self):
        labels = np.array([0, 0, 1, 1])
        original = np.zeros((4, 4))
        original[0, 2] = original[2, 0] = 1.0  # false link to be deleted
        modified = np.zeros((4, 4))
        modified[0, 1] = modified[1, 0] = 1.0  # true link added
        stats = edge_difference(original, modified, labels)
        assert stats["added_true_links"] == 1
        assert stats["added_false_links"] == 0
        assert stats["deleted_false_links"] == 1
        assert stats["total_links"] == 1


class TestStats:
    def test_density_bounds(self, tiny_graph):
        value = density(tiny_graph.adjacency)
        assert 0.0 < value < 1.0

    def test_density_empty_graph(self):
        assert density(np.zeros((1, 1))) == 0.0

    def test_homophily_perfect_for_block_diagonal(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[2, 3] = adjacency[3, 2] = 1.0
        assert homophily(adjacency, np.array([0, 0, 1, 1])) == 1.0

    def test_homophily_zero_edges(self):
        assert homophily(np.zeros((3, 3)), np.array([0, 1, 2])) == 0.0

    def test_connected_components_partition(self, tiny_graph):
        components = connected_components(tiny_graph.adjacency)
        total = sum(len(component) for component in components)
        assert total == tiny_graph.num_nodes

    def test_star_subgraph_count_detects_star(self):
        adjacency = np.zeros((5, 5))
        for leaf in range(1, 5):
            adjacency[0, leaf] = adjacency[leaf, 0] = 1.0
        assert star_subgraph_count(adjacency) == 1

    def test_describe_contains_expected_keys(self, tiny_graph):
        summary = describe(tiny_graph)
        for key in ("num_nodes", "num_edges", "density", "homophily", "cluster_sizes"):
            assert key in summary


class TestGraphIO:
    def test_npz_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph_npz(tiny_graph, path)
        loaded = load_graph_npz(path)
        np.testing.assert_allclose(loaded.adjacency, tiny_graph.adjacency)
        np.testing.assert_allclose(loaded.features, tiny_graph.features)
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        assert loaded.name == tiny_graph.name
        assert loaded.metadata["num_clusters"] == tiny_graph.metadata["num_clusters"]

    def test_npz_roundtrip_without_labels(self, tmp_path):
        graph = AttributedGraph(np.zeros((3, 3)), np.ones((3, 2)), metadata={"num_clusters": 1})
        path = tmp_path / "nolabels.npz"
        save_graph_npz(graph, path)
        assert load_graph_npz(path).labels is None
