"""End-to-end integration tests: the public API workflow from README/examples.

These exercise the exact pipeline a downstream user would run: load a
dataset, train a base model, wrap it with the R- trainer, and compare
D vs R-D — all with tiny budgets so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import RethinkConfig, RethinkTrainer
from repro.datasets import load_dataset
from repro.metrics import evaluate_clustering
from repro.models import build_model


pytestmark = pytest.mark.slow


class TestPublicAPI:
    def test_package_exports(self):
        assert hasattr(repro, "load_dataset")
        assert hasattr(repro, "build_model")
        assert hasattr(repro, "RethinkTrainer")
        assert hasattr(repro, "evaluate_clustering")
        assert repro.__version__

    def test_quickstart_workflow_on_smallest_dataset(self):
        graph = load_dataset("brazil_air_sim")
        model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        trainer = RethinkTrainer(
            model,
            RethinkConfig(alpha1=0.3, epochs=20, pretrain_epochs=25, update_omega_every=5,
                          update_graph_every=5, stop_at_convergence=False),
        )
        history = trainer.fit(graph)
        assert history.final_report is not None
        assert history.final_report.accuracy > 0.3

    def test_paired_training_shares_pretraining(self, tiny_hard_graph):
        graph = tiny_hard_graph
        pretrain = build_model("dgae", graph.num_features, graph.num_clusters, seed=0)
        pretrain.pretrain(graph, epochs=25)
        state = pretrain.state_dict()

        base = build_model("dgae", graph.num_features, graph.num_clusters, seed=0)
        base.load_state_dict(state)
        base.fit_clustering(graph, epochs=15)
        base_report = evaluate_clustering(graph.labels, base.predict_labels(graph))

        rethought = build_model("dgae", graph.num_features, graph.num_clusters, seed=0)
        rethought.load_state_dict(state)
        trainer = RethinkTrainer(
            rethought,
            RethinkConfig(alpha1=0.3, epochs=20, update_omega_every=5, update_graph_every=5,
                          stop_at_convergence=False),
        )
        history = trainer.fit(graph, pretrained=True)

        # Both variants must produce sensible clusterings on the same pretraining.
        assert base_report.accuracy > 0.4
        assert history.final_report.accuracy > 0.4

    def test_operator_graph_is_more_clustering_oriented(self, tiny_graph):
        """The Υ-built graph should have higher homophily than the input graph."""
        from repro.graph.stats import homophily

        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(
            model,
            RethinkConfig(alpha1=0.3, epochs=20, pretrain_epochs=25, update_omega_every=5,
                          update_graph_every=5, stop_at_convergence=False),
        )
        trainer.fit(tiny_graph)
        original = homophily(tiny_graph.adjacency, tiny_graph.labels)
        transformed = homophily(trainer.self_supervision_graph_, tiny_graph.labels)
        assert transformed >= original - 0.02

    def test_all_models_run_through_rethink_trainer(self, tiny_graph):
        for name in ("gae", "vgae", "argae", "arvgae", "dgae", "gmm_vgae"):
            model = build_model(name, tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
            trainer = RethinkTrainer(
                model,
                RethinkConfig(alpha1=0.4, epochs=8, pretrain_epochs=10, update_omega_every=4,
                              update_graph_every=4, stop_at_convergence=False),
            )
            history = trainer.fit(tiny_graph)
            assert history.final_report is not None, name
            assert np.isfinite(history.losses).all(), name

    def test_determinism_of_full_pipeline(self):
        graph = load_dataset("brazil_air_sim")

        def run():
            model = build_model("gae", graph.num_features, graph.num_clusters, seed=3)
            trainer = RethinkTrainer(
                model,
                RethinkConfig(alpha1=0.3, epochs=10, pretrain_epochs=10, update_omega_every=5,
                              update_graph_every=5, stop_at_convergence=False),
            )
            return trainer.fit(graph).final_report

        first, second = run(), run()
        assert first.accuracy == pytest.approx(second.accuracy)
        assert first.nmi == pytest.approx(second.nmi)
