"""Tests for the generic Registry protocol and the unified registries."""

from __future__ import annotations

import pytest

from repro.api import Registry, UnknownEntryError
from repro.baselines.registry import BASELINES
from repro.datasets.registry import DATASETS
from repro.models.registry import MODELS


class TestGenericRegistry:
    def test_register_decorator_and_build(self):
        registry = Registry("widget")

        @registry.register("alpha", colour="red")
        def make_alpha(size=1):
            return ("alpha", size)

        assert registry.build("alpha", size=3) == ("alpha", 3)
        assert registry.metadata("alpha") == {"colour": "red"}

    def test_register_uses_factory_name_by_default(self):
        registry = Registry("widget")

        @registry.register()
        def beta():
            return "b"

        assert "beta" in registry

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.add("alpha", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.add("alpha", lambda: None)

    def test_unknown_entry_is_typed_keyerror(self):
        registry = Registry("widget")
        registry.add("alpha", lambda: None)
        with pytest.raises(UnknownEntryError) as excinfo:
            registry["gamma"]
        assert isinstance(excinfo.value, KeyError)
        assert "gamma" in str(excinfo.value)
        assert "alpha" in str(excinfo.value)

    def test_get_keeps_dict_semantics(self):
        registry = Registry("widget")
        factory = lambda: None  # noqa: E731
        registry.add("alpha", factory)
        assert registry.get("alpha") is factory
        assert registry.get("gamma") is None
        assert registry.get("gamma", factory) is factory

    def test_metadata_filtering_preserves_registration_order(self):
        registry = Registry("widget")
        registry.add("a", lambda: None, kind="x")
        registry.add("b", lambda: None, kind="y")
        registry.add("c", lambda: None, kind="x")
        assert registry.names(kind="x") == ["a", "c"]
        assert registry.names() == ["a", "b", "c"]

    def test_mapping_protocol(self):
        registry = Registry("widget")
        factory = lambda: None  # noqa: E731
        registry.add("alpha", factory)
        assert "alpha" in registry
        assert registry["alpha"] is factory
        assert list(registry) == ["alpha"]
        assert len(registry) == 1

    def test_describe_uses_docstring_fallback(self):
        registry = Registry("widget")

        @registry.register("alpha")
        def make_alpha():
            """First line wins.

            Not this one.
            """

        assert registry.describe()["alpha"]["description"] == "First line wins."

    def test_unregister(self):
        registry = Registry("widget")
        registry.add("alpha", lambda: None)
        registry.unregister("alpha")
        assert "alpha" not in registry
        with pytest.raises(UnknownEntryError):
            registry.unregister("alpha")


class TestUnifiedRegistries:
    def test_models_registry_groups(self):
        assert MODELS.names(group="first") == ["gae", "vgae", "argae", "arvgae"]
        assert MODELS.names(group="second") == ["dgae", "gmm_vgae"]

    def test_datasets_registry_families(self):
        assert DATASETS.names(family="citation") == [
            "cora_sim",
            "citeseer_sim",
            "pubmed_sim",
        ]
        assert len(DATASETS.names(family="air_traffic")) == 3

    def test_dataset_metadata_names_surrogate(self):
        assert DATASETS.metadata("cora_sim")["surrogate_of"] == "Cora"

    def test_baselines_registry(self):
        assert set(BASELINES.names()) == {"tadw", "mgae", "agc", "age"}

    def test_legacy_builder_mappings_still_work(self):
        from repro.baselines.registry import BASELINE_BUILDERS
        from repro.datasets.registry import DATASET_BUILDERS
        from repro.models.registry import MODEL_BUILDERS

        assert "gae" in MODEL_BUILDERS
        assert callable(DATASET_BUILDERS["cora_sim"])
        assert len(BASELINE_BUILDERS) == 4
