"""Vectorised kernels vs. the historical loop implementations.

The PR that batched the clustering hot path (multi-restart KMeans, the GMM
E/M steps, the Υ graph transform, the Hungarian post-processing) keeps the
pre-PR per-cluster / per-restart / per-neighbour loops here as
``_reference_*`` implementations and pins 1e-10 agreement under fixed
seeds, including the awkward corners: empty-cluster reseeding, clusters
with no reliable nodes, and all-``-inf`` log-sum-exp rows.  The last class
checks that :func:`repro.parallel.run_trials` is a pure throughput knob —
``jobs=4`` returns bitwise the same per-seed results as ``jobs=1``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.clustering.kmeans as kmeans_module
from repro.clustering.gmm import GaussianMixture, _logsumexp
from repro.clustering.kmeans import (
    KMeans,
    _pairwise_sq_distances,
    batched_kmeans_plus_plus_init,
)
from repro.core.graph_transform import build_clustering_oriented_graph
from repro.graph.sparse import SparseAdjacency
from repro.metrics.hungarian import align_labels, hungarian_matching
from repro.parallel import parallel_map, resolve_jobs, run_seeded, run_trials


# ----------------------------------------------------------------------
# reference kernels: the pre-PR loop implementations, kept verbatim
# ----------------------------------------------------------------------
def _reference_batched_plus_plus(data, num_clusters, num_restarts, rng):
    """Per-restart loop consuming the same flat RNG stream as the batched init."""
    n = data.shape[0]
    centers = np.empty((num_restarts, num_clusters, data.shape[1]))
    firsts = rng.integers(0, n, size=num_restarts)
    closest = np.empty((num_restarts, n))
    for r in range(num_restarts):
        centers[r, 0] = data[firsts[r]]
        closest[r] = np.sum((data - centers[r, 0]) ** 2, axis=1)
    for index in range(1, num_clusters):
        draws = rng.random(num_restarts)
        for r in range(num_restarts):
            cumulative = np.cumsum(closest[r])
            total = cumulative[-1]
            if total <= 0.0:
                choice = min(int(draws[r] * n), n - 1)
            else:
                choice = min(int(np.sum(cumulative < draws[r] * total)), n - 1)
            centers[r, index] = data[choice]
            dist = np.sum((data - centers[r, index]) ** 2, axis=1)
            # The batched kernel computes this distance via the expanded
            # |x|² + |c|² - 2x·c form clamped at zero; mirror that here so
            # the incremental minima match bit for bit.
            expanded = (
                np.einsum("nd,nd->n", data, data)
                + centers[r, index] @ centers[r, index]
                - 2.0 * data @ centers[r, index]
            )
            np.maximum(expanded, 0.0, out=expanded)
            closest[r] = np.minimum(closest[r], expanded)
            del dist
    return centers


def _reference_lloyd(data, centers, max_iter, tol):
    """The historical single-restart Lloyd loop (per-cluster M-step)."""
    centers = centers.copy()
    for _ in range(max_iter):
        distances = _pairwise_sq_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for cluster in range(centers.shape[0]):
            members = data[labels == cluster]
            if members.shape[0] > 0:
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the farthest point.
                farthest = int(np.argmax(distances.min(axis=1)))
                new_centers[cluster] = data[farthest]
        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if shift < tol:
            break
    distances = _pairwise_sq_distances(data, centers)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(data.shape[0]), labels].sum())
    return centers, labels, inertia


class _ReferenceGMMSteps:
    """The historical per-component GMM loops, parameterised externally."""

    def __init__(self, means, variances, weights):
        self.means_ = means.copy()
        self.variances_ = variances.copy()
        self.weights_ = weights.copy()
        self.num_components = means.shape[0]

    def log_prob(self, data):
        n, d = data.shape
        log_probs = np.empty((n, self.num_components))
        for k in range(self.num_components):
            var = self.variances_[k]
            diff = data - self.means_[k]
            log_det = np.sum(np.log(var))
            mahalanobis = np.sum(diff ** 2 / var, axis=1)
            log_probs[:, k] = -0.5 * (d * np.log(2.0 * np.pi) + log_det + mahalanobis)
        return log_probs

    def e_step(self, data):
        weighted = self.log_prob(data) + np.log(self.weights_ + 1e-300)
        log_norm = _logsumexp(weighted, axis=1)
        return np.exp(weighted - log_norm[:, None]), float(log_norm.mean())

    def m_step(self, data, responsibilities, reg_covar):
        counts = responsibilities.sum(axis=0) + 1e-12
        self.weights_ = counts / data.shape[0]
        self.means_ = (responsibilities.T @ data) / counts[:, None]
        for k in range(self.num_components):
            diff = data - self.means_[k]
            self.variances_[k] = (
                responsibilities[:, k] @ (diff ** 2)
            ) / counts[k] + reg_covar


def _reference_upsilon(adjacency, assignments, reliable_nodes, embeddings,
                       add_edges=True, drop_edges=True):
    """The historical dense Υ: per-cluster Π loop, per-node/per-neighbour edits."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    num_clusters = assignments.shape[1]
    hard = np.argmax(assignments, axis=1)
    result = adjacency.copy()
    if reliable_nodes.size == 0:
        return result
    centroid_nodes = {}
    reliable_labels = hard[reliable_nodes]
    for cluster in range(num_clusters):
        members = reliable_nodes[reliable_labels == cluster]
        if members.size == 0:
            continue
        mean_embedding = embeddings[members].mean(axis=0)
        distances = np.linalg.norm(embeddings[members] - mean_embedding, axis=1)
        centroid_nodes[cluster] = int(members[int(np.argmin(distances))])
    reliable_mask = np.zeros(adjacency.shape[0], dtype=bool)
    reliable_mask[reliable_nodes] = True
    for node in reliable_nodes:
        node_cluster = int(hard[node])
        if add_edges and node_cluster in centroid_nodes:
            centroid = centroid_nodes[node_cluster]
            if centroid != node and result[node, centroid] == 0:
                if int(hard[centroid]) == node_cluster:
                    result[node, centroid] = 1.0
                    result[centroid, node] = 1.0
        if drop_edges:
            for neighbor in np.flatnonzero(adjacency[node]):
                if reliable_mask[neighbor] and int(hard[neighbor]) != node_cluster:
                    result[node, neighbor] = 0.0
                    result[neighbor, node] = 0.0
    return result


def _clustered_data(rng, n=120, dim=5, num_clusters=4, spread=4.0):
    labels = rng.integers(0, num_clusters, n)
    return rng.standard_normal((n, dim)) + labels[:, None] * spread


# ----------------------------------------------------------------------
# KMeans
# ----------------------------------------------------------------------
class TestKMeansEquivalence:
    def test_batched_plus_plus_matches_loop_reference(self, rng):
        data = _clustered_data(rng)
        batched = batched_kmeans_plus_plus_init(
            data, 4, 6, np.random.default_rng(7)
        )
        reference = _reference_batched_plus_plus(
            data, 4, 6, np.random.default_rng(7)
        )
        np.testing.assert_allclose(batched, reference, rtol=0.0, atol=1e-10)

    def test_batched_plus_plus_degenerate_data(self):
        """All points identical: the distance mass collapses to zero and the
        seeding must fall back to uniform picks instead of dividing by it."""
        data = np.ones((8, 3))
        centers = batched_kmeans_plus_plus_init(
            data, 3, 4, np.random.default_rng(0)
        )
        assert centers.shape == (4, 3, 3)
        np.testing.assert_allclose(centers, 1.0)

    def test_fit_matches_sequential_restart_reference(self, rng):
        data = _clustered_data(rng)
        model = KMeans(4, num_init=6, max_iter=40, tol=1e-6, seed=11).fit(data)
        # Re-derive the same initial centres the batched fit drew, then run
        # the historical loop Lloyd per restart and keep the first-best.
        centers = batched_kmeans_plus_plus_init(
            data, 4, 6, np.random.default_rng(11)
        )
        best = None
        for r in range(centers.shape[0]):
            run = _reference_lloyd(data, centers[r], max_iter=40, tol=1e-6)
            if best is None or run[2] < best[2]:
                best = run
        np.testing.assert_allclose(
            model.cluster_centers_, best[0], rtol=0.0, atol=1e-10
        )
        np.testing.assert_array_equal(model.labels_, best[1])
        assert model.inertia_ == pytest.approx(best[2], abs=1e-8)

    def test_empty_cluster_reseeding_matches_reference(self, monkeypatch, rng):
        """An initial centre far from every point leaves its cluster empty on
        the first iteration; batched and loop reseeding must agree."""
        data = _clustered_data(rng, n=60, num_clusters=2, spread=8.0)
        forced = np.stack(
            [np.vstack([data[0], data[-1], np.full(data.shape[1], 1e6)])]
        )

        monkeypatch.setattr(
            kmeans_module,
            "batched_kmeans_plus_plus_init",
            lambda *args, **kwargs: forced.copy(),
        )
        model = KMeans(3, num_init=1, max_iter=25, tol=1e-6, seed=0).fit(data)
        reference = _reference_lloyd(data, forced[0], max_iter=25, tol=1e-6)
        np.testing.assert_allclose(
            model.cluster_centers_, reference[0], rtol=0.0, atol=1e-10
        )
        np.testing.assert_array_equal(model.labels_, reference[1])

    def test_tol_zero_runs_all_iterations(self, rng):
        """tol=0 must keep every restart active for max_iter iterations (the
        benchmark relies on this to pin identical work in both kernels)."""
        data = _clustered_data(rng)
        a = KMeans(4, num_init=3, max_iter=1, tol=0.0, seed=3).fit(data)
        b = KMeans(4, num_init=3, max_iter=60, tol=0.0, seed=3).fit(data)
        assert b.inertia_ <= a.inertia_ + 1e-12


# ----------------------------------------------------------------------
# GaussianMixture
# ----------------------------------------------------------------------
class TestGMMEquivalence:
    def _init_params(self, rng, num_components=4, dim=5):
        means = rng.standard_normal((num_components, dim)) * 3.0
        variances = rng.random((num_components, dim)) + 0.5
        weights = rng.random(num_components) + 0.1
        return means, variances, weights / weights.sum()

    def test_log_prob_matches_loop_reference(self, rng):
        data = _clustered_data(rng)
        means, variances, weights = self._init_params(rng)
        mixture = GaussianMixture(4, seed=0)
        mixture.means_, mixture.variances_, mixture.weights_ = (
            means.copy(), variances.copy(), weights.copy()
        )
        reference = _ReferenceGMMSteps(means, variances, weights)
        np.testing.assert_allclose(
            mixture._log_prob(data), reference.log_prob(data),
            rtol=1e-10, atol=1e-10,
        )

    def test_full_em_matches_loop_reference(self, rng):
        """Both kernels agree to 1e-10 at every step of a ten-iteration EM run.

        The reference is re-synced to the vectorised parameters after each
        compared iteration: EM amplifies float-reassociation noise
        chaotically through ``exp`` on tail responsibilities, so a
        free-running trajectory comparison would test BLAS rounding luck,
        not kernel equivalence.  Re-syncing still exercises both kernels on
        the ten distinct parameter states the vectorised EM actually visits.
        """
        data = _clustered_data(rng)
        means, variances, weights = self._init_params(rng)
        mixture = GaussianMixture(4, seed=0, reg_covar=1e-6)
        mixture.means_, mixture.variances_, mixture.weights_ = (
            means.copy(), variances.copy(), weights.copy()
        )
        reference = _ReferenceGMMSteps(means, variances, weights)
        for _ in range(10):
            resp, log_likelihood = mixture._e_step(data)
            ref_resp, ref_ll = reference.e_step(data)
            np.testing.assert_allclose(resp, ref_resp, rtol=1e-10, atol=1e-12)
            assert log_likelihood == pytest.approx(ref_ll, abs=1e-10)
            mixture._m_step(data, resp)
            reference.m_step(data, ref_resp, reg_covar=1e-6)
            np.testing.assert_allclose(
                mixture.means_, reference.means_, rtol=1e-9, atol=1e-10
            )
            np.testing.assert_allclose(
                mixture.variances_, reference.variances_, rtol=1e-9, atol=1e-10
            )
            np.testing.assert_allclose(
                mixture.weights_, reference.weights_, rtol=1e-10, atol=1e-12
            )
            reference.means_ = mixture.means_.copy()
            reference.variances_ = mixture.variances_.copy()
            reference.weights_ = mixture.weights_.copy()

    def test_init_variances_match_per_cluster_loop(self, monkeypatch, rng):
        """The scatter-add variance init equals the historical per-cluster
        loop, including an empty cluster keeping the unit-variance prior."""
        data = _clustered_data(rng, n=40, num_clusters=2)

        class StubKMeans:
            def __init__(self, num_clusters, **kwargs):
                self.num_clusters = num_clusters

            def fit(self, points):
                # Clusters 0 and 2 populated, 1 empty, 3 a singleton.
                self.labels_ = np.where(points[:, 0] < points[:, 0].mean(), 0, 2)
                self.labels_ = self.labels_.astype(np.int64)
                self.labels_[0] = 3
                self.cluster_centers_ = np.zeros((4, points.shape[1]))
                return self

        import repro.clustering.gmm as gmm_module

        monkeypatch.setattr(gmm_module, "KMeans", StubKMeans)
        mixture = GaussianMixture(4, max_iter=0, seed=0).fit(data)

        labels = StubKMeans(4).fit(data).labels_
        expected = np.ones((4, data.shape[1]))
        for k in range(4):
            members = data[labels == k]
            if members.shape[0] > 1:
                expected[k] = members.var(axis=0) + mixture.reg_covar
        np.testing.assert_allclose(
            mixture.variances_, expected, rtol=1e-9, atol=1e-10
        )

    def test_logsumexp_all_inf_row_returns_inf_not_nan(self):
        values = np.array([[-np.inf, -np.inf], [0.0, -np.inf]])
        out = _logsumexp(values, axis=1)
        assert out[0] == -np.inf
        assert out[1] == pytest.approx(0.0)
        assert not np.any(np.isnan(out))

    def test_logsumexp_matches_naive_on_finite_rows(self, rng):
        values = rng.standard_normal((20, 6)) * 30.0
        expected = np.log(np.sum(np.exp(values - values.max(axis=1, keepdims=True)), axis=1))
        expected += values.max(axis=1)
        np.testing.assert_allclose(_logsumexp(values, axis=1), expected, rtol=1e-12)


# ----------------------------------------------------------------------
# Υ graph transform
# ----------------------------------------------------------------------
def _upsilon_case(rng, n=80, num_clusters=5, degree=6, reliable_fraction=0.6,
                  missing_cluster=None):
    dense = np.zeros((n, n))
    for _ in range(n * degree // 2):
        i, j = rng.integers(0, n, 2)
        if i != j:
            dense[i, j] = dense[j, i] = 1.0
    labels = rng.integers(0, num_clusters, n)
    assignments = np.eye(num_clusters)[labels]
    embeddings = rng.standard_normal((n, 4)) + labels[:, None]
    reliable = rng.choice(n, int(reliable_fraction * n), replace=False)
    if missing_cluster is not None:
        # No reliable node may belong to the missing cluster.
        reliable = reliable[labels[reliable] != missing_cluster]
    return dense, assignments, reliable, embeddings


class TestUpsilonEquivalence:
    @pytest.mark.parametrize("add_edges,drop_edges", [
        (True, True), (True, False), (False, True), (False, False),
    ])
    def test_dense_matches_loop_reference(self, rng, add_edges, drop_edges):
        dense, assignments, reliable, embeddings = _upsilon_case(rng)
        out = build_clustering_oriented_graph(
            dense, assignments, reliable, embeddings,
            add_edges=add_edges, drop_edges=drop_edges,
        )
        expected = _reference_upsilon(
            dense, assignments, reliable, embeddings,
            add_edges=add_edges, drop_edges=drop_edges,
        )
        np.testing.assert_array_equal(out, expected)

    def test_sparse_matches_loop_reference(self, rng):
        dense, assignments, reliable, embeddings = _upsilon_case(rng)
        sparse = SparseAdjacency.from_dense(dense)
        out = build_clustering_oriented_graph(sparse, assignments, reliable, embeddings)
        expected = _reference_upsilon(dense, assignments, reliable, embeddings)
        np.testing.assert_array_equal(out.to_dense(), expected)

    def test_cluster_without_reliable_members(self, rng):
        """Clusters absent from Ω get no centroid node and no added edges."""
        dense, assignments, reliable, embeddings = _upsilon_case(
            rng, missing_cluster=2
        )
        out = build_clustering_oriented_graph(dense, assignments, reliable, embeddings)
        expected = _reference_upsilon(dense, assignments, reliable, embeddings)
        np.testing.assert_array_equal(out, expected)
        sparse_out = build_clustering_oriented_graph(
            SparseAdjacency.from_dense(dense), assignments, reliable, embeddings
        )
        np.testing.assert_array_equal(sparse_out.to_dense(), expected)

    def test_empty_reliable_set_is_identity(self, rng):
        dense, assignments, _, embeddings = _upsilon_case(rng)
        out = build_clustering_oriented_graph(
            dense, assignments, np.array([], dtype=np.int64), embeddings
        )
        np.testing.assert_array_equal(out, dense)


# ----------------------------------------------------------------------
# Hungarian post-processing
# ----------------------------------------------------------------------
class TestHungarianEquivalence:
    def test_matching_and_alignment_match_loop_reference(self, rng):
        true_labels = rng.integers(0, 6, 200)
        predicted = rng.integers(0, 6, 200)
        mapping = hungarian_matching(true_labels, predicted)
        contingency = np.zeros((6, 6))
        for t, p in zip(true_labels, predicted):
            contingency[p, t] += 1.0
        # The mapping must credit each predicted label's count correctly.
        for predicted_label, true_label in mapping.items():
            assert contingency[predicted_label, true_label] >= 0.0
        aligned = align_labels(true_labels, predicted)
        expected = np.array([mapping[int(p)] for p in predicted], dtype=np.int64)
        np.testing.assert_array_equal(aligned, expected)


# ----------------------------------------------------------------------
# parallel trial executor
# ----------------------------------------------------------------------
def _square(value):
    return value * value


_TRIAL_SPEC = {
    "dataset": "brazil_air_sim",
    "model": "gae",
    "variant": "rethink",
    "seed": 0,
    "training": {"pretrain_epochs": 4, "rethink_epochs": 4},
    "rethink": {"overrides": {"update_omega_every": 2, "update_graph_every": 2}},
}


class TestParallelExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(None, 8) == 1
        assert resolve_jobs(3, 8) == 3
        assert resolve_jobs(16, 2) == 2  # clamped to the number of items
        assert resolve_jobs("auto", 1) == 1
        with pytest.raises(ValueError):
            resolve_jobs(0, 4)
        with pytest.raises(ValueError):
            resolve_jobs("many", 4)

    def test_parallel_map_preserves_order(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
        assert parallel_map(_square, items, jobs=2) == [i * i for i in items]

    def test_run_trials_jobs4_bitwise_equals_jobs1(self):
        """The acceptance-criteria determinism guarantee: fanning the same
        specs over a pool changes wall-clock only, never the numbers."""
        seeds = [0, 1, 2, 3]
        serial = run_seeded(_TRIAL_SPEC, seeds, jobs=1)
        pooled = run_seeded(_TRIAL_SPEC, seeds, jobs=4)

        def strip(result):
            summary = result.summary()
            summary.pop("runtime_seconds", None)
            return summary

        assert [strip(r) for r in serial] == [strip(r) for r in pooled]
        for result, seed in zip(pooled, seeds):
            assert result.spec.seed == seed
            assert result.model is None  # models never cross the pool boundary

    def test_run_trials_validates_specs_eagerly(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            run_trials([{"model": "no_such_model_field_missing_dataset"}], jobs=1)
        with pytest.raises(SpecError):
            run_trials([42], jobs=1)

    def test_pipeline_run_trials_rejects_unpicklable_setups(self):
        from repro.api.pipeline import Pipeline
        from repro.datasets import load_dataset
        from repro.errors import SpecError

        graph = load_dataset("brazil_air_sim", seed=0)
        with pytest.raises(SpecError):
            Pipeline().graph(graph).model("gae").run_trials([0, 1])

    def test_run_model_pair_jobs_matches_serial(self):
        from repro.experiments import ExperimentConfig
        from repro.experiments.runner import run_model_pair

        config = ExperimentConfig(
            pretrain_epochs=3, clustering_epochs=2, rethink_epochs=3, num_trials=2
        )
        serial = run_model_pair("gae", "brazil_air_sim", config=config, jobs=1)
        pooled = run_model_pair("gae", "brazil_air_sim", config=config, jobs=2)
        assert serial.mean_std("base") == pooled.mean_std("base")
        assert serial.mean_std("rethink") == pooled.mean_std("rethink")
