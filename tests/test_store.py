"""Tests for repro.store: keys, snapshots, the artifact store, warm starts."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import (
    ArtifactCorruptError,
    ArtifactNotFoundError,
    SnapshotMismatchError,
    SnapshotSchemaError,
    StoreError,
)
from repro.models import build_model
from repro.nn.optim import SGD, Adam
from repro.store import (
    SCHEMA_VERSION,
    STORE_DIR_ENV,
    ArtifactStore,
    Snapshot,
    active_store,
    array_digest,
    canonical_json,
    config_hash,
    graph_fingerprint,
    pretrain_cache_key,
    pretrain_key,
    store_env,
    warm_pretrain,
)

from repro.graph.generators import attributed_sbm_graph


def make_tiny_graph(seed: int = 0):
    return attributed_sbm_graph(
        num_nodes=90, proportions=[1 / 3] * 3, p_intra=0.25, p_inter=0.02,
        num_features=40, active_per_class=8, signal=0.4, noise=0.02,
        seed=seed, name="tiny",
    )


ALL_MODELS = ["gae", "vgae", "argae", "arvgae", "dgae", "gmm_vgae"]
RESUME_MODELS = ["gae", "dgae", "gmm_vgae"]


class TestKeys:
    def test_config_hash_stable_across_dict_ordering(self):
        a = {"dataset": "cora_sim", "seed": 3, "options": {"x": 1, "y": 2}}
        b = {"options": {"y": 2, "x": 1}, "seed": 3, "dataset": "cora_sim"}
        assert config_hash(a) == config_hash(b)

    def test_config_hash_normalises_numpy_and_tuples(self):
        a = {"seed": np.int64(3), "thresholds": (0.5, np.float64(1.5)), "flag": np.True_}
        b = {"seed": 3, "thresholds": [0.5, 1.5], "flag": True}
        assert config_hash(a) == config_hash(b)

    def test_config_hash_stable_across_processes(self):
        payload = {"dataset": "cora_sim", "model": {"class": "GAE", "seed": 0}, "k": [1, 2]}
        script = (
            "import json,sys;from repro.store import config_hash;"
            "print(config_hash(json.loads(sys.argv[1])))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(payload)],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == config_hash(payload)

    def test_config_hash_rejects_unhashable_values(self):
        with pytest.raises(StoreError):
            config_hash({"bad": object()})
        with pytest.raises(StoreError):
            config_hash({1: "non-string key"})

    def test_canonical_json_sorts_keys(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text.index('"a"') < text.index('"b"')

    def test_array_digest_depends_on_content_and_shape(self):
        a = np.arange(6, dtype=np.float64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.reshape(2, 3))
        b = a.copy()
        b[0] += 1e-12
        assert array_digest(a) != array_digest(b)

    def test_graph_fingerprint_distinguishes_corrupted_graphs(self):
        graph = make_tiny_graph()
        corrupted_adj = graph.adjacency.copy()
        corrupted_adj[0, 1] = 1.0 - corrupted_adj[0, 1]
        corrupted_adj[1, 0] = corrupted_adj[0, 1]
        clean = graph_fingerprint(graph)
        assert clean == graph_fingerprint(graph)
        corrupted = dict(clean, adjacency=array_digest(corrupted_adj))
        assert pretrain_key(
            dataset=clean, model={"class": "GAE"}, seed=0, pretrain_epochs=5
        ) != pretrain_key(
            dataset=corrupted, model={"class": "GAE"}, seed=0, pretrain_epochs=5
        )

    def test_pretrain_key_sensitivity(self):
        base = dict(
            dataset={"name": "cora_sim", "seed": 0, "options": {}},
            model={"class": "GAE", "seed": 0},
            seed=0,
            pretrain_epochs=10,
        )
        key = pretrain_key(**base)
        assert key == pretrain_key(**base)
        assert key != pretrain_key(**{**base, "seed": 1})
        assert key != pretrain_key(**{**base, "pretrain_epochs": 11})
        assert key != pretrain_key(**{**base, "config": {"sparse": [100, 0.1]}})

    def test_pretrain_cache_key_shared_across_variants(self, tiny_graph):
        # The cache key has no variant coordinate at all: two models built
        # identically (as for a D / R-D pair) key to the same snapshot.
        model_a = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model_b = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        assert pretrain_cache_key(model_a, 10, graph=tiny_graph) == pretrain_cache_key(
            model_b, 10, graph=tiny_graph
        )


class TestOptimizerState:
    def _params(self, optimizer_cls, **kwargs):
        from repro.nn.tensor import Tensor

        rng = np.random.default_rng(0)
        params = [Tensor(rng.standard_normal((3, 2)), requires_grad=True) for _ in range(2)]
        return params, optimizer_cls(params, **kwargs)

    def _run_steps(self, params, optimizer, steps, seed):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            for param in params:
                param.grad = rng.standard_normal(param.data.shape)
            optimizer.step()

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (Adam, {}),
        (SGD, {"momentum": 0.9}),
        (SGD, {}),
    ])
    def test_resume_matches_uninterrupted(self, optimizer_cls, kwargs):
        params_a, opt_a = self._params(optimizer_cls, **kwargs)
        self._run_steps(params_a, opt_a, 6, seed=1)

        params_b, opt_b = self._params(optimizer_cls, **kwargs)
        self._run_steps(params_b, opt_b, 3, seed=1)
        state = opt_b.state_dict()
        params_c, opt_c = self._params(optimizer_cls, **kwargs)
        for target, source in zip(params_c, params_b):
            target.data = source.data.copy()
        opt_c.load_state_dict(state)
        # Replay the same 6-step gradient stream, applying only steps 4-6.
        rng = np.random.default_rng(1)
        grads = [
            [rng.standard_normal(p.data.shape) for p in params_c] for _ in range(6)
        ]
        for step_grads in grads[3:]:
            for param, grad in zip(params_c, step_grads):
                param.grad = grad
            opt_c.step()
        for resumed, uninterrupted in zip(params_c, params_a):
            np.testing.assert_array_equal(resumed.data, uninterrupted.data)

    def test_wrong_type_rejected(self):
        _, adam = self._params(Adam)
        _, sgd = self._params(SGD)
        with pytest.raises(ValueError, match="produced by"):
            adam.load_state_dict(sgd.state_dict())

    def test_buffer_count_mismatch_rejected(self):
        _, adam = self._params(Adam)
        state = adam.state_dict()
        state["m"] = state["m"][:1]
        with pytest.raises(ValueError, match="buffers"):
            adam.load_state_dict(state)

    def test_buffer_shape_mismatch_rejected(self):
        _, adam = self._params(Adam)
        state = adam.state_dict()
        state["v"][0] = state["v"][0][:1]
        with pytest.raises(ValueError, match="shape mismatch"):
            adam.load_state_dict(state)


class TestModuleStateDict:
    def test_unexpected_keys_rejected(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        state = model.state_dict()
        state["phantom.weight"] = np.zeros((2, 2))
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_forward_caches_stay_out_of_state_dict(self, tiny_graph):
        # _last_mu is a requires-grad tensor after a training forward; it
        # must not leak into state_dict or the round trip breaks.
        model = build_model("vgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=1)
        state = model.state_dict()
        assert all(not name.startswith("_") for name in state)
        clone = build_model("vgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=1)
        clone.load_state_dict(state)


class TestSnapshot:
    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_capture_apply_round_trip(self, model_name, tiny_graph):
        model = build_model(model_name, tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=3)
        snapshot = Snapshot.capture(model, epoch=3, phase="pretrain")
        target = build_model(model_name, tiny_graph.num_features, tiny_graph.num_clusters, seed=9)
        snapshot.apply(target, restore_rng=True)
        np.testing.assert_array_equal(model.embed(tiny_graph), target.embed(tiny_graph))
        assert target.rng.bit_generator.state == model.rng.bit_generator.state

    def test_trained_dgae_snapshot_applies_to_fresh_model(self, pretrained_dgae, tiny_graph):
        model = pretrained_dgae
        snapshot = Snapshot.capture(model, phase="trained")
        assert "centers" in snapshot.params
        target = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=3)
        snapshot.apply(target, restore_rng=True)
        np.testing.assert_array_equal(
            model.centers.data, target.centers.data
        )
        emb = model.embed(tiny_graph)
        np.testing.assert_array_equal(
            model.predict_assignments(emb), target.predict_assignments(emb)
        )

    def test_validate_rejects_wrong_model_class(self, tiny_graph):
        gae = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        vgae = build_model("vgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        snapshot = Snapshot.capture(gae)
        with pytest.raises(SnapshotMismatchError, match="captured from"):
            snapshot.apply(vgae)

    def test_validate_rejects_shape_mismatch_without_mutation(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        snapshot = Snapshot.capture(model)
        name = next(iter(snapshot.params))
        snapshot.params[name] = snapshot.params[name][:1]
        target = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=5)
        before = target.state_dict()
        with pytest.raises(SnapshotMismatchError, match="shape mismatch"):
            snapshot.apply(target)
        after = target.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_apply_without_optimizer_state_rejected(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        snapshot = Snapshot.capture(model)
        optimizer = Adam(model.parameters())
        with pytest.raises(SnapshotMismatchError, match="no optimizer state"):
            snapshot.apply(model, optimizer=optimizer)

    def test_file_round_trip_and_schema_errors(self, tiny_graph, tmp_path):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        snapshot = Snapshot.capture(model, spec={"note": "test"}, epoch=7)
        path = str(tmp_path / "model.snap")
        snapshot.save(path)
        loaded = Snapshot.load(path)
        assert loaded.epoch == 7
        assert loaded.spec == {"note": "test"}
        assert loaded.schema_version == SCHEMA_VERSION
        for name, value in snapshot.params.items():
            np.testing.assert_array_equal(value, loaded.params[name])

        garbage = tmp_path / "garbage.snap"
        garbage.write_bytes(b"not a snapshot")
        with pytest.raises(ArtifactCorruptError, match="garbage.snap"):
            Snapshot.load(str(garbage))

        stale = snapshot.to_payload()
        stale["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SnapshotSchemaError, match="schema version"):
            Snapshot.from_payload(stale)
        with pytest.raises(SnapshotSchemaError, match="format tag"):
            Snapshot.from_payload({"anything": 1})

    @pytest.mark.parametrize("model_name", RESUME_MODELS)
    def test_resume_is_bitwise_identical(self, model_name, tiny_graph):
        """Pretraining k epochs, snapshotting, resuming k more == 2k straight."""
        total, half = 8, 4

        def fresh():
            model = build_model(
                model_name, tiny_graph.num_features, tiny_graph.num_clusters, seed=0
            )
            optimizer = Adam(model.parameters(), lr=model.learning_rate)
            return model, optimizer

        straight, straight_opt = fresh()
        straight.pretrain(tiny_graph, epochs=total, optimizer=straight_opt)

        first, first_opt = fresh()
        first.pretrain(tiny_graph, epochs=half, optimizer=first_opt)
        snapshot = Snapshot.capture(first, optimizer=first_opt, epoch=half)

        resumed, resumed_opt = fresh()
        snapshot.apply(resumed, optimizer=resumed_opt, restore_rng=True)
        resumed.pretrain(tiny_graph, epochs=total - half, optimizer=resumed_opt)

        diff = np.abs(straight.embed(tiny_graph) - resumed.embed(tiny_graph)).max()
        assert diff <= 1e-10
        np.testing.assert_array_equal(
            straight.embed(tiny_graph), resumed.embed(tiny_graph)
        )


class TestArtifactStore:
    def _snapshot(self, tiny_graph, seed=0):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=seed)
        return Snapshot.capture(model)

    def test_put_get_contains_manifest(self, tiny_graph, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = config_hash({"entry": 1})
        assert key not in store
        snapshot = self._snapshot(tiny_graph)
        store.put(key, snapshot)
        assert key in store
        assert store.keys() == [key]
        assert len(store) == 1
        loaded = store.get(key)
        for name, value in snapshot.params.items():
            np.testing.assert_array_equal(value, loaded.params[name])
        manifest = store.manifest(key)
        assert manifest["key"] == key
        assert manifest["model_class"] == "GAE"
        stats = store.stats()
        assert stats["puts"] == 1 and stats["hits"] == 1 and stats["misses"] == 0

    def test_miss_raises_or_defaults(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = config_hash({"absent": True})
        assert store.get(key, default=None) is None
        with pytest.raises(ArtifactNotFoundError):
            store.get(key)
        with pytest.raises(ArtifactNotFoundError):
            store.manifest(key)
        assert store.stats()["misses"] == 2

    def test_rejects_non_hex_keys(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(StoreError, match="hex"):
            store.contains("../../etc/passwd")
        with pytest.raises(StoreError):
            store.contains("")

    def test_rejects_non_snapshot_values(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(StoreError, match="Snapshot"):
            store.put(config_hash({}), {"raw": "dict"})

    def test_delete_and_clear(self, tiny_graph, tmp_path):
        store = ArtifactStore(str(tmp_path))
        keys = [config_hash({"i": i}) for i in range(3)]
        for key in keys:
            store.put(key, self._snapshot(tiny_graph))
        assert store.delete(keys[0]) is True
        assert store.delete(keys[0]) is False
        assert store.clear() == 2
        assert store.keys() == []

    def test_active_store_follows_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert active_store() is None
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        store = active_store()
        assert store is not None and store.root == str(tmp_path)

    def test_store_env_context_manager(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        with store_env(str(tmp_path)):
            assert os.environ[STORE_DIR_ENV] == str(tmp_path)
            assert active_store().root == str(tmp_path)
        assert STORE_DIR_ENV not in os.environ
        with store_env(None):
            assert STORE_DIR_ENV not in os.environ


class TestWarmPretrain:
    def test_hit_is_bitwise_identical_to_cold(self, tiny_graph, tmp_path):
        store = ArtifactStore(str(tmp_path))

        def build():
            return build_model(
                "gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0
            )

        cold_model = build()
        cold_stats = warm_pretrain(cold_model, tiny_graph, 5, store=store)
        assert cold_stats["enabled"] and not cold_stats["hit"]

        warm_model = build()
        warm_stats = warm_pretrain(warm_model, tiny_graph, 5, store=store)
        assert warm_stats["hit"] and warm_stats["key"] == cold_stats["key"]
        np.testing.assert_array_equal(
            cold_model.embed(tiny_graph), warm_model.embed(tiny_graph)
        )
        assert cold_model.rng.bit_generator.state == warm_model.rng.bit_generator.state

    def test_no_store_means_plain_pretrain(self, tiny_graph, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        stats = warm_pretrain(model, tiny_graph, 2)
        assert stats == {
            "enabled": False, "hit": False, "key": None, "store": None,
            "seconds": stats["seconds"],
        }
