"""Tests for the RethinkTrainer (the R- training procedure of Eq. 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RethinkConfig, RethinkTrainer
from repro.metrics import clustering_accuracy
from repro.models import build_model


def small_config(**overrides) -> RethinkConfig:
    settings = dict(
        alpha1=0.4,
        update_omega_every=5,
        update_graph_every=5,
        epochs=15,
        pretrain_epochs=15,
        evaluate_every=5,
        stop_at_convergence=False,
    )
    settings.update(overrides)
    return RethinkConfig(**settings)


class TestRethinkTrainer:
    def test_full_fit_produces_report(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        history = trainer.fit(tiny_graph)
        assert history.final_report is not None
        assert 0.0 <= history.final_report.accuracy <= 1.0
        assert history.epochs_run == 15
        assert len(history.losses) == 15

    def test_fit_with_pretrained_model(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=20)
        trainer = RethinkTrainer(model, small_config())
        history = trainer.fit(tiny_graph, pretrained=True)
        assert history.final_report.accuracy > 0.5

    def test_first_group_model_uses_reconstruction_only(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        history = trainer.fit(tiny_graph)
        assert history.clustering_losses == []
        assert len(history.reconstruction_losses) == history.epochs_run

    def test_second_group_model_tracks_clustering_loss(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        history = trainer.fit(tiny_graph)
        assert len(history.clustering_losses) == history.epochs_run

    def test_convergence_criterion_stops_training(self, tiny_graph):
        # The tiny graph is easy: with a permissive alpha1 the coverage
        # criterion should trigger well before the epoch budget.
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = small_config(
            alpha1=0.1, epochs=60, stop_at_convergence=True, update_omega_every=5
        )
        trainer = RethinkTrainer(model, config)
        history = trainer.fit(tiny_graph)
        assert history.converged
        assert history.epochs_run < 60

    def test_omega_coverage_recorded_every_epoch(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        history = trainer.fit(tiny_graph)
        assert len(history.omega_coverage) == history.epochs_run
        assert all(0.0 <= value <= 1.0 for value in history.omega_coverage)

    def test_self_supervision_graph_is_built(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        trainer.fit(tiny_graph)
        assert trainer.self_supervision_graph_ is not None
        assert trainer.self_supervision_graph_.shape == tiny_graph.adjacency.shape
        assert trainer.last_sampling_ is not None

    def test_graph_transform_disabled_keeps_original_graph(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config(use_graph_transform=False))
        trainer.fit(tiny_graph)
        np.testing.assert_allclose(trainer.self_supervision_graph_, tiny_graph.adjacency)

    def test_sampling_disabled_selects_all_nodes(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config(use_sampling=False))
        history = trainer.fit(tiny_graph)
        assert all(size == tiny_graph.num_nodes for size in history.omega_sizes)

    def test_protection_delay_uses_all_nodes_initially(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = small_config(protection_delay=10, alpha1=0.9, epochs=12, update_omega_every=3)
        trainer = RethinkTrainer(model, config)
        history = trainer.fit(tiny_graph)
        assert history.omega_sizes[0] == tiny_graph.num_nodes

    def test_single_step_transform_uses_all_nodes(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config(single_step_transform=True, alpha1=0.99))
        trainer.fit(tiny_graph)
        # Even with an extreme alpha1 (tiny Omega) the transform must act on V:
        # inter-cluster original edges between any nodes get dropped.
        assert trainer.self_supervision_graph_ is not None

    def test_tracking_fr_fd_and_dynamics(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = small_config(track_fr=True, track_fd=True, track_dynamics=True, evaluate_every=5)
        trainer = RethinkTrainer(model, config)
        history = trainer.fit(tiny_graph)
        assert len(history.fr_rethought) == len(history.fr_baseline) > 0
        assert len(history.fd_rethought) == len(history.fd_baseline) > 0
        assert all(-1.0 <= v <= 1.0 for v in history.fr_rethought + history.fd_rethought)
        assert len(history.accuracy_all) == len(history.evaluation_epochs) > 0
        assert len(history.link_stats) > 0

    def test_graph_snapshots_recorded(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config(snapshot_graph_every=5))
        history = trainer.fit(tiny_graph)
        assert 0 in history.graph_snapshots
        assert history.graph_snapshots[0].shape == tiny_graph.adjacency.shape

    def test_history_summary_keys(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        history = trainer.fit(tiny_graph)
        summary = history.summary()
        for key in ("epochs_run", "converged", "final_coverage", "acc", "nmi", "ari"):
            assert key in summary

    def test_predict_labels_delegates_to_model(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        trainer = RethinkTrainer(model, small_config())
        trainer.fit(tiny_graph)
        labels = trainer.predict_labels(tiny_graph)
        assert labels.shape == (tiny_graph.num_nodes,)

    def test_rethink_improves_over_random_for_first_group(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        random_acc = clustering_accuracy(tiny_graph.labels, model.predict_labels(tiny_graph))
        trainer = RethinkTrainer(model, small_config(epochs=25, pretrain_epochs=25))
        history = trainer.fit(tiny_graph)
        assert history.final_report.accuracy > max(0.6, random_acc - 0.05)

    def test_gamma_override_changes_loss_scale(self, tiny_graph):
        model_a = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model_a.pretrain(tiny_graph, epochs=10)
        state = model_a.state_dict()
        trainer_a = RethinkTrainer(model_a, small_config(gamma=0.0, epochs=5))
        history_a = trainer_a.fit(tiny_graph, pretrained=True)

        model_b = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model_b.load_state_dict(state)
        trainer_b = RethinkTrainer(model_b, small_config(gamma=10.0, epochs=5))
        history_b = trainer_b.fit(tiny_graph, pretrained=True)
        assert history_b.losses[0] > history_a.losses[0]
