"""Tests for the six GAE clustering models and their shared base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import clustering_accuracy, evaluate_clustering
from repro.models import (
    ARGAE,
    ARVGAE,
    DGAE,
    GAE,
    GMMVGAE,
    VGAE,
    available_models,
    build_model,
    model_group,
    reconstruction_weights,
)
from repro.models.registry import FIRST_GROUP, SECOND_GROUP


class TestRegistry:
    def test_six_models_available(self):
        assert len(available_models()) == 6

    def test_group_membership(self):
        for name in FIRST_GROUP:
            assert model_group(name) == "first"
        for name in SECOND_GROUP:
            assert model_group(name) == "second"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("sage", 10, 3)
        with pytest.raises(KeyError):
            model_group("sage")

    def test_build_model_types(self):
        expectations = {
            "gae": GAE,
            "vgae": VGAE,
            "argae": ARGAE,
            "arvgae": ARVGAE,
            "gmm_vgae": GMMVGAE,
            "dgae": DGAE,
        }
        for name, klass in expectations.items():
            assert isinstance(build_model(name, 10, 3), klass)


class TestBaseMechanics:
    def test_reconstruction_weights_sparse_graph(self):
        adjacency = np.zeros((10, 10))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        pos_weight, norm = reconstruction_weights(adjacency)
        assert pos_weight > 1.0
        assert norm > 0.5

    def test_reconstruction_weights_empty_graph(self):
        assert reconstruction_weights(np.zeros((5, 5))) == (1.0, 1.0)

    def test_prepare_inputs_shapes(self, tiny_graph):
        features, adj_norm = GAE.prepare_inputs(tiny_graph)
        assert features.shape == tiny_graph.features.shape
        assert adj_norm.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes)

    def test_embed_shape_and_determinism(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        z1 = model.embed(tiny_graph)
        z2 = model.embed(tiny_graph)
        assert z1.shape == (tiny_graph.num_nodes, model.latent_dim)
        np.testing.assert_allclose(z1, z2)

    def test_pretrain_decreases_loss(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        history = model.pretrain(tiny_graph, epochs=30)
        assert history.losses[-1] < history.losses[0]
        assert history.final_loss == history.losses[-1]

    def test_state_dict_reproduces_embeddings(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=10)
        clone = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=1)
        clone.load_state_dict(model.state_dict())
        np.testing.assert_allclose(model.embed(tiny_graph), clone.embed(tiny_graph))

    def test_predict_labels_range(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=10)
        labels = model.predict_labels(tiny_graph)
        assert labels.shape == (tiny_graph.num_nodes,)
        assert labels.min() >= 0 and labels.max() < tiny_graph.num_clusters

    def test_first_group_clustering_loss_is_none(self, tiny_graph):
        model = build_model("gae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        features, adj_norm = model.prepare_inputs(tiny_graph)
        z = model.encode(features, adj_norm)
        assert model.clustering_loss(z) is None

    def test_variational_flag(self):
        assert VGAE(10, 3).variational and not GAE(10, 3).variational
        assert ARVGAE(10, 3).variational and not ARGAE(10, 3).variational


@pytest.mark.parametrize("name", ["gae", "vgae", "argae", "arvgae"])
class TestFirstGroupModels:
    def test_pretraining_beats_random_embeddings(self, name, tiny_graph):
        model = build_model(name, tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        random_acc = clustering_accuracy(tiny_graph.labels, model.predict_labels(tiny_graph))
        model.pretrain(tiny_graph, epochs=40)
        trained_acc = clustering_accuracy(tiny_graph.labels, model.predict_labels(tiny_graph))
        # On the well-separated tiny graph pretraining must give a clearly
        # non-random clustering (random ~ 0.4 for 3 balanced clusters).
        assert trained_acc > 0.6
        assert trained_acc >= random_acc - 0.05

    def test_fit_clustering_is_posthoc(self, name, tiny_graph):
        model = build_model(name, tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=5)
        history = model.fit_clustering(tiny_graph, epochs=5)
        assert history["loss"] == []


class TestAdversarialModels:
    def test_discriminator_excluded_from_encoder_parameters(self, tiny_graph):
        model = build_model("argae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        encoder_params = {id(p) for p in model.parameters()}
        discriminator_params = {id(p) for p in model.discriminator.parameters()}
        assert not encoder_params & discriminator_params

    def test_discriminator_loss_finite_and_positive(self, tiny_graph, rng):
        model = build_model("argae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        loss = model.discriminator_loss(rng.normal(size=(20, model.latent_dim)))
        assert np.isfinite(loss.item()) and loss.item() > 0.0

    def test_generator_loss_backpropagates_to_encoder(self, tiny_graph):
        model = build_model("argae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        features, adj_norm = model.prepare_inputs(tiny_graph)
        model.zero_grad()
        z = model.encode(features, adj_norm)
        model.generator_loss(z).backward()
        grads = model.gradient_vector()
        assert np.any(grads != 0.0)


class TestSecondGroupModels:
    def test_dgae_clustering_improves_or_matches_pretraining(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=30)
        before = clustering_accuracy(tiny_graph.labels, model.predict_labels(tiny_graph))
        model.fit_clustering(tiny_graph, epochs=25)
        after = clustering_accuracy(tiny_graph.labels, model.predict_labels(tiny_graph))
        assert after >= before - 0.05

    def test_dgae_centers_are_trainable(self, pretrained_dgae):
        assert pretrained_dgae.centers is not None
        assert any(p is pretrained_dgae.centers for p in pretrained_dgae.parameters())

    def test_dgae_soft_assignments_row_stochastic(self, pretrained_dgae, tiny_graph):
        assignments = pretrained_dgae.predict_assignments(pretrained_dgae.embed(tiny_graph))
        np.testing.assert_allclose(assignments.sum(axis=1), 1.0, atol=1e-9)

    def test_dgae_clustering_loss_positive_and_subsettable(self, pretrained_dgae, tiny_graph):
        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)
        z = pretrained_dgae.encode(features, adj_norm)
        full = pretrained_dgae.clustering_loss(z)
        subset = pretrained_dgae.clustering_loss(z, np.arange(10))
        empty = pretrained_dgae.clustering_loss(z, np.array([], dtype=int))
        assert full.item() >= 0.0 and subset.item() >= 0.0
        assert empty.item() == 0.0

    def test_dgae_loss_with_oracle_target(self, pretrained_dgae, tiny_graph):
        from repro.clustering import hard_to_one_hot

        features, adj_norm = pretrained_dgae.prepare_inputs(tiny_graph)
        z = pretrained_dgae.encode(features, adj_norm)
        oracle = hard_to_one_hot(tiny_graph.labels, tiny_graph.num_clusters)
        loss = pretrained_dgae.clustering_loss_with_target(z, oracle)
        assert np.isfinite(loss.item())

    def test_gmm_vgae_clustering_runs_and_history(self, tiny_graph):
        model = build_model("gmm_vgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=20)
        history = model.fit_clustering(tiny_graph, epochs=12)
        assert len(history["loss"]) == 12
        report = evaluate_clustering(tiny_graph.labels, model.predict_labels(tiny_graph))
        assert report.accuracy > 0.5

    def test_gmm_vgae_assignments_tempered(self, pretrained_gmm_vgae, tiny_graph):
        from repro.clustering.assignments import soft_assignment_gaussian

        embeddings = pretrained_gmm_vgae.embed(tiny_graph)
        assignments = pretrained_gmm_vgae.predict_assignments(embeddings)
        np.testing.assert_allclose(assignments.sum(axis=1), 1.0, atol=1e-9)
        # Tempering must never sharpen the responsibilities beyond the
        # untempered (temperature=1) ones.
        sharp = soft_assignment_gaussian(
            embeddings,
            pretrained_gmm_vgae.cluster_centers_,
            pretrained_gmm_vgae.cluster_variances_,
            temperature=1.0,
        )
        assert assignments.max(axis=1).mean() <= sharp.max(axis=1).mean() + 1e-9

    def test_gmm_vgae_soft_assignment_tensor_matches_numpy(self, pretrained_gmm_vgae, tiny_graph):
        from repro.clustering.assignments import soft_assignment_gaussian

        features, adj_norm = pretrained_gmm_vgae.prepare_inputs(tiny_graph)
        z = pretrained_gmm_vgae.encode(features, adj_norm, sample=False)
        tensor_version = pretrained_gmm_vgae.soft_assignment_tensor(z).numpy()
        numpy_version = soft_assignment_gaussian(
            z.numpy(),
            pretrained_gmm_vgae.cluster_centers_,
            pretrained_gmm_vgae.cluster_variances_,
        )
        np.testing.assert_allclose(tensor_version, numpy_version, atol=1e-6)

    def test_clustering_loss_before_init_raises(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        features, adj_norm = model.prepare_inputs(tiny_graph)
        z = model.encode(features, adj_norm)
        with pytest.raises(RuntimeError):
            model.clustering_loss(z)
