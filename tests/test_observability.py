"""Tests for ``repro.observability``: tracer, metrics, exporters, collection.

The headline guarantees under test:

* tracing/metrics are strictly opt-in — the disabled path changes nothing,
* a traced ``jobs=4`` sweep is bitwise identical to an untraced one,
* the merged sweep document contains every trial's span forest exactly
  once (ordered by trial key, not pool arrival), plus the supervisor's
  retried-attempt spans (``<key>#a<n>``) under fault injection,
* the Chrome-trace export is structurally valid trace-event JSON.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.observability.collect import (
    install_from_env,
    merge_sweep_telemetry,
    telemetry_wanted,
    trial_telemetry,
)
from repro.observability.exporters import (
    TRACE_SCHEMA,
    chrome_trace,
    format_trace_summary,
    load_trace_events,
    store_trace_path,
    summarize_trace,
    write_chrome_trace,
)
from repro.observability.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    active_metrics,
    install_metrics,
    merge_metrics,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_report,
    uninstall_metrics,
)
from repro.observability.tracer import (
    active_tracer,
    install_tracer,
    span,
    trace_count,
    trace_event,
    tracing_session,
    uninstall_tracer,
)
from repro.parallel import run_sweep


@pytest.fixture(autouse=True)
def no_leaked_collectors():
    """Every test starts and ends with tracing/metrics disabled."""
    uninstall_tracer()
    uninstall_metrics()
    yield
    uninstall_tracer()
    uninstall_metrics()


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_by_default(self):
        assert active_tracer() is None
        with span("kernel.anything", n=3) as node:
            pass
        # the no-op singleton records nothing and supports the span surface
        node.count("edges", 5)
        trace_event("whatever")
        trace_count("whatever")
        assert active_tracer() is None

    def test_span_forest_structure(self):
        tracer = install_tracer()
        with span("pipeline.run", dataset="cora_sim"):
            with span("trainer.epoch", epoch=0):
                trace_count("batches", 3)
            trace_event("telemetry.epoch", seconds=0.25, loss=1.5)
        roots = tracer.export()
        assert [root["name"] for root in roots] == ["pipeline.run"]
        root = roots[0]
        assert root["attributes"] == {"dataset": "cora_sim"}
        assert [child["name"] for child in root["children"]] == [
            "trainer.epoch",
            "telemetry.epoch",
        ]
        epoch, event = root["children"]
        assert epoch["counters"] == {"batches": 3}
        assert event["wall_seconds"] == 0.25
        assert event["attributes"]["loss"] == 1.5
        assert root["wall_seconds"] >= 0.0
        json.dumps(roots)  # export must be JSON-able

    def test_tracing_session_installs_and_restores(self):
        outer = install_tracer()
        with tracing_session(enabled=True) as inner:
            assert inner is not None and inner is not outer
            with span("inner.only"):
                pass
        assert active_tracer() is outer
        assert outer.export() == []
        with tracing_session(enabled=False) as off:
            assert off is None

    def test_exception_marks_span_status(self):
        tracer = install_tracer()
        with pytest.raises(ValueError):
            with span("kernel.boom"):
                raise ValueError("boom")
        assert tracer.export()[0]["status"] == "error"


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_disabled_hooks_are_noops(self):
        assert active_metrics() is None
        metric_inc("a")
        metric_set("b", 1.0)
        metric_observe("c", 2.0)
        assert active_metrics() is None

    def test_registry_snapshot_is_sorted_and_plain(self):
        registry = install_metrics()
        metric_inc("z.counter")
        metric_inc("a.counter", 2)
        metric_set("gauge", 7)
        metric_observe("hist", 1.0)
        metric_observe("hist", 3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.counter", "z.counter"]
        assert snap["counters"]["a.counter"] == 2
        assert snap["gauges"]["gauge"] == 7.0
        assert snap["histograms"]["hist"] == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0,
        }

    def test_merge_is_order_independent(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.inc("n", 2)
        first.set("g", 1.0)
        first.observe("h", 5.0)
        second.inc("n", 3)
        second.set("g", 2.0)
        second.observe("h", 1.0)
        pairs = [("trial_b", first.snapshot()), ("trial_a", second.snapshot())]
        merged = merge_metrics(pairs)
        assert merged == merge_metrics(list(reversed(pairs)))
        assert merged["counters"]["n"] == 5
        # gauges resolve by last *sorted* key: trial_b wins over trial_a
        assert merged["gauges"]["g"] == 1.0
        assert merged["histograms"]["h"] == {
            "count": 2, "sum": 6.0, "min": 1.0, "max": 5.0,
        }

    def test_metrics_report_envelope(self):
        report = metrics_report("bench_x", [{"seconds": 1.0}], repeats=3, n=500)
        assert report["schema"] == METRICS_SCHEMA == "repro-metrics/1"
        assert report["benchmark"] == "bench_x"
        assert report["context"] == {"n": 500}
        assert report["repeats"] == 3
        assert report["results"] == [{"seconds": 1.0}]


# ----------------------------------------------------------------------
# per-trial capture and deterministic merging
# ----------------------------------------------------------------------
class TestCollect:
    def test_disabled_yields_none(self):
        assert not telemetry_wanted()
        with trial_telemetry() as telemetry:
            assert telemetry is None

    def test_env_flags_arm_capture(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert telemetry_wanted()
        install_from_env()
        assert active_tracer() is not None and active_metrics() is not None
        previous = active_tracer()
        with trial_telemetry() as telemetry:
            assert active_tracer() is not previous
            with span("trial.work"):
                metric_inc("trial.counter")
            payload = telemetry.export()
        assert active_tracer() is previous  # restored, not uninstalled
        assert [node["name"] for node in payload["spans"]] == ["trial.work"]
        assert payload["metrics"]["counters"] == {"trial.counter": 1}
        assert previous.export() == []  # nothing leaked to the outer tracer

    def test_merge_orders_by_key_then_index(self):
        def payload(name):
            return {"spans": [{"name": name}], "metrics": {"counters": {name: 1}}}

        arrival = [("kb", 1, payload("b")), ("ka", 0, payload("a")), ("kc", 2, None)]
        document = merge_sweep_telemetry(arrival)
        assert document["schema"] == TRACE_SCHEMA
        assert [t["key"] for t in document["trials"]] == ["ka", "kb", "kc"]
        assert document["trials"][2]["spans"] == []  # failed-before-export trial
        assert document["metrics"]["counters"] == {"a": 1, "b": 1}
        shuffled = merge_sweep_telemetry(list(reversed(arrival)))
        assert shuffled == document


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _sample_telemetry():
    return {
        "schema": TRACE_SCHEMA,
        "supervisor": {
            "spans": [
                {
                    "name": "resilience.attempt",
                    "start": 0.0,
                    "wall_seconds": 0.5,
                    "attributes": {"attempt_key": "k1#a1", "outcome": "ok"},
                }
            ]
        },
        "trials": [
            {
                "key": "k1",
                "index": 0,
                "spans": [
                    {
                        "name": "pipeline.run",
                        "start": 0.0,
                        "wall_seconds": 0.4,
                        "cpu_seconds": 0.3,
                        "children": [
                            {"name": "trainer.epoch", "start": 0.1, "wall_seconds": 0.2}
                        ],
                    }
                ],
            }
        ],
    }


class TestExporters:
    def test_chrome_trace_structure(self):
        document = chrome_trace(_sample_telemetry())
        events = document["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"supervisor", "trial k1"}
        assert {e["name"] for e in complete} == {
            "resilience.attempt", "pipeline.run", "trainer.epoch",
        }
        run = next(e for e in complete if e["name"] == "pipeline.run")
        assert run["dur"] == 0.4e6 and run["args"]["cpu_ms"] == 300.0
        assert run["cat"] == "pipeline"
        assert document["otherData"]["schema"] == TRACE_SCHEMA

    def test_write_load_summarize_round_trip(self, tmp_path):
        path = os.path.join(str(tmp_path), "nested", "trace.json")
        assert write_chrome_trace(path, _sample_telemetry()) == path
        events = load_trace_events(path)
        rows = summarize_trace(events)
        by_name = {row["name"]: row for row in rows}
        assert by_name["pipeline.run"]["calls"] == 1
        assert by_name["resilience.attempt"]["wall_ms"] == 500.0
        # sorted by descending wall time
        assert rows[0]["name"] == "resilience.attempt"
        table = format_trace_summary(rows)
        assert "pipeline.run" in table and "calls" in table

    def test_store_trace_path_truncates_key(self):
        path = store_trace_path("/store", "a" * 64)
        assert path == os.path.join("/store", "traces", f"{'a' * 16}.trace.json")


# ----------------------------------------------------------------------
# traced sweeps: bitwise identity, completeness, retried attempts
# ----------------------------------------------------------------------
_SWEEP_SPECS = [
    {
        "dataset": "brazil_air_sim",
        "model": "gae",
        "variant": "rethink",
        "seed": seed,
        "training": {"pretrain_epochs": 2, "rethink_epochs": 2},
        "rethink": {"overrides": {"update_omega_every": 2, "update_graph_every": 2}},
    }
    for seed in range(4)
]


def _stripped(results):
    rows = []
    for result in results:
        summary = result.summary()
        summary.pop("runtime_seconds", None)
        rows.append(summary)
    return rows


def _walk(node):
    yield node
    for child in node.get("children", []):
        yield from _walk(child)


class TestTracedSweep:
    def test_traced_jobs4_sweep_is_bitwise_identical_and_complete(
        self, monkeypatch, tmp_path
    ):
        baseline = run_sweep(_SWEEP_SPECS, jobs=4)
        assert baseline.ok and baseline.telemetry is None

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_METRICS", "1")
        traced = run_sweep(_SWEEP_SPECS, jobs=4, store_dir=str(tmp_path))
        assert traced.ok

        # tracing must not perturb a single metric bit
        assert _stripped(traced.results) == _stripped(baseline.results)

        document = traced.telemetry
        assert document is not None and document["schema"] == TRACE_SCHEMA
        from repro.api.spec import RunSpec
        from repro.store.keys import run_key

        def trial_key(spec):
            return run_key(RunSpec.from_dict(spec).to_dict())

        expected_keys = sorted(trial_key(spec) for spec in _SWEEP_SPECS)
        trial_keys = [trial["key"] for trial in document["trials"]]
        # every trial exactly once, ordered by key — not by pool arrival
        assert trial_keys == expected_keys
        for trial in document["trials"]:
            names = [n["name"] for root in trial["spans"] for n in _walk(root)]
            assert names.count("pipeline.run") == 1
            assert "trainer.epoch" in names
        # supervisor lane carries the attempt spans, one per trial
        supervisor_names = [
            n["name"]
            for root in document["supervisor"]["spans"]
            for n in _walk(root)
        ]
        assert supervisor_names.count("resilience.attempt") == len(_SWEEP_SPECS)
        assert document["metrics"]["counters"]["resilience.attempts"] == len(
            _SWEEP_SPECS
        )

        # ... and the store received a Perfetto-loadable merged Chrome trace
        from repro.resilience.journal import sweep_key

        trace_file = store_trace_path(
            str(tmp_path), sweep_key([trial_key(spec) for spec in _SWEEP_SPECS])
        )
        events = load_trace_events(trace_file)
        assert any(event["ph"] == "M" for event in events)
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == sum(
            1
            for unit in [document["supervisor"], *document["trials"]]
            for root in unit.get("spans", [])
            for _ in _walk(root)
        )

    def test_retried_attempts_appear_under_fault_injection(self, monkeypatch):
        from repro.resilience import RetryPolicy

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_METRICS", "1")
        monkeypatch.setenv("REPRO_FAULTS", "trial_error:p=0.9:seed=7")
        specs = _SWEEP_SPECS[:2]
        outcome = run_sweep(
            specs, jobs=2, policy=RetryPolicy(max_attempts=20, backoff_base=0.001)
        )
        assert outcome.ok
        document = outcome.telemetry
        attempts = [
            node["attributes"]["attempt_key"]
            for root in document["supervisor"]["spans"]
            for node in _walk(root)
            if node["name"] == "resilience.attempt"
        ]
        assert len(attempts) == len(set(attempts)) == int(
            document["metrics"]["counters"]["resilience.attempts"]
        )
        # faults fired: some trial needed a second attempt, and the retried
        # attempt spans are keyed by their attempt index
        assert len(attempts) > len(specs)
        assert any(key.endswith("#a2") for key in attempts)
        assert document["metrics"]["counters"]["resilience.retries"] >= 1
        # every trial still shipped exactly one span forest
        assert [t["spans"] != [] for t in document["trials"]] == [True, True]
