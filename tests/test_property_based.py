"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    hard_to_one_hot,
    soft_assignment_gaussian,
    soft_assignment_student_t,
    target_distribution,
)
from repro.core.graph_transform import build_clustering_oriented_graph
from repro.core.sampling import select_reliable_nodes
from repro.core.supervision import aligned_oracle_assignments, membership_graph
from repro.datasets.features import degree_one_hot_features, row_normalize
from repro.graph.laplacian import laplacian_quadratic_form, normalize_adjacency
from repro.metrics import (
    adjusted_rand_index,
    clustering_accuracy,
    normalized_mutual_information,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def labels_pair(draw):
    """Two random label vectors of the same length over small alphabets."""
    n = draw(st.integers(min_value=2, max_value=40))
    k1 = draw(st.integers(min_value=1, max_value=4))
    k2 = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return rng.integers(0, k1, size=n), rng.integers(0, k2, size=n)


@st.composite
def random_graph(draw):
    """Random symmetric binary adjacency with zero diagonal."""
    n = draw(st.integers(min_value=2, max_value=20))
    p = draw(st.floats(min_value=0.0, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < p, k=1)
    return (upper | upper.T).astype(float)


@st.composite
def embeddings_and_centers(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    k = draw(st.integers(min_value=1, max_value=5))
    d = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.normal(size=(k, d))


class TestMetricProperties:
    @settings(max_examples=60, deadline=None)
    @given(pair=labels_pair())
    def test_metrics_bounded(self, pair):
        true, pred = pair
        assert 0.0 <= clustering_accuracy(true, pred) <= 1.0
        assert 0.0 <= normalized_mutual_information(true, pred) <= 1.0
        assert -1.0 <= adjusted_rand_index(true, pred) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(pair=labels_pair())
    def test_metrics_symmetric_under_relabelling(self, pair):
        true, pred = pair
        # Permuting the prediction alphabet must not change any metric.
        permutation = np.arange(pred.max() + 1)
        np.random.default_rng(0).shuffle(permutation)
        permuted = permutation[pred]
        assert clustering_accuracy(true, pred) == pytest.approx(
            clustering_accuracy(true, permuted)
        )
        assert normalized_mutual_information(true, pred) == pytest.approx(
            normalized_mutual_information(true, permuted)
        )
        assert adjusted_rand_index(true, pred) == pytest.approx(
            adjusted_rand_index(true, permuted), abs=1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(pair=labels_pair())
    def test_perfect_prediction_is_optimal(self, pair):
        true, _ = pair
        assert clustering_accuracy(true, true) == 1.0
        assert adjusted_rand_index(true, true) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(pair=labels_pair())
    def test_accuracy_at_least_largest_class_share(self, pair):
        true, pred = pair
        _, counts = np.unique(true, return_counts=True)
        majority = counts.max() / counts.sum()
        constant = np.zeros_like(pred)
        assert clustering_accuracy(true, constant) >= majority - 1e-12


class TestGraphProperties:
    @settings(max_examples=50, deadline=None)
    @given(adjacency=random_graph())
    def test_normalized_adjacency_symmetric_and_bounded(self, adjacency):
        norm = normalize_adjacency(adjacency, self_loops=True)
        np.testing.assert_allclose(norm, norm.T, atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-8
        assert eigenvalues.min() >= -1.0 - 1e-8

    @settings(max_examples=50, deadline=None)
    @given(adjacency=random_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_laplacian_quadratic_form_nonnegative(self, adjacency, seed):
        rng = np.random.default_rng(seed)
        z = rng.normal(size=(adjacency.shape[0], 3))
        assert laplacian_quadratic_form(z, adjacency) >= -1e-9

    @settings(max_examples=50, deadline=None)
    @given(adjacency=random_graph())
    def test_degree_one_hot_rows(self, adjacency):
        features = degree_one_hot_features(adjacency)
        np.testing.assert_allclose(features.sum(axis=1), 1.0)

    @settings(max_examples=50, deadline=None)
    @given(adjacency=random_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_row_normalize_unit_or_zero(self, adjacency, seed):
        rng = np.random.default_rng(seed)
        features = rng.random((adjacency.shape[0], 5)) * (rng.random((adjacency.shape[0], 1)) > 0.2)
        normalized = row_normalize(features)
        norms = np.linalg.norm(normalized, axis=1)
        assert np.all((np.isclose(norms, 1.0)) | (np.isclose(norms, 0.0)))


class TestAssignmentProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=embeddings_and_centers())
    def test_gaussian_assignment_row_stochastic(self, data):
        embeddings, centers = data
        soft = soft_assignment_gaussian(embeddings, centers)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(soft >= 0.0)

    @settings(max_examples=50, deadline=None)
    @given(data=embeddings_and_centers())
    def test_student_t_assignment_row_stochastic(self, data):
        embeddings, centers = data
        soft = soft_assignment_student_t(embeddings, centers)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(soft >= 0.0)

    @settings(max_examples=50, deadline=None)
    @given(data=embeddings_and_centers())
    def test_target_distribution_preserves_stochasticity(self, data):
        embeddings, centers = data
        soft = soft_assignment_student_t(embeddings, centers)
        target = target_distribution(soft)
        np.testing.assert_allclose(target.sum(axis=1), 1.0, atol=1e-9)


class TestOperatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        data=embeddings_and_centers(),
        alpha1=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_sampling_monotone_in_alpha1(self, data, alpha1):
        embeddings, centers = data
        soft = soft_assignment_gaussian(embeddings, centers)
        loose = select_reliable_nodes(embeddings, soft, alpha1=0.0, alpha2=0.0)
        strict = select_reliable_nodes(embeddings, soft, alpha1=alpha1)
        assert strict.num_reliable <= loose.num_reliable
        assert loose.num_reliable == embeddings.shape[0]

    @settings(max_examples=30, deadline=None)
    @given(adjacency=random_graph(), seed=st.integers(min_value=0, max_value=1000))
    def test_transform_output_valid_adjacency(self, adjacency, seed):
        rng = np.random.default_rng(seed)
        n = adjacency.shape[0]
        k = min(3, n)
        labels = rng.integers(0, k, size=n)
        labels[:k] = np.arange(k)
        embeddings = rng.normal(size=(n, 4))
        assignments = hard_to_one_hot(labels, k)
        reliable = rng.choice(n, size=max(1, n // 2), replace=False)
        out = build_clustering_oriented_graph(adjacency, assignments, reliable, embeddings)
        np.testing.assert_allclose(out, out.T)
        assert set(np.unique(out)).issubset({0.0, 1.0})
        assert np.all(np.diag(out) == 0.0)

    @settings(max_examples=30, deadline=None)
    @given(pair=labels_pair())
    def test_oracle_assignments_one_hot(self, pair):
        true, pred = pair
        k = int(pred.max()) + 1
        oracle = aligned_oracle_assignments(true, hard_to_one_hot(pred, k))
        np.testing.assert_allclose(oracle.sum(axis=1), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(pair=labels_pair())
    def test_membership_graph_row_sums(self, pair):
        labels, _ = pair
        graph = membership_graph(labels)
        np.testing.assert_allclose(graph.sum(axis=1), 1.0, atol=1e-9)


class TestTensorProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
    )
    def test_softmax_rows_sum_to_one(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        probs = F.softmax(rng.normal(size=(rows, cols)) * 10.0, axis=1).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sigmoid_softplus_identity(self, seed):
        # d/dx softplus(x) = sigmoid(x): check via autodiff on random inputs.
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(5,)) * 3.0
        x = Tensor(values.copy(), requires_grad=True)
        x.softplus().sum().backward()
        np.testing.assert_allclose(x.grad, 1.0 / (1.0 + np.exp(-values)), atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_matmul_transpose_gradient_symmetry(self, seed):
        # loss = sum(Z Z^T) has gradient 2 * (sum over j) structure; check finite value.
        rng = np.random.default_rng(seed)
        z = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        (z @ z.T).sum().backward()
        assert np.all(np.isfinite(z.grad))
