"""Tests for the inter-procedural analysis: graph, REP1xx rules, engine.

Covers the cross-module fixtures under ``tests/lint_fixtures/``, import-
cycle tolerance, the incremental cache (including invalidation on edit),
``--jobs`` parse parallelism, SARIF 2.1.0 structural validity, the
baseline workflow, the hardened ``--select`` handling, and the repo-tree
REP1xx clean gate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import AnalysisCache, analyze_paths, rules_fingerprint
from repro.analysis.graph import build_project
from repro.analysis.linter import analyze_source
from repro.analysis.dataflow import ModuleFacts
from repro.analysis.sarif import sarif_report, write_sarif
from repro.errors import LintConfigError

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REP1XX = ["REP101", "REP102", "REP103", "REP104"]


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def rep1xx_over_fixtures():
    return analyze_paths([fixture("src")], select=REP1XX)


def by_code(report, code):
    return [d for d in report.diagnostics if d.code == code]


# ----------------------------------------------------------------------
# the REP1xx rules against the cross-module fixtures
# ----------------------------------------------------------------------
def test_rep101_sees_through_forwarding_wrappers():
    findings = by_code(rep1xx_over_fixtures(), "REP101")
    paths = {os.path.basename(d.path) for d in findings}
    assert paths == {"fix_rep101.py"}
    messages = sorted(d.message for d in findings)
    assert len(findings) == 2
    assert any("lambda" in m and "run_distributed" in m for m in messages)
    # two levels of forwarding: the closure enters via run_wrapped
    assert any("local_fn" in m and "run_wrapped" in m for m in messages)
    # the waived lambda in suppressed() must not surface
    assert all("suppressed" not in m for m in messages)


def test_rep102_flags_worker_reachable_module_state():
    findings = by_code(rep1xx_over_fixtures(), "REP102")
    named = {
        (os.path.basename(d.path), d.line): d.message for d in findings
    }
    assert len(findings) == 3
    joined = "\n".join(named.values())
    assert "_RESULTS" in joined and "_COUNTER" in joined
    # the cross-module attribute write names the victim module
    assert "repro.fix_rep102_state" in joined
    # every finding carries a witness path back to the submission site
    assert all("path:" in m for m in named.values())
    # the waived write in waived() must not surface
    assert "waived" not in joined


def test_rep103_taints_a_three_deep_call_chain():
    findings = by_code(rep1xx_over_fixtures(), "REP103")
    assert len(findings) == 2
    chain = next(d for d in findings if "np.random.rand" in d.message)
    assert "work -> _middle -> _leaf_draw" in chain.message
    constant = next(d for d in findings if "default_rng" in d.message)
    assert "hard-coded constant" in constant.message
    # the waived draw and the Generator-parameter path stay silent
    assert all("waived_draw" not in d.message for d in findings)
    assert all("compliant" not in d.message for d in findings)


def test_rep104_flags_env_reads_inside_workers():
    findings = by_code(rep1xx_over_fixtures(), "REP104")
    assert len(findings) == 1
    assert "env_flag" in findings[0].message
    assert "worker-reachable 'work'" in findings[0].message


def test_project_pass_skipped_when_not_selected():
    report = analyze_paths([fixture("src")], select=["REP006"])
    assert set(report.summary()) <= {"REP006"}


# ----------------------------------------------------------------------
# graph construction details
# ----------------------------------------------------------------------
def _facts_for(*names: str):
    facts = []
    for name in names:
        path = fixture("src", "repro", name)
        with open(path, "r", encoding="utf-8") as handle:
            analysis = analyze_source(handle.read(), path=path)
        facts.append(ModuleFacts.from_dict(analysis.facts))
    return facts


def test_import_cycle_is_tolerated():
    project = build_project(_facts_for("fix_cycle_a.py", "fix_cycle_b.py"))
    # the cycle resolves: helper is reached through a -> b -> (lazy) a
    assert "repro.fix_cycle_a:helper" in project.worker_set
    imports = project.graph.module_imports
    assert "repro.fix_cycle_b" in imports["repro.fix_cycle_a"]
    assert "repro.fix_cycle_a" in imports["repro.fix_cycle_b"]


def test_forwarding_fixpoint_marks_both_wrappers():
    project = build_project(_facts_for("fix_rep101_worker.py", "fix_rep101.py"))
    forwarders = project.graph.forwarders
    assert forwarders.get("repro.fix_rep101_worker:run_distributed") == {(0, "fn")}
    assert forwarders.get("repro.fix_rep101_worker:run_wrapped") == {(0, "fn")}


def test_module_facts_json_round_trip():
    (facts,) = _facts_for("fix_rep103.py")
    clone = ModuleFacts.from_dict(json.loads(json.dumps(facts.to_dict())))
    assert clone.to_dict() == facts.to_dict()
    assert "work" in clone.functions and clone.functions["work"].calls


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
def test_cache_warm_run_and_invalidation_on_edit(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import numpy as np\n\n\ndef f():\n    return np.random.rand(3)\n")
    cache = str(tmp_path / "cache.json")

    cold = analyze_paths([str(target)], cache_path=cache)
    assert (cold.files_reparsed, cold.files_cached) == (1, 0)
    assert [d.code for d in cold.diagnostics] == []  # not a repro.* module

    warm = analyze_paths([str(target)], cache_path=cache)
    assert (warm.files_reparsed, warm.files_cached) == (0, 1)
    assert warm.diagnostics == cold.diagnostics

    # editing the file invalidates exactly that entry
    target.write_text("import numpy as np\n\n\ndef f():\n    return np.random.rand(4)\n")
    edited = analyze_paths([str(target)], cache_path=cache)
    assert (edited.files_reparsed, edited.files_cached) == (1, 0)


def test_cache_serves_select_changes_without_reparse(tmp_path):
    cache = str(tmp_path / "cache.json")
    first = analyze_paths([fixture("src")], cache_path=cache)
    assert first.files_cached == 0
    # a different --select is a pure filter over the cached outputs
    second = analyze_paths([fixture("src")], select=REP1XX, cache_path=cache)
    assert second.files_reparsed == 0
    assert second.files_cached == second.files_checked
    assert second.summary() == {"REP101": 2, "REP102": 3, "REP103": 2, "REP104": 1}


def test_cache_invalidated_by_rule_catalogue_changes(tmp_path):
    cache_path = str(tmp_path / "cache.json")
    analyze_paths([fixture("src", "repro", "fix_rep104.py")], cache_path=cache_path)
    payload = json.loads(open(cache_path).read())
    assert payload["fingerprint"] == rules_fingerprint()
    # a cache written under a different catalogue is ignored wholesale
    payload["fingerprint"] = "0" * 64
    open(cache_path, "w").write(json.dumps(payload))
    report = analyze_paths([fixture("src", "repro", "fix_rep104.py")], cache_path=cache_path)
    assert report.files_reparsed == 1


def test_corrupt_cache_is_a_cold_cache(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    report = analyze_paths(
        [fixture("src", "repro", "fix_rep104.py")], cache_path=str(cache_path)
    )
    assert report.files_reparsed == 1
    # and the save repaired the file
    assert json.loads(cache_path.read_text())["fingerprint"] == rules_fingerprint()


def test_cache_roundtrip_preserves_suppressions(tmp_path):
    cache = AnalysisCache(None)
    path = fixture("src", "repro", "fix_rep103.py")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    analysis = analyze_source(source, path=path)
    cache.put(path, "sha", analysis)
    clone = cache.get(path, "sha")
    assert clone is not None
    assert {s.line: s.codes for s in clone.suppressions.values()} == {
        s.line: s.codes for s in analysis.suppressions.values()
    }
    assert clone.outputs == analysis.outputs


# ----------------------------------------------------------------------
# --jobs: the linter dogfooding repro.parallel
# ----------------------------------------------------------------------
def test_parallel_parse_matches_serial():
    serial = analyze_paths([fixture("src")])
    parallel = analyze_paths([fixture("src")], jobs=2)
    assert parallel.diagnostics == serial.diagnostics
    assert parallel.files_checked == serial.files_checked


# ----------------------------------------------------------------------
# SARIF 2.1.0 export
# ----------------------------------------------------------------------
def _validate_sarif_2_1_0(log):
    """Hand-written structural validation against the SARIF 2.1.0 schema
    (no jsonschema dependency available): required properties, types and
    the 1-based region convention."""
    assert isinstance(log, dict)
    assert log["version"] == "2.1.0"
    assert isinstance(log["$schema"], str) and "sarif-2.1.0" in log["$schema"]
    assert isinstance(log["runs"], list) and log["runs"]
    for run in log["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        for rule in driver.get("rules", []):
            assert isinstance(rule["id"], str) and rule["id"]
            assert isinstance(rule["shortDescription"]["text"], str)
        assert isinstance(run["results"], list)
        for result in run["results"]:
            assert isinstance(result["ruleId"], str)
            assert result["level"] in {"none", "note", "warning", "error"}
            assert isinstance(result["message"]["text"], str) and result["message"]["text"]
            for location in result["locations"]:
                physical = location["physicalLocation"]
                uri = physical["artifactLocation"]["uri"]
                assert isinstance(uri, str) and "\\" not in uri
                region = physical["region"]
                assert isinstance(region["startLine"], int) and region["startLine"] >= 1
                assert isinstance(region["startColumn"], int) and region["startColumn"] >= 1


def test_sarif_export_validates_and_roundtrips(tmp_path):
    report = analyze_paths([fixture("src")])
    assert report.diagnostics, "fixture tree should produce findings"
    log = sarif_report(report.diagnostics)
    _validate_sarif_2_1_0(log)
    # rule ids cover every reported code, results match 1:1
    codes = {d.code for d in report.diagnostics}
    assert {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]} == codes
    assert len(log["runs"][0]["results"]) == len(report.diagnostics)

    out = tmp_path / "report.sarif"
    write_sarif(str(out), report.diagnostics)
    _validate_sarif_2_1_0(json.loads(out.read_text()))


def test_sarif_columns_are_one_based():
    report = analyze_paths([fixture("src")], select=["REP102"])
    finding = next(d for d in report.diagnostics if "_RESULTS" in d.message)
    log = sarif_report([finding])
    region = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startColumn"] == finding.column + 1


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------
def test_baseline_freezes_existing_debt(tmp_path):
    baseline_path = str(tmp_path / "baseline.json")
    report = rep1xx_over_fixtures()
    assert report.error_count > 0
    count = write_baseline(baseline_path, report.diagnostics)
    assert count == len(report.diagnostics)

    accepted = load_baseline(baseline_path)
    gated = analyze_paths([fixture("src")], select=REP1XX, baseline=sorted(accepted))
    assert gated.exit_code == 0
    assert gated.baselined == count

    # a *new* finding is not covered by the frozen debt
    kept, dropped = apply_baseline(report.diagnostics, set())
    assert kept == report.diagnostics and dropped == 0


def test_baseline_rejects_malformed_files(tmp_path):
    bogus = tmp_path / "baseline.json"
    bogus.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(LintConfigError, match="not a repro-lint baseline"):
        load_baseline(str(bogus))
    with pytest.raises(LintConfigError, match="not found"):
        load_baseline(str(tmp_path / "missing.json"))


def test_cli_baseline_flags(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert lint_main([fixture("src"), "--write-baseline", baseline]) == 0
    assert "accepted findings" in capsys.readouterr().out
    assert lint_main([fixture("src"), "--baseline", baseline]) == 0
    assert "baselined" in capsys.readouterr().out


# ----------------------------------------------------------------------
# hardened --select handling (exit 2, clear messages)
# ----------------------------------------------------------------------
def test_cli_empty_select_is_a_usage_error(capsys):
    assert lint_main([fixture("src"), "--select", ""]) == 2
    assert "empty rule selection" in capsys.readouterr().err
    assert lint_main([fixture("src"), "--select", " , ,"]) == 2
    assert "empty rule selection" in capsys.readouterr().err


def test_cli_malformed_select_is_a_usage_error(capsys):
    assert lint_main([fixture("src"), "--select", "REP1,bogus"]) == 2
    err = capsys.readouterr().err
    assert "malformed rule code" in err and "REP123" in err


def test_cli_unknown_select_lists_the_catalogue(capsys):
    assert lint_main([fixture("src"), "--select", "REP999"]) == 2
    err = capsys.readouterr().err
    assert "REP999" in err and "REP101" in err


def test_cli_select_rep1xx_and_sarif(tmp_path, capsys):
    sarif = tmp_path / "out.sarif"
    code = lint_main(
        [fixture("src"), "--select", ",".join(REP1XX), "--sarif", str(sarif)]
    )
    assert code == 1  # the fixtures violate on purpose
    _validate_sarif_2_1_0(json.loads(sarif.read_text()))
    out = capsys.readouterr().out
    assert "REP101" in out


# ----------------------------------------------------------------------
# the acceptance gate: the shipped tree passes the inter-procedural pass
# ----------------------------------------------------------------------
def test_repo_tree_is_rep1xx_clean():
    targets = [
        os.path.join(REPO_ROOT, name)
        for name in ("src", "benchmarks", "examples")
        if os.path.exists(os.path.join(REPO_ROOT, name))
    ]
    report = analyze_paths(targets, select=REP1XX)
    messages = "\n".join(d.format() for d in report.diagnostics)
    assert report.exit_code == 0, f"inter-procedural findings:\n{messages}"
