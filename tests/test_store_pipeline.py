"""Warm-start and checkpoint integration: Pipeline, trainer, runner, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.cli import main as cli_main
from repro.api.pipeline import Pipeline
from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.errors import SnapshotMismatchError, SpecError, StoreError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_model_pair
from repro.models import build_model
from repro.store import ArtifactStore, Snapshot, store_env

from repro.graph.generators import attributed_sbm_graph


def make_tiny_graph(seed: int = 0):
    return attributed_sbm_graph(
        num_nodes=90, proportions=[1 / 3] * 3, p_intra=0.25, p_inter=0.02,
        num_features=40, active_per_class=8, signal=0.4, noise=0.02,
        seed=seed, name="tiny",
    )


def tiny_pipeline(model="gae", variant="base", seed=0):
    pipeline = (
        Pipeline()
        .dataset("brazil_air_sim")
        .model(model)
        .seed(seed)
        .training(pretrain_epochs=4, clustering_epochs=2, rethink_epochs=3)
    )
    return pipeline.base() if variant == "base" else pipeline.rethink()


class TestPipelineWarmStart:
    def test_warm_run_matches_cold_run(self, tmp_path):
        pipeline = tiny_pipeline().warm_start(str(tmp_path))
        cold = pipeline.run()
        assert cold.extra["pretrain_cache"]["enabled"]
        assert not cold.extra["pretrain_cache"]["hit"]
        warm = pipeline.run()
        assert warm.extra["pretrain_cache"]["hit"]
        assert warm.report == cold.report
        reference = tiny_pipeline().run()
        assert reference.report == cold.report
        assert reference.extra["pretrain_cache"] == {
            "enabled": False, "hit": False, "key": None, "store": None,
            "seconds": reference.extra["pretrain_cache"]["seconds"],
        }

    def test_base_and_rethink_share_one_snapshot(self, tmp_path):
        base = tiny_pipeline(variant="base").warm_start(str(tmp_path)).run()
        rethink = tiny_pipeline(variant="rethink").warm_start(str(tmp_path)).run()
        assert not base.extra["pretrain_cache"]["hit"]
        assert rethink.extra["pretrain_cache"]["hit"]
        assert rethink.extra["pretrain_cache"]["key"] == base.extra["pretrain_cache"]["key"]
        assert len(ArtifactStore(str(tmp_path))) == 1

    def test_explicit_graphs_key_by_content(self, tmp_path):
        graph = make_tiny_graph()
        corrupted = make_tiny_graph(seed=1)

        def run(g):
            return (
                Pipeline().graph(g).model("gae").base().seed(0)
                .training(pretrain_epochs=3, clustering_epochs=2)
                .warm_start(str(tmp_path)).run()
            )

        first = run(graph)
        second = run(corrupted)
        assert not first.extra["pretrain_cache"]["hit"]
        assert not second.extra["pretrain_cache"]["hit"]
        assert first.extra["pretrain_cache"]["key"] != second.extra["pretrain_cache"]["key"]
        assert run(graph).extra["pretrain_cache"]["hit"]

    def test_run_trials_propagates_store(self, tmp_path):
        pipeline = tiny_pipeline().warm_start(str(tmp_path))
        cold = pipeline.run_trials([0, 1], jobs=1)
        assert [r.extra["pretrain_cache"]["hit"] for r in cold] == [False, False]
        warm = pipeline.run_trials([0, 1], jobs=2)
        assert [r.extra["pretrain_cache"]["hit"] for r in warm] == [True, True]
        for a, b in zip(cold, warm):
            assert a.report == b.report


class TestPretrainedStateHandoff:
    def test_snapshot_handoff_matches_raw_dict(self, tmp_path):
        graph = make_tiny_graph()
        pretrain = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        pretrain.pretrain(graph, epochs=4)

        def trial(state):
            return (
                Pipeline().graph(graph).model("gae").base().seed(0)
                .training(pretrain_epochs=4, clustering_epochs=2)
                .pretrained_state(state).run()
            )

        raw = trial(pretrain.state_dict())
        snap = trial(Snapshot.capture(pretrain))
        assert raw.report == snap.report
        np.testing.assert_array_equal(
            raw.model.embed(graph), snap.model.embed(graph)
        )
        assert snap.extra["pretrain_cache"]["source"] == "pretrained_state"

    def test_store_key_handoff(self, tmp_path):
        graph = make_tiny_graph()
        store = ArtifactStore(str(tmp_path))
        pretrain = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        pretrain.pretrain(graph, epochs=4)
        key = "ab" * 32
        store.put(key, Snapshot.capture(pretrain))
        result = (
            Pipeline().graph(graph).model("gae").base().seed(0)
            .training(pretrain_epochs=4, clustering_epochs=2)
            .warm_start(str(tmp_path)).pretrained_state(key).run()
        )
        assert result.extra["pretrain_cache"]["hit"]
        assert result.extra["pretrain_cache"]["key"] == key

    def test_store_key_without_store_fails(self, monkeypatch):
        from repro.store import STORE_DIR_ENV

        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        pipeline = tiny_pipeline().pretrained_state("ab" * 32)
        with pytest.raises(StoreError, match="no artifact store"):
            pipeline.run()

    def test_mismatched_snapshot_fails_before_training(self):
        graph = make_tiny_graph()
        wrong = build_model("vgae", graph.num_features, graph.num_clusters, seed=0)
        pipeline = (
            Pipeline().graph(graph).model("gae").base().seed(0)
            .training(pretrain_epochs=4, clustering_epochs=2)
            .pretrained_state(Snapshot.capture(wrong))
        )
        with pytest.raises(SnapshotMismatchError, match="captured from"):
            pipeline.run()

    def test_run_trials_rejects_pretrained_state(self):
        pipeline = tiny_pipeline().pretrained_state({"w": np.zeros(2)})
        with pytest.raises(SpecError, match="warm_start"):
            pipeline.run_trials([0, 1])


class TestPipelineSaveLoad:
    def test_save_load_round_trip(self, tmp_path):
        result = tiny_pipeline(model="dgae", variant="rethink").run()
        path = str(tmp_path / "dgae.snap")
        assert Pipeline.save(result, path) == path
        loaded = Pipeline.load(path)
        assert loaded.spec.to_dict() == result.spec.to_dict()
        assert loaded.extra["phase"] == "trained"
        from repro.parallel import load_dataset_cached

        graph = load_dataset_cached("brazil_air_sim", seed=0)
        diff = np.abs(result.model.embed(graph) - loaded.model.embed(graph)).max()
        assert diff <= 1e-10
        np.testing.assert_array_equal(
            result.model.predict_labels(graph), loaded.model.predict_labels(graph)
        )

    def test_load_requires_spec(self, tmp_path):
        graph = make_tiny_graph()
        model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
        path = str(tmp_path / "bare.snap")
        Snapshot.capture(model).save(path)
        with pytest.raises(StoreError, match="no RunSpec"):
            Pipeline.load(path)

    def test_pooled_results_cannot_be_saved(self, tmp_path):
        results = tiny_pipeline().run_trials([0])
        with pytest.raises(StoreError, match="no model"):
            results[0].save(str(tmp_path / "x.snap"))


class TestTrainerWarmStart:
    def test_direct_trainer_uses_active_store(self, tmp_path):
        graph = make_tiny_graph()

        def fit():
            model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
            config = RethinkConfig(
                epochs=2, pretrain_epochs=3, stop_at_convergence=False
            )
            trainer = RethinkTrainer(model, config)
            trainer.fit(graph)
            return trainer

        with store_env(str(tmp_path)):
            cold = fit()
            warm = fit()
        assert cold.pretrain_cache_["enabled"] and not cold.pretrain_cache_["hit"]
        assert warm.pretrain_cache_["hit"]
        np.testing.assert_array_equal(
            cold.model.embed(graph), warm.model.embed(graph)
        )
        plain = fit()
        assert plain.pretrain_cache_["enabled"] is False
        np.testing.assert_array_equal(
            plain.model.embed(graph), cold.model.embed(graph)
        )


class TestRunnerWarmStart:
    def test_warm_pair_sweep_skips_pretraining(self, tmp_path):
        config = ExperimentConfig(
            num_trials=2, pretrain_epochs=3, clustering_epochs=2, rethink_epochs=2
        )
        cold = run_model_pair("gae", "brazil_air_sim", config)
        populate = run_model_pair(
            "gae", "brazil_air_sim", config, store_dir=str(tmp_path)
        )
        warm = run_model_pair(
            "gae", "brazil_air_sim", config, store_dir=str(tmp_path)
        )
        for trial in populate.base_trials + populate.rethink_trials:
            assert trial.extra["pretrain_cache"]["enabled"]
            assert not trial.extra["pretrain_cache"]["hit"]
        for trial in warm.base_trials + warm.rethink_trials:
            assert trial.extra["pretrain_cache"]["hit"]
        # One snapshot per seed: the D / R-D pair shares it.
        assert len(ArtifactStore(str(tmp_path))) == config.num_trials
        for a, b, c in zip(
            cold.base_trials + cold.rethink_trials,
            populate.base_trials + populate.rethink_trials,
            warm.base_trials + warm.rethink_trials,
        ):
            assert a.report == b.report == c.report


class TestCli:
    def _write_spec(self, tmp_path):
        spec = {
            "dataset": "brazil_air_sim",
            "model": "gae",
            "variant": "base",
            "seed": 0,
            "training": {"pretrain_epochs": 3, "clustering_epochs": 2},
        }
        path = tmp_path / "trial.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_warm_start_save_and_checkpoint_flow(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        store = str(tmp_path / "store")
        snap = str(tmp_path / "model.snap")

        assert cli_main([spec_path, "--warm-start", store, "--save-to", snap]) == 0
        out = capsys.readouterr().out
        assert "pretrain cache: miss" in out

        assert cli_main([spec_path, "--warm-start", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pretrain_cache"]["hit"] is True

        assert cli_main(["--from-checkpoint", snap, "--json"]) == 0
        restored = json.loads(capsys.readouterr().out)
        assert restored["loaded_from"] == snap
        assert "accuracy" in restored or "acc" in restored

    def test_from_checkpoint_conflicts(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        assert cli_main([spec_path, "--from-checkpoint", "x.snap"]) == 2
        assert cli_main([]) == 2
        assert (
            cli_main([spec_path, "--seeds", "0", "1", "--save-to", "x.snap"]) == 2
        )

    def test_missing_checkpoint_is_clean_error(self, tmp_path, capsys):
        assert cli_main(["--from-checkpoint", str(tmp_path / "absent.snap")]) == 2
        assert "repro-run:" in capsys.readouterr().err
