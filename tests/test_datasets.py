"""Tests for the dataset registry and feature construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    air_traffic_datasets,
    available_datasets,
    citation_datasets,
    dataset_summary,
    degree_one_hot_features,
    load_dataset,
    row_normalize,
)
from repro.graph.stats import homophily


class TestRegistry:
    def test_six_datasets_registered(self):
        assert len(available_datasets()) == 6

    def test_citation_and_airtraffic_partition(self):
        assert set(citation_datasets()) | set(air_traffic_datasets()) == set(available_datasets())
        assert not set(citation_datasets()) & set(air_traffic_datasets())

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("cora")  # real name, not the surrogate

    def test_determinism_per_seed(self):
        a = load_dataset("brazil_air_sim", seed=1)
        b = load_dataset("brazil_air_sim", seed=1)
        np.testing.assert_allclose(a.adjacency, b.adjacency)

    def test_different_seeds_differ(self):
        a = load_dataset("brazil_air_sim", seed=1)
        b = load_dataset("brazil_air_sim", seed=2)
        assert not np.allclose(a.adjacency, b.adjacency)

    @pytest.mark.parametrize(
        "name,clusters",
        [
            ("cora_sim", 7),
            ("citeseer_sim", 6),
            ("pubmed_sim", 3),
            ("usa_air_sim", 4),
            ("europe_air_sim", 4),
            ("brazil_air_sim", 4),
        ],
    )
    def test_cluster_counts_match_paper(self, name, clusters):
        graph = load_dataset(name)
        assert graph.num_clusters == clusters
        graph.validate()

    def test_citation_datasets_are_homophilous(self):
        for name in citation_datasets():
            graph = load_dataset(name)
            assert homophily(graph.adjacency, graph.labels) > 0.5

    def test_features_are_row_normalized(self):
        graph = load_dataset("cora_sim")
        norms = np.linalg.norm(graph.features, axis=1)
        nonzero = norms > 0
        np.testing.assert_allclose(norms[nonzero], 1.0, atol=1e-9)

    def test_air_traffic_uses_degree_features(self):
        graph = load_dataset("brazil_air_sim")
        # One-hot rows before normalisation become single-spike rows after.
        assert np.all((graph.features > 0).sum(axis=1) == 1)

    def test_summary_reports_surrogate(self):
        summary = dataset_summary("cora_sim")
        assert summary["surrogate_of"] == "Cora"
        assert summary["num_nodes"] == 600


class TestFeatures:
    def test_degree_one_hot_shape_and_rows(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[1, 2] = adjacency[2, 1] = 1.0
        features = degree_one_hot_features(adjacency)
        assert features.shape == (4, 3)  # max degree 2 -> columns 0..2
        np.testing.assert_allclose(features.sum(axis=1), 1.0)
        assert features[1, 2] == 1.0  # node 1 has degree 2

    def test_degree_one_hot_caps_at_max_degree(self):
        adjacency = np.ones((5, 5)) - np.eye(5)
        features = degree_one_hot_features(adjacency, max_degree=2)
        assert features.shape == (5, 3)
        np.testing.assert_allclose(features[:, 2], 1.0)

    def test_row_normalize_l2(self, rng):
        features = rng.random((5, 4))
        normalized = row_normalize(features)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_row_normalize_l1(self, rng):
        features = rng.random((5, 4))
        normalized = row_normalize(features, norm="l1")
        np.testing.assert_allclose(normalized.sum(axis=1), 1.0)

    def test_row_normalize_preserves_zero_rows(self):
        features = np.zeros((3, 4))
        np.testing.assert_allclose(row_normalize(features), 0.0)

    def test_row_normalize_unknown_norm(self, rng):
        with pytest.raises(ValueError):
            row_normalize(rng.random((2, 2)), norm="linf")
