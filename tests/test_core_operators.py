"""Tests for the sampling operator Ξ, the graph operator Υ and the supervision graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import hard_to_one_hot
from repro.core import (
    GraphTransformOperator,
    SamplingOperator,
    aligned_oracle_assignments,
    build_clustering_oriented_graph,
    clustering_graph,
    select_reliable_nodes,
    supervision_graph,
)
from repro.core.sampling import confidence_scores
from repro.core.supervision import membership_graph
from repro.graph.stats import star_subgraph_count


def two_blob_embeddings(rng, n_per=20, separation=8.0):
    """Two well separated 2-D blobs plus labels."""
    a = rng.normal(size=(n_per, 2)) + np.array([0.0, 0.0])
    b = rng.normal(size=(n_per, 2)) + np.array([separation, separation])
    z = np.concatenate([a, b])
    labels = np.array([0] * n_per + [1] * n_per)
    return z, labels


class TestSamplingOperator:
    def test_confidence_scores_ordering(self):
        soft = np.array([[0.7, 0.2, 0.1], [0.4, 0.35, 0.25]])
        first, second = confidence_scores(soft)
        np.testing.assert_allclose(first, [0.7, 0.4])
        np.testing.assert_allclose(second, [0.2, 0.35])

    def test_coverage_on_empty_graph_raises(self):
        from repro.core.sampling import SamplingResult

        empty = SamplingResult(
            reliable_nodes=np.array([], dtype=np.int64),
            soft_assignments=np.zeros((0, 3)),
            first_scores=np.array([]),
            second_scores=np.array([]),
        )
        with pytest.raises(ValueError, match="empty graph"):
            empty.coverage()

    def test_confidence_scores_single_cluster(self):
        first, second = confidence_scores(np.ones((3, 1)))
        np.testing.assert_allclose(second, 0.0)

    def test_selects_confident_nodes_only(self, rng):
        z, labels = two_blob_embeddings(rng)
        soft = np.full((z.shape[0], 2), 0.5)
        soft[:10] = [0.95, 0.05]
        result = select_reliable_nodes(z, soft, alpha1=0.8)
        assert set(result.reliable_nodes.tolist()) == set(range(10))

    def test_margin_criterion_excludes_borderline(self, rng):
        z, _ = two_blob_embeddings(rng)
        soft = np.tile([0.55, 0.45], (z.shape[0], 1))
        # confident enough for alpha1=0.5 but margin 0.1 < alpha2=0.25
        result = select_reliable_nodes(z, soft, alpha1=0.5)
        assert result.num_reliable == 0

    def test_default_alpha2_is_half_alpha1(self, rng):
        z, _ = two_blob_embeddings(rng)
        soft = np.tile([0.62, 0.38], (z.shape[0], 1))
        # margin 0.24 >= default alpha2 = 0.45/2 = 0.225 -> every node selected
        assert select_reliable_nodes(z, soft, alpha1=0.45).num_reliable == z.shape[0]
        # with an explicit larger alpha2 the margin criterion fails
        assert select_reliable_nodes(z, soft, alpha1=0.45, alpha2=0.3).num_reliable == 0

    def test_alpha_validation(self, rng):
        z, _ = two_blob_embeddings(rng)
        soft = np.tile([0.6, 0.4], (z.shape[0], 1))
        with pytest.raises(ValueError):
            select_reliable_nodes(z, soft, alpha1=1.5)
        with pytest.raises(ValueError):
            select_reliable_nodes(z, soft, alpha1=0.5, alpha2=-0.1)
        with pytest.raises(ValueError):
            SamplingOperator(alpha1=-0.2)

    def test_hard_assignments_are_softened(self, rng):
        z, labels = two_blob_embeddings(rng)
        hard = hard_to_one_hot(labels)
        result = select_reliable_nodes(z, hard, alpha1=0.5)
        assert np.any((result.soft_assignments > 0.0) & (result.soft_assignments < 1.0))
        # Well-separated blobs: essentially every node should be decidable.
        assert result.coverage() > 0.9

    def test_mask_matches_reliable_nodes(self, rng):
        z, labels = two_blob_embeddings(rng)
        result = select_reliable_nodes(z, hard_to_one_hot(labels), alpha1=0.5)
        mask = result.mask()
        assert mask.sum() == result.num_reliable
        assert np.all(mask[result.reliable_nodes])

    def test_operator_ablation_switches(self, rng):
        z, labels = two_blob_embeddings(rng, separation=2.0)
        hard = hard_to_one_hot(labels)
        full = SamplingOperator(alpha1=0.9)(z, hard)
        no_criteria = SamplingOperator(
            alpha1=0.9, use_confidence_criterion=False, use_margin_criterion=False
        )(z, hard)
        assert no_criteria.num_reliable == z.shape[0]
        assert full.num_reliable <= no_criteria.num_reliable

    def test_higher_alpha1_selects_fewer(self, rng):
        z, labels = two_blob_embeddings(rng, separation=3.0)
        hard = hard_to_one_hot(labels)
        low = select_reliable_nodes(z, hard, alpha1=0.3).num_reliable
        high = select_reliable_nodes(z, hard, alpha1=0.95).num_reliable
        assert high <= low


class TestGraphTransformOperator:
    @staticmethod
    def _setup(rng):
        z, labels = two_blob_embeddings(rng, n_per=10)
        n = z.shape[0]
        adjacency = np.zeros((n, n))
        # a few intra-cluster edges and two inter-cluster (clustering-irrelevant) edges
        for i, j in [(0, 1), (2, 3), (10, 11), (12, 13), (0, 10), (5, 15)]:
            adjacency[i, j] = adjacency[j, i] = 1.0
        assignments = hard_to_one_hot(labels)
        return adjacency, assignments, z, labels

    def test_returns_copy_when_no_reliable_nodes(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        out = build_clustering_oriented_graph(adjacency, assignments, np.array([], dtype=int), z)
        np.testing.assert_allclose(out, adjacency)
        assert out is not adjacency

    def test_drops_inter_cluster_edges_between_reliable_nodes(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        all_nodes = np.arange(z.shape[0])
        out = build_clustering_oriented_graph(adjacency, assignments, all_nodes, z)
        assert out[0, 10] == 0.0 and out[5, 15] == 0.0

    def test_adds_centroid_edges(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        all_nodes = np.arange(z.shape[0])
        out = build_clustering_oriented_graph(adjacency, assignments, all_nodes, z)
        added = (out > adjacency).sum()
        assert added > 0

    def test_result_is_symmetric_binary(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        out = build_clustering_oriented_graph(adjacency, assignments, np.arange(z.shape[0]), z)
        np.testing.assert_allclose(out, out.T)
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_add_only_and_drop_only_toggles(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        nodes = np.arange(z.shape[0])
        add_only = build_clustering_oriented_graph(
            adjacency, assignments, nodes, z, drop_edges=False
        )
        drop_only = build_clustering_oriented_graph(
            adjacency, assignments, nodes, z, add_edges=False
        )
        # add-only never removes existing edges.
        assert np.all(add_only >= adjacency)
        # drop-only never adds edges.
        assert np.all(drop_only <= adjacency)

    def test_operator_object_uses_toggles(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        nodes = np.arange(z.shape[0])
        out = GraphTransformOperator(add_edges=False, drop_edges=False)(
            adjacency, assignments, nodes, z
        )
        np.testing.assert_allclose(out, adjacency)

    def test_full_transform_creates_star_subgraphs(self, rng):
        # With all nodes reliable, no prior edges, the output should contain
        # K star-shaped sub-graphs (the Figure 4 end state).
        z, labels = two_blob_embeddings(rng, n_per=12)
        adjacency = np.zeros((z.shape[0], z.shape[0]))
        assignments = hard_to_one_hot(labels)
        out = build_clustering_oriented_graph(adjacency, assignments, np.arange(z.shape[0]), z)
        assert star_subgraph_count(out, min_leaves=3) == 2

    def test_respects_original_graph_as_base(self, rng):
        adjacency, assignments, z, _ = self._setup(rng)
        nodes = np.arange(z.shape[0])
        out = build_clustering_oriented_graph(adjacency, assignments, nodes, z)
        # intra-cluster original edges between reliable nodes must survive
        assert out[2, 3] == 1.0 and out[12, 13] == 1.0


class TestSupervisionGraphs:
    def test_membership_graph_weights(self):
        labels = np.array([0, 0, 1])
        graph = membership_graph(labels)
        np.testing.assert_allclose(graph[0, 1], 0.5)
        np.testing.assert_allclose(graph[2, 2], 1.0)
        np.testing.assert_allclose(graph[0, 2], 0.0)

    def test_membership_graph_rows_sum_to_one(self, rng):
        labels = rng.integers(0, 4, size=50)
        graph = membership_graph(labels, num_clusters=4)
        np.testing.assert_allclose(graph.sum(axis=1), 1.0, atol=1e-9)

    def test_clustering_graph_uses_argmax(self, rng):
        soft = np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.9]])
        graph = clustering_graph(soft)
        assert graph[0, 1] > 0.0 and graph[0, 2] == 0.0

    def test_supervision_graph_matches_membership(self):
        labels = np.array([0, 1, 0, 1])
        np.testing.assert_allclose(supervision_graph(labels), membership_graph(labels))

    def test_oracle_assignment_is_one_hot_and_aligned(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        predicted = hard_to_one_hot(np.array([2, 2, 0, 0, 1, 1]), 3)
        oracle = aligned_oracle_assignments(true, predicted)
        np.testing.assert_allclose(oracle.sum(axis=1), 1.0)
        # Perfect (permuted) clustering: the oracle must equal the prediction.
        np.testing.assert_allclose(oracle, predicted)

    def test_oracle_assignment_imperfect_clustering(self):
        true = np.array([0, 0, 0, 1, 1, 1])
        predicted_hard = np.array([0, 0, 1, 1, 1, 1])
        oracle = aligned_oracle_assignments(true, hard_to_one_hot(predicted_hard, 2))
        # Nodes of true class 0 map to predicted cluster 0, class 1 to cluster 1.
        np.testing.assert_allclose(oracle[:3, 0], 1.0)
        np.testing.assert_allclose(oracle[3:, 1], 1.0)
