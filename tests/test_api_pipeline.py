"""Tests for the Pipeline facade, the callback system and config validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    CALLBACKS,
    ConfigError,
    ConvergenceStopping,
    LambdaCallback,
    Pipeline,
    RethinkCallback,
    SpecError,
    UnknownVariantError,
    resolve_callbacks,
)
from repro.core import RethinkConfig, RethinkTrainer
from repro.experiments.runner import PairResult
from repro.models import build_model


def fast_pipeline(graph, model="dgae", **overrides):
    settings = dict(
        alpha1=0.4,
        update_omega_every=5,
        update_graph_every=5,
        stop_at_convergence=False,
    )
    settings.update(overrides)
    return (
        Pipeline()
        .graph(graph)
        .model(model)
        .seed(0)
        .training(pretrain_epochs=10, clustering_epochs=6, rethink_epochs=10)
        .rethink(**settings)
    )


class RecordingCallback(RethinkCallback):
    """Records every event as (event_name, epoch_or_None)."""

    def __init__(self):
        self.events = []

    def on_train_begin(self, graph, history):
        self.events.append(("train_begin", None))

    def on_train_end(self, history):
        self.events.append(("train_end", None))

    def on_epoch_begin(self, epoch):
        self.events.append(("epoch_begin", epoch))

    def on_epoch_end(self, epoch, logs):
        self.events.append(("epoch_end", epoch))

    def on_omega_update(self, epoch, sampling):
        self.events.append(("omega_update", epoch))

    def on_graph_transform(self, epoch, graph_matrix):
        self.events.append(("graph_transform", epoch))

    def on_evaluate(self, epoch, context):
        self.events.append(("evaluate", epoch))


class TestCallbackFiringOrder:
    @pytest.fixture(scope="class")
    def events(self, tiny_graph):
        recorder = RecordingCallback()
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        config = RethinkConfig(
            alpha1=0.4,
            update_omega_every=4,
            update_graph_every=2,
            epochs=8,
            pretrain_epochs=8,
            evaluate_every=3,
            stop_at_convergence=False,
        )
        RethinkTrainer(model, config, callbacks=[recorder]).fit(tiny_graph)
        return recorder.events

    def test_lifecycle_brackets_everything(self, events):
        assert events[0] == ("train_begin", None)
        assert events[-1] == ("train_end", None)

    def test_epoch_begin_precedes_epoch_end_each_epoch(self, events):
        for epoch in range(8):
            begin = events.index(("epoch_begin", epoch))
            end = events.index(("epoch_end", epoch))
            assert begin < end

    def test_omega_updates_at_configured_cadence(self, events):
        omega_epochs = [epoch for name, epoch in events if name == "omega_update"]
        assert omega_epochs == [0, 4]

    def test_graph_transform_at_configured_cadence(self, events):
        transform_epochs = [epoch for name, epoch in events if name == "graph_transform"]
        assert transform_epochs == [0, 2, 4, 6]

    def test_omega_update_precedes_graph_transform_when_same_epoch(self, events):
        assert events.index(("omega_update", 0)) < events.index(("graph_transform", 0))

    def test_evaluate_fires_on_cadence_and_last_epoch(self, events):
        evaluate_epochs = [epoch for name, epoch in events if name == "evaluate"]
        assert evaluate_epochs == [0, 3, 6, 7]

    def test_evaluate_fires_before_epoch_end(self, events):
        assert events.index(("evaluate", 3)) < events.index(("epoch_end", 3))


class TestCallbackSystem:
    def test_registered_callback_names(self):
        for name in ("fr_fd", "dynamics", "graph_snapshots", "progress", "convergence_stopping"):
            assert name in CALLBACKS

    def test_resolve_callbacks_from_specs(self):
        resolved = resolve_callbacks(
            ["dynamics", {"name": "graph_snapshots", "every": 3}, ConvergenceStopping()]
        )
        assert len(resolved) == 3
        assert resolved[1].every == 3

    def test_resolve_rejects_nameless_dict(self):
        with pytest.raises(ValueError, match="name"):
            resolve_callbacks([{"every": 3}])

    def test_lambda_callback_rejects_unknown_hook(self):
        with pytest.raises(ValueError, match="unknown callback hooks"):
            LambdaCallback(on_epoch_midpoint=lambda: None)

    def test_convergence_stopping_as_callback(self, tiny_graph):
        result = fast_pipeline(
            tiny_graph,
            alpha1=0.1,
            stop_at_convergence=False,
            epochs=40,
        ).callbacks("convergence_stopping").run()
        assert result.history.converged
        assert result.history.epochs_run < 40

    def test_snapshot_callback_from_spec(self, tiny_graph):
        result = (
            fast_pipeline(tiny_graph)
            .callbacks({"name": "graph_snapshots", "every": 5})
            .run()
        )
        assert 0 in result.history.graph_snapshots
        assert result.history.graph_snapshots[0].shape == tiny_graph.adjacency.shape

    def test_tracking_via_declarative_callbacks(self, tiny_graph):
        result = (
            fast_pipeline(tiny_graph, evaluate_every=5)
            .callbacks("dynamics", "fr_fd")
            .run()
        )
        history = result.history
        assert len(history.accuracy_all) == len(history.evaluation_epochs) > 0
        assert len(history.fr_rethought) == len(history.fr_baseline) > 0
        assert len(history.link_stats) > 0


class TestPipelineFacade:
    def test_fluent_and_from_spec_agree(self, tiny_graph):
        fluent = fast_pipeline(tiny_graph).run()
        respec = Pipeline.from_spec(fast_pipeline(tiny_graph).spec()).graph(tiny_graph).run()
        assert fluent.report.as_dict() == respec.report.as_dict()

    def test_from_json_round_trip_runs(self, tiny_graph):
        text = fast_pipeline(tiny_graph).spec().to_json()
        result = Pipeline.from_spec(text).graph(tiny_graph).run()
        assert 0.0 <= result.report.accuracy <= 1.0

    def test_base_variant_has_no_history(self, tiny_graph):
        result = fast_pipeline(tiny_graph).base().run()
        assert result.history is None
        assert result.variant == "base"
        assert result.report is not None

    def test_shared_pretraining_state(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        model.pretrain(tiny_graph, epochs=10)
        state = model.state_dict()
        template = fast_pipeline(tiny_graph).pretrained_state(state)
        base = template.base().run()
        rethought = template.rethink().run()
        assert base.report is not None and rethought.report is not None

    def test_pipeline_is_immutable(self, tiny_graph):
        template = fast_pipeline(tiny_graph)
        changed = template.seed(5)
        assert template.spec().seed == 0
        assert changed.spec().seed == 5

    def test_missing_dataset_raises(self):
        with pytest.raises(SpecError, match="no dataset"):
            Pipeline().model("gae").spec()

    def test_missing_model_raises(self):
        with pytest.raises(SpecError, match="no model"):
            Pipeline().dataset("cora_sim").spec()

    def test_variant_by_name_validates(self):
        with pytest.raises(UnknownVariantError):
            Pipeline().variant("weird")

    def test_run_summary_keys(self, tiny_graph):
        summary = fast_pipeline(tiny_graph).run().summary()
        for key in ("runtime_seconds", "acc", "nmi", "ari", "epochs_run"):
            assert key in summary


class TestConfigValidation:
    def test_alpha1_out_of_range(self):
        with pytest.raises(ConfigError, match="alpha1"):
            RethinkConfig(alpha1=1.5).validate()

    def test_alpha2_out_of_range(self):
        with pytest.raises(ConfigError, match="alpha2"):
            RethinkConfig(alpha2=-0.2).validate()

    def test_alpha2_defaults_to_half_alpha1(self):
        assert RethinkConfig(alpha1=0.6).resolved_alpha2 == pytest.approx(0.3)
        assert RethinkConfig(alpha1=0.6, alpha2=0.1).resolved_alpha2 == pytest.approx(0.1)

    def test_nonpositive_epochs(self):
        with pytest.raises(ConfigError, match="epochs"):
            RethinkConfig(epochs=0).validate()

    def test_bad_update_cadence(self):
        with pytest.raises(ConfigError, match="update_omega_every"):
            RethinkConfig(update_omega_every=0).validate()

    def test_bad_convergence_fraction(self):
        with pytest.raises(ConfigError, match="convergence_fraction"):
            RethinkConfig(convergence_fraction=0.0).validate()

    def test_negative_gamma(self):
        with pytest.raises(ConfigError, match="gamma"):
            RethinkConfig(gamma=-1.0).validate()

    def test_gamma_required_for_second_group_without_model_default(self):
        with pytest.raises(ConfigError, match="second-group"):
            RethinkConfig().validate(model_group="second", model_gamma=None)

    def test_second_group_accepts_model_gamma(self):
        RethinkConfig().validate(model_group="second", model_gamma=1.0)

    def test_trainer_validates_eagerly(self, tiny_graph):
        model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
        with pytest.raises(ConfigError):
            RethinkTrainer(model, RethinkConfig(alpha1=2.0))

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)


class TestPairResultVariants:
    def test_unknown_variant_raises_typed_error(self):
        pair = PairResult(model="gae", dataset="cora_sim")
        with pytest.raises(UnknownVariantError, match="boosted"):
            pair.best("boosted")
        with pytest.raises(UnknownVariantError):
            pair.mean_std("boosted")

    def test_unknown_variant_error_is_value_error(self):
        pair = PairResult(model="gae", dataset="cora_sim")
        with pytest.raises(ValueError):
            pair.trials("boosted")

    def test_known_variants_still_work(self):
        pair = PairResult(model="gae", dataset="cora_sim")
        assert pair.trials("base") == []
        with pytest.raises(ValueError, match="no trials"):
            pair.best("base")


class TestCLI:
    def test_print_spec_round_trips(self, tmp_path, capsys):
        from repro.api.cli import main
        from repro.api import RunSpec

        spec_path = tmp_path / "trial.json"
        spec_path.write_text(
            '{"dataset": "brazil_air_sim", "model": "gae", "seed": 1}'
        )
        assert main([str(spec_path), "--print-spec"]) == 0
        printed = capsys.readouterr().out
        spec = RunSpec.from_json(printed)
        assert spec.dataset.name == "brazil_air_sim"
        assert spec.seed == 1

    def test_malformed_spec_exits_2(self, tmp_path, capsys):
        from repro.api.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"dataset": "cora_sim"}')
        assert main([str(bad), "--print-spec"]) == 2
        assert "model" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        from repro.api.cli import main

        assert main(["/nonexistent/spec.json", "--print-spec"]) == 2

    def test_unknown_registry_name_reports_cleanly(self, tmp_path, capsys):
        from repro.api.cli import main

        spec_path = tmp_path / "trial.json"
        spec_path.write_text('{"dataset": "cora", "model": "gae"}')
        assert main([str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "unknown dataset 'cora'" in err
        assert "cora_sim" in err  # the error names the available datasets
