"""Shared fixtures: small synthetic graphs and pretrained tiny models.

Everything here is deliberately tiny (tens of nodes, a handful of epochs) so
the full test suite stays fast while still exercising the real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import attributed_sbm_graph
from repro.models import build_model


@pytest.fixture(scope="session", autouse=True)
def _sanitizers_from_env():
    """Run the whole suite under the runtime sanitizers when asked to.

    ``REPRO_SANITIZE=1 pytest`` (the CI sanitized tier-1 run) installs the
    NaN/Inf tensor guard for every test and arms the autograd leak detector
    inside every training loop; without the variable this fixture is a
    no-op and the suite runs exactly as before.
    """
    from repro.analysis.sanitizers import install_from_env, uninstall_sanitizers

    installed = install_from_env()
    yield
    if installed:
        uninstall_sanitizers()


@pytest.fixture()
def sanitized_runtime():
    """Opt-in per-test sanitizers (used by the sanitizer self-tests)."""
    from repro.analysis.sanitizers import sanitized

    with sanitized():
        yield


def make_tiny_graph(seed: int = 0, num_nodes: int = 90, num_clusters: int = 3):
    """A small, well-separated attributed SBM graph used across the suite."""
    proportions = [1.0 / num_clusters] * num_clusters
    return attributed_sbm_graph(
        num_nodes=num_nodes,
        proportions=proportions,
        p_intra=0.25,
        p_inter=0.02,
        num_features=40,
        active_per_class=8,
        signal=0.4,
        noise=0.02,
        seed=seed,
        name="tiny",
    )


@pytest.fixture(scope="session")
def tiny_graph():
    """Session-scoped tiny attributed graph (90 nodes, 3 clusters)."""
    return make_tiny_graph()


@pytest.fixture(scope="session")
def tiny_hard_graph():
    """A noisier tiny graph where clustering is genuinely ambiguous."""
    return attributed_sbm_graph(
        num_nodes=90,
        proportions=[0.4, 0.35, 0.25],
        p_intra=0.12,
        p_inter=0.05,
        num_features=40,
        active_per_class=8,
        signal=0.15,
        noise=0.05,
        seed=7,
        name="tiny_hard",
    )


@pytest.fixture(scope="session")
def pretrained_dgae(tiny_graph):
    """A DGAE pretrained for a few epochs on the tiny graph (session cached)."""
    model = build_model("dgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
    model.pretrain(tiny_graph, epochs=25)
    model.init_clustering(model.embed(tiny_graph))
    return model


@pytest.fixture(scope="session")
def pretrained_gmm_vgae(tiny_graph):
    """A GMM-VGAE pretrained for a few epochs on the tiny graph (session cached)."""
    model = build_model("gmm_vgae", tiny_graph.num_features, tiny_graph.num_clusters, seed=0)
    model.pretrain(tiny_graph, epochs=25)
    model.init_clustering(model.embed(tiny_graph))
    return model


@pytest.fixture()
def rng():
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
