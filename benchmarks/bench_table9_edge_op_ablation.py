"""Table 9 — ablation of the add_edge / drop_edge operations of the operator Υ."""

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import edge_operation_ablation
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    return {
        model: edge_operation_ablation(model, graph, config=SWEEP_CONFIG)
        for model in ("gmm_vgae", "dgae")
    }


def test_table9_edge_operation_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for model, rows in results.items():
        print(
            format_simple_table(
                rows,
                columns=["case", "acc", "nmi", "ari"],
                title=f"Table 9 — R-{model.upper()} on cora_sim",
            )
        )
    for rows in results.values():
        by_case = {row["case"]: row["acc"] for row in rows}
        assert len(by_case) == 4
        # The full operator should not be clearly worse than removing it.
        assert by_case["no ablation"] >= by_case["ablation of both"] - 0.05
