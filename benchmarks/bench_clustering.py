"""Loop-vs-vectorised benchmark for the clustering hot path.

PR 2 made graph propagation O(|E|); this benchmark pins the speedups of the
follow-up kernel work on the clustering side of the R-GAE procedure:

* **kmeans_multi_restart** — the batched (R, K, d) multi-restart
  :class:`~repro.clustering.KMeans` against the historical per-restart /
  per-cluster loop implementation (target ≥ 5×),
* **gmm_fit** — the GEMM-based :class:`~repro.clustering.GaussianMixture`
  (broadcast ``_log_prob``, loop-free variance M-step, batched k-means
  init) against the historical per-component loops (target ≥ 3×),
* **upsilon_transform** — the Υ operator on the CSR backend the substrate
  uses at N = 2000 (vectorised edge-set operations on the COO arrays)
  against the historical per-reliable-node / per-neighbour dense loop
  (target ≥ 4×); the vectorised dense→dense path is reported as a
  supplementary row (the full N² scan + copy bounds it, no gate),
* **trials_parallel** (optional, ``--trials-jobs N``) — the end-to-end
  multi-seed executor :func:`repro.parallel.run_seeded`: bitwise equality
  of per-seed results is always asserted; the ≥ 2.5× wall-clock target is
  only enforced on machines with at least ``N`` cores.

Usage::

    PYTHONPATH=src python benchmarks/bench_clustering.py            # full run
    PYTHONPATH=src python benchmarks/bench_clustering.py --smoke    # CI run
    PYTHONPATH=src python benchmarks/bench_clustering.py --output t.json

``--smoke`` halves the required speedups (kernel timings on shared CI
runners are noisy) and trims the repeat count; either way the script exits
non-zero when a kernel regresses below its threshold, so CI fails loudly.

The reference implementations below are verbatim copies of the pre-PR loop
kernels; ``tests/test_kernel_equivalence.py`` holds the numerical
equivalence tests between the two generations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

import numpy as np

from repro.clustering.gmm import GaussianMixture, _logsumexp
from repro.clustering.kmeans import KMeans, _pairwise_sq_distances
from repro.core.graph_transform import build_clustering_oriented_graph
from repro.graph.sparse import SparseAdjacency
from repro.observability.metrics import metrics_report as unified_report
from repro.observability.tracer import span as _span
from repro.observability.tracer import tracing_session

#: (name, target speedup) — ``--smoke`` enforces half of each target.
TARGETS = {
    "kmeans_multi_restart": 5.0,
    "gmm_fit": 3.0,
    "upsilon_transform": 4.0,
}
TRIALS_TARGET = 2.5
#: ceiling on the modelled cost of disabled tracing, as a fraction of the
#: wall time of an instrumented clustering refresh (the observability layer
#: must be free when off).
TRACING_OVERHEAD_TARGET = 0.01


# ----------------------------------------------------------------------
# reference kernels: the pre-PR loop implementations, kept verbatim
# ----------------------------------------------------------------------
def _reference_kmeans_plus_plus(data, num_clusters, rng):
    n = data.shape[0]
    centers = np.empty((num_clusters, data.shape[1]))
    centers[0] = data[int(rng.integers(0, n))]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            choice = int(rng.integers(0, n))
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centers[index] = data[choice]
        closest_sq = np.minimum(closest_sq, np.sum((data - centers[index]) ** 2, axis=1))
    return centers


class ReferenceKMeans:
    """The historical loop KMeans: sequential restarts, per-cluster M-step."""

    def __init__(self, num_clusters, num_init=10, max_iter=300, tol=1e-6, seed=0):
        self.num_clusters = num_clusters
        self.num_init = num_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def _single_run(self, data, rng):
        centers = _reference_kmeans_plus_plus(data, self.num_clusters, rng)
        for _ in range(self.max_iter):
            distances = _pairwise_sq_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.num_clusters):
                members = data[labels == cluster]
                if members.shape[0] > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    new_centers[cluster] = data[int(np.argmax(distances.min(axis=1)))]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift < self.tol:
                break
        distances = _pairwise_sq_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(data.shape[0]), labels].sum())
        return centers, labels, inertia

    def fit(self, data):
        data = np.asarray(data, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        best = None
        for _ in range(self.num_init):
            run = self._single_run(data, rng)
            if best is None or run[2] < best[2]:
                best = run
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self


class ReferenceGMM:
    """The historical loop GMM: per-component log-probs and variance M-step."""

    def __init__(self, num_components, max_iter=100, tol=1e-5, reg_covar=1e-6, seed=0):
        self.num_components = num_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.seed = seed

    def _log_prob(self, data):
        n, d = data.shape
        log_probs = np.empty((n, self.num_components))
        for k in range(self.num_components):
            var = self.variances_[k]
            diff = data - self.means_[k]
            log_det = np.sum(np.log(var))
            mahalanobis = np.sum(diff ** 2 / var, axis=1)
            log_probs[:, k] = -0.5 * (d * np.log(2.0 * np.pi) + log_det + mahalanobis)
        return log_probs

    def _e_step(self, data):
        weighted = self._log_prob(data) + np.log(self.weights_ + 1e-300)
        log_norm = _logsumexp(weighted, axis=1)
        return np.exp(weighted - log_norm[:, None]), float(log_norm.mean())

    def _m_step(self, data, responsibilities):
        counts = responsibilities.sum(axis=0) + 1e-12
        self.weights_ = counts / data.shape[0]
        self.means_ = (responsibilities.T @ data) / counts[:, None]
        for k in range(self.num_components):
            diff = data - self.means_[k]
            self.variances_[k] = (
                responsibilities[:, k] @ (diff ** 2)
            ) / counts[k] + self.reg_covar

    def fit(self, data):
        data = np.asarray(data, dtype=np.float64)
        kmeans = ReferenceKMeans(self.num_components, num_init=5, seed=self.seed).fit(data)
        self.means_ = kmeans.cluster_centers_.copy()
        self.variances_ = np.ones((self.num_components, data.shape[1]))
        for k in range(self.num_components):
            members = data[kmeans.labels_ == k]
            if members.shape[0] > 1:
                self.variances_[k] = members.var(axis=0) + self.reg_covar
        counts = np.bincount(kmeans.labels_, minlength=self.num_components)
        weights = counts / data.shape[0]
        weights[counts == 0] = 1.0 / self.num_components
        self.weights_ = weights / weights.sum()
        previous = -np.inf
        for _ in range(self.max_iter):
            responsibilities, log_likelihood = self._e_step(data)
            self._m_step(data, responsibilities)
            if abs(log_likelihood - previous) < self.tol:
                break
            previous = log_likelihood
        return self


def reference_transform(adjacency, assignments, reliable_nodes, embeddings):
    """The historical dense Υ: per-cluster Π loop, per-node/per-neighbour edits."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    num_clusters = assignments.shape[1]
    hard = np.argmax(assignments, axis=1)
    result = adjacency.copy()
    if reliable_nodes.size == 0:
        return result
    centroid_nodes = {}
    reliable_labels = hard[reliable_nodes]
    for cluster in range(num_clusters):
        members = reliable_nodes[reliable_labels == cluster]
        if members.size == 0:
            continue
        mean_embedding = embeddings[members].mean(axis=0)
        distances = np.linalg.norm(embeddings[members] - mean_embedding, axis=1)
        centroid_nodes[cluster] = int(members[int(np.argmin(distances))])
    reliable_mask = np.zeros(adjacency.shape[0], dtype=bool)
    reliable_mask[reliable_nodes] = True
    for node in reliable_nodes:
        node_cluster = int(hard[node])
        if node_cluster in centroid_nodes:
            centroid = centroid_nodes[node_cluster]
            if centroid != node and result[node, centroid] == 0:
                if int(hard[centroid]) == node_cluster:
                    result[node, centroid] = 1.0
                    result[centroid, node] = 1.0
        for neighbor in np.flatnonzero(adjacency[node]):
            if reliable_mask[neighbor] and int(hard[neighbor]) != node_cluster:
                result[node, neighbor] = 0.0
                result[neighbor, node] = 0.0
    return result


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def clustered_data(n, dim, num_clusters, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim)) + rng.integers(0, num_clusters, n)[:, None] * 1.2


def random_graph(n, avg_degree, seed):
    rng = np.random.default_rng(seed)
    num_edges = int(n * avg_degree / 2)
    rows = rng.integers(0, n, size=3 * num_edges)
    cols = rng.integers(0, n, size=3 * num_edges)
    valid = rows < cols
    keys = np.unique(rows[valid] * n + cols[valid])[:num_edges]
    dense = np.zeros((n, n))
    dense[keys // n, keys % n] = 1.0
    dense[keys % n, keys // n] = 1.0
    return dense


def measure(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of one call."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_kmeans(repeats: int, seed: int) -> Dict:
    # Multi-restart profile of the Ξ/clustering refresh path: an
    # air-traffic-sized graph (Europe: 399 nodes), many clusters and
    # restarts — the regime the loop version spent in Python overhead.
    # tol=0 pins both implementations to max_iter iterations per restart so
    # the timed work is identical.
    n, dim, num_clusters, num_init, max_iter = 300, 16, 20, 32, 20
    data = clustered_data(n, dim, num_clusters, seed)
    reference = ReferenceKMeans(num_clusters, num_init=num_init, max_iter=max_iter, tol=0.0, seed=seed)
    vectorised = KMeans(num_clusters, num_init=num_init, max_iter=max_iter, tol=0.0, seed=seed)
    return {
        "workload": {"n": n, "dim": dim, "clusters": num_clusters, "restarts": num_init, "max_iter": max_iter},
        "reference_seconds": measure(lambda: reference.fit(data), max(1, repeats - 1)),
        "vectorised_seconds": measure(lambda: vectorised.fit(data), repeats),
    }


def bench_gmm(repeats: int, seed: int) -> Dict:
    # Full fit including the k-means initialisation, as GMM-VGAE uses it;
    # embedding width 32 (the paper's hidden-layer size).  tol=0 pins the
    # EM loop to max_iter iterations in both generations.
    n, dim, num_clusters, max_iter = 1500, 32, 12, 15
    data = clustered_data(n, dim, num_clusters, seed)
    return {
        "workload": {"n": n, "dim": dim, "components": num_clusters, "max_iter": max_iter},
        "reference_seconds": measure(
            lambda: ReferenceGMM(num_clusters, max_iter=max_iter, tol=0.0, seed=seed).fit(data),
            max(1, repeats - 1),
        ),
        "vectorised_seconds": measure(
            lambda: GaussianMixture(num_clusters, max_iter=max_iter, tol=0.0, seed=seed).fit(data),
            repeats,
        ),
    }


def bench_upsilon(repeats: int, seed: int) -> Dict:
    # N = 2000 with the air-traffic-like density (USA: avg degree ~23); 90%
    # of the nodes decidable, as near paper convergence (|Ω| >= 0.9 N).
    n, dim, num_clusters, avg_degree = 2000, 16, 10, 16
    rng = np.random.default_rng(seed)
    dense = random_graph(n, avg_degree, seed)
    sparse = SparseAdjacency.from_dense(dense)
    labels = rng.integers(0, num_clusters, n)
    assignments = np.eye(num_clusters)[labels]
    embeddings = rng.standard_normal((n, dim)) + labels[:, None]
    reliable = rng.choice(n, int(0.9 * n), replace=False)

    out_reference = reference_transform(dense, assignments, reliable, embeddings)
    out_sparse = build_clustering_oriented_graph(sparse, assignments, reliable, embeddings)
    if not np.array_equal(out_sparse.to_dense(), out_reference):
        raise AssertionError("vectorised Υ disagrees with the loop reference")

    return {
        "workload": {"n": n, "avg_degree": avg_degree, "clusters": num_clusters, "reliable_fraction": 0.9},
        "reference_seconds": measure(
            lambda: reference_transform(dense, assignments, reliable, embeddings),
            max(1, repeats - 1),
        ),
        "vectorised_seconds": measure(
            lambda: build_clustering_oriented_graph(sparse, assignments, reliable, embeddings),
            repeats,
        ),
        "dense_path_seconds": measure(
            lambda: build_clustering_oriented_graph(dense, assignments, reliable, embeddings),
            repeats,
        ),
    }


def bench_trials(jobs: int, seed: int) -> Dict:
    """End-to-end multi-seed executor: wall clock and bitwise equality."""
    from repro.parallel import run_seeded

    spec = {
        "dataset": "brazil_air_sim",
        "model": "gae",
        "variant": "rethink",
        "seed": seed,
        "training": {"pretrain_epochs": 20, "rethink_epochs": 20},
        "rethink": {"overrides": {"update_omega_every": 5, "update_graph_every": 5}},
    }
    seeds = list(range(seed, seed + jobs))

    start = time.perf_counter()
    serial = run_seeded(spec, seeds, jobs=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run_seeded(spec, seeds, jobs=jobs)
    pooled_seconds = time.perf_counter() - start

    def strip(result):
        summary = result.summary()
        summary.pop("runtime_seconds", None)
        return summary

    if [strip(r) for r in serial] != [strip(r) for r in pooled]:
        raise AssertionError("parallel trial results differ from the serial run")
    return {
        "workload": {"spec": spec, "seeds": seeds, "jobs": jobs},
        "reference_seconds": serial_seconds,
        "vectorised_seconds": pooled_seconds,
        "cpu_count": os.cpu_count(),
    }


def _count_spans(node: Dict) -> int:
    return 1 + sum(_count_spans(child) for child in node.get("children", ()))


def bench_tracing_overhead(repeats: int, seed: int) -> Dict:
    """Price the disabled observability path against the clustering refresh.

    A disabled ``span()`` call is one module-global load, an is-None test and
    a shared no-op singleton; this row measures that per-call cost, counts
    how many spans one instrumented clustering refresh (k-means + GMM + Υ)
    actually emits, and reports the modelled worst-case overhead as a
    fraction of the refresh's untraced wall time.  The gate fails above
    ``TRACING_OVERHEAD_TARGET`` (1%).
    """
    calls = 200_000
    with tracing_session(enabled=False):
        start = time.perf_counter()
        for _ in range(calls):
            with _span("bench.noop"):
                pass
        disabled_span_seconds = (time.perf_counter() - start) / calls

    n, dim, num_clusters, avg_degree = 800, 16, 10, 12
    data = clustered_data(n, dim, num_clusters, seed)
    rng = np.random.default_rng(seed)
    dense = random_graph(n, avg_degree, seed)
    sparse = SparseAdjacency.from_dense(dense)
    labels = rng.integers(0, num_clusters, n)
    assignments = np.eye(num_clusters)[labels]
    embeddings = rng.standard_normal((n, dim)) + labels[:, None]
    reliable = rng.choice(n, int(0.9 * n), replace=False)

    def refresh():
        KMeans(num_clusters, num_init=4, max_iter=10, tol=0.0, seed=seed).fit(data)
        GaussianMixture(num_clusters, max_iter=5, tol=0.0, seed=seed).fit(data)
        build_clustering_oriented_graph(sparse, assignments, reliable, embeddings)

    with tracing_session(enabled=False):
        kernel_seconds = measure(refresh, repeats)
    with tracing_session(enabled=True) as tracer:
        refresh()
        span_count = sum(_count_spans(root) for root in tracer.export())

    return {
        "workload": {"n": n, "dim": dim, "clusters": num_clusters, "noop_calls": calls},
        "disabled_span_seconds": disabled_span_seconds,
        "span_count": span_count,
        "kernel_seconds": kernel_seconds,
        "overhead_fraction": disabled_span_seconds * span_count / kernel_seconds,
        "target_fraction": TRACING_OVERHEAD_TARGET,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="fast CI run with halved thresholds")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trials-jobs",
        type=int,
        default=0,
        help="also benchmark the multi-seed process-pool executor with this "
        "many seeds/workers (0 disables; equality is always asserted)",
    )
    parser.add_argument(
        "--min-speedup-scale",
        type=float,
        default=None,
        help="override the threshold scale (default: 1.0, or 0.5 with --smoke; 0 disables)",
    )
    parser.add_argument("--output", type=str, default=None, help="write timing JSON here")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 4)
    scale = args.min_speedup_scale
    if scale is None:
        scale = 0.5 if args.smoke else 1.0

    benches = {
        "kmeans_multi_restart": lambda: bench_kmeans(repeats, args.seed),
        "gmm_fit": lambda: bench_gmm(repeats, args.seed),
        "upsilon_transform": lambda: bench_upsilon(repeats, args.seed),
    }
    report = unified_report("bench_clustering", {}, repeats=repeats, seed=args.seed)
    print(f"{'kernel':>22} {'loop':>10} {'vectorised':>11} {'speedup':>8} {'target':>7}")
    failures = []
    for name, bench in benches.items():
        row = bench()
        row["speedup"] = row["reference_seconds"] / row["vectorised_seconds"]
        row["target"] = TARGETS[name]
        report["results"][name] = row
        print(
            f"{name:>22} {row['reference_seconds'] * 1e3:8.1f}ms "
            f"{row['vectorised_seconds'] * 1e3:9.1f}ms {row['speedup']:7.1f}x "
            f"{row['target']:6.1f}x"
        )
        if name == "upsilon_transform":
            print(
                f"{'  (dense->dense path)':>22} {'':>10} "
                f"{row['dense_path_seconds'] * 1e3:9.1f}ms"
            )
        if scale > 0 and row["speedup"] < row["target"] * scale:
            failures.append(
                f"{name}: {row['speedup']:.1f}x < required "
                f"{row['target'] * scale:.1f}x"
            )

    if args.trials_jobs > 1:
        row = bench_trials(args.trials_jobs, args.seed)
        row["speedup"] = row["reference_seconds"] / row["vectorised_seconds"]
        row["target"] = TRIALS_TARGET
        report["results"]["trials_parallel"] = row
        print(
            f"{'trials_parallel':>22} {row['reference_seconds'] * 1e3:8.1f}ms "
            f"{row['vectorised_seconds'] * 1e3:9.1f}ms {row['speedup']:7.1f}x "
            f"{row['target']:6.1f}x"
        )
        enough_cores = (os.cpu_count() or 1) >= args.trials_jobs
        if scale > 0 and enough_cores and row["speedup"] < TRIALS_TARGET * scale:
            failures.append(
                f"trials_parallel: {row['speedup']:.1f}x < required "
                f"{TRIALS_TARGET * scale:.1f}x"
            )
        elif not enough_cores:
            print(
                f"  (speedup not enforced: {os.cpu_count()} cores < "
                f"{args.trials_jobs} jobs)"
            )

    row = bench_tracing_overhead(repeats, args.seed)
    report["results"]["tracing_overhead"] = row
    print(
        f"{'tracing_overhead':>22} {row['disabled_span_seconds'] * 1e9:8.1f}ns/span "
        f"x {row['span_count']} spans / {row['kernel_seconds'] * 1e3:.1f}ms "
        f"= {row['overhead_fraction'] * 100:.4f}% (limit "
        f"{TRACING_OVERHEAD_TARGET * 100:.0f}%)"
    )
    if scale > 0 and row["overhead_fraction"] > TRACING_OVERHEAD_TARGET:
        failures.append(
            f"tracing_overhead: disabled-path cost is "
            f"{row['overhead_fraction'] * 100:.2f}% of the clustering refresh; "
            f"required < {TRACING_OVERHEAD_TARGET * 100:.0f}%"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.output}")

    if failures:
        print("PERF REGRESSION in the clustering hot path:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
