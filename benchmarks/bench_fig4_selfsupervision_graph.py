"""Figure 4 — evolution of the operator-built self-supervision graph A_self_clus.

The paper visualises the graph at epochs 0/40/80/120 and observes (i) more
nodes connected to their cluster centroid over time and (ii) the emergence
of K star-shaped sub-graphs.  We report the edge and star-subgraph counts of
the snapshots of a tracked R-GMM-VGAE run on the Cora surrogate.
"""

from _shared import cached_dynamics
from repro.experiments.tables import format_simple_table


def test_fig4_selfsupervision_graph_evolution(benchmark):
    result = benchmark.pedantic(cached_dynamics, rounds=1, iterations=1)
    snapshots = result["graph_snapshot_summary"]
    rows = [
        {"epoch": epoch, **info} for epoch, info in sorted(snapshots.items())
    ]
    print()
    print(
        format_simple_table(
            rows,
            columns=["epoch", "num_edges", "star_subgraphs"],
            title="Figure 4 — A_self_clus snapshots (R-GMM-VGAE on cora_sim)",
        )
    )
    assert len(rows) >= 2
    # The operator keeps editing the graph: the last snapshot differs from the first.
    assert rows[-1]["num_edges"] != rows[0]["num_edges"] or rows[-1]["star_subgraphs"] >= rows[0]["star_subgraphs"]
