"""Dense-vs-sparse benchmark for the adjacency hot path.

Measures wall-clock time and peak traced memory of the three operations the
CSR backend (:mod:`repro.graph.sparse`) rewired:

* adjacency normalisation (``normalize_adjacency``),
* GCN propagation, forward + backward, through a
  :class:`~repro.nn.layers.GraphConvolution` layer,
* the Laplacian quadratic form ``L_C(Z, A)``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparse.py                 # N = 500/2000/8000
    PYTHONPATH=src python benchmarks/bench_sparse.py --smoke         # quick CI run
    PYTHONPATH=src python benchmarks/bench_sparse.py --output t.json

The dense baseline is only measured up to ``--dense-max`` nodes (default
2000 — a dense 8000² float64 adjacency alone is 512 MB).  At every size
where both paths run, the sparse path must be at least ``--min-speedup``
times faster (default 5×, checked for N ≥ 2000) on GCN propagation and the
quadratic form, otherwise the script exits non-zero so CI fails loudly on
hot-path perf regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from typing import Callable, Dict, Optional

import numpy as np

from repro.graph.laplacian import (
    laplacian_quadratic_form,
    laplacian_quadratic_form_dense,
    normalize_adjacency,
)
from repro.graph.sparse import SparseAdjacency
from repro.nn.layers import GraphConvolution
from repro.observability.metrics import metrics_report as unified_report

FEATURE_DIM = 32
HIDDEN_DIM = 16


def random_sparse_graph(n: int, avg_degree: float, seed: int) -> SparseAdjacency:
    """Random undirected binary graph with ~``avg_degree`` edges per node."""
    rng = np.random.default_rng(seed)
    num_edges = int(n * avg_degree / 2)
    rows = rng.integers(0, n, size=3 * num_edges)
    cols = rng.integers(0, n, size=3 * num_edges)
    valid = rows < cols
    keys = np.unique(rows[valid] * n + cols[valid])[:num_edges]
    edges = np.stack([keys // n, keys % n], axis=1)
    return SparseAdjacency.from_edges(edges, n)


def measure(fn: Callable[[], object], repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall time plus peak traced memory of one run."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"seconds": best, "peak_bytes": int(peak)}


def gcn_forward_backward(x: np.ndarray, adjacency, seed: int = 0) -> Callable[[], object]:
    layer = GraphConvolution(
        x.shape[1], HIDDEN_DIM, activation="relu", rng=np.random.default_rng(seed)
    )

    def run():
        out = layer(x, adjacency)
        loss = (out * out).sum()
        loss.backward()
        loss.release_graph()  # the peak-memory probe must not count retained graphs
        for param in layer.parameters():
            param.zero_grad()
        return out

    return run


def bench_size(n: int, avg_degree: float, repeats: int, dense_max: int, seed: int) -> Dict:
    sparse = random_sparse_graph(n, avg_degree, seed)
    sparse_norm = sparse.normalize(self_loops=True)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((n, FEATURE_DIM))
    z = rng.standard_normal((n, HIDDEN_DIM))
    with_dense = n <= dense_max
    dense = sparse.to_dense() if with_dense else None
    dense_norm = normalize_adjacency(dense, self_loops=True) if with_dense else None

    result = {
        "num_nodes": n,
        "num_edges": sparse.nnz // 2,
        "density": sparse.density,
        "adjacency_bytes": {
            "dense": int(n * n * 8),
            "sparse": int(
                sparse_norm.data.nbytes
                + sparse_norm.indices.nbytes
                + sparse_norm.indptr.nbytes
            ),
        },
        "ops": {},
    }

    ops: Dict[str, Dict[str, Optional[Callable[[], object]]]] = {
        "normalize_adjacency": {
            "dense": (lambda: normalize_adjacency(dense, self_loops=True))
            if with_dense
            else None,
            "sparse": lambda: sparse.normalize(self_loops=True),
        },
        "gcn_forward_backward": {
            "dense": gcn_forward_backward(x, dense_norm) if with_dense else None,
            "sparse": gcn_forward_backward(x, sparse_norm),
        },
        "laplacian_quadratic_form": {
            "dense": (lambda: laplacian_quadratic_form_dense(z, dense))
            if with_dense
            else None,
            "sparse": lambda: laplacian_quadratic_form(z, sparse),
        },
    }

    for op_name, paths in ops.items():
        entry: Dict[str, object] = {}
        for path_name, fn in paths.items():
            if fn is not None:
                entry[path_name] = measure(fn, repeats)
        if "dense" in entry and "sparse" in entry:
            entry["speedup"] = entry["dense"]["seconds"] / entry["sparse"]["seconds"]
        result["ops"][op_name] = entry
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small fast run for CI (N = 500, 2000)"
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None, help="override node counts"
    )
    parser.add_argument("--avg-degree", type=float, default=8.0)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--dense-max", type=int, default=2000, help="largest N for the dense baseline"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required sparse speedup on GCN propagation and the quadratic "
        "form at N >= 2000 (0 disables the check)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None, help="write timing JSON here")
    args = parser.parse_args(argv)

    sizes = args.sizes if args.sizes else ([500, 2000] if args.smoke else [500, 2000, 8000])
    repeats = args.repeats if args.repeats is not None else (3 if args.smoke else 5)

    report = unified_report(
        "bench_sparse",
        [],
        repeats=repeats,
        feature_dim=FEATURE_DIM,
        hidden_dim=HIDDEN_DIM,
        avg_degree=args.avg_degree,
    )
    print(f"{'N':>6} {'|E|':>8} {'op':>26} {'dense':>10} {'sparse':>10} {'speedup':>8}")
    for n in sizes:
        row = bench_size(n, args.avg_degree, repeats, args.dense_max, args.seed)
        report["results"].append(row)
        for op_name, entry in row["ops"].items():
            dense_s = entry.get("dense", {}).get("seconds")
            sparse_s = entry["sparse"]["seconds"]
            dense_txt = f"{dense_s * 1e3:8.2f}ms" if dense_s is not None else "      (skip)"
            speedup_txt = f"{entry['speedup']:7.1f}x" if "speedup" in entry else "       -"
            print(
                f"{n:>6} {row['num_edges']:>8} {op_name:>26} "
                f"{dense_txt:>10} {sparse_s * 1e3:8.2f}ms {speedup_txt:>8}"
            )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.output}")

    failures = []
    if args.min_speedup > 0:
        for row in report["results"]:
            if row["num_nodes"] < 2000:
                continue
            for op_name in ("gcn_forward_backward", "laplacian_quadratic_form"):
                speedup = row["ops"][op_name].get("speedup")
                if speedup is not None and speedup < args.min_speedup:
                    failures.append(
                        f"{op_name} at N={row['num_nodes']}: "
                        f"{speedup:.1f}x < required {args.min_speedup:.1f}x"
                    )
    if failures:
        print("PERF REGRESSION in the sparse hot path:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
