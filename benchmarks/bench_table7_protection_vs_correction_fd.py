"""Table 7 — protection vs correction mechanisms against Feature Drift.

Protection = apply Υ to the whole node set V in a single step (immediately
removing the reconstruction signal); correction = apply Υ gradually on the
decidable set Ω.  The paper finds correction superior.
"""

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import protection_vs_correction_fd
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    return {
        model: protection_vs_correction_fd(model, graph, config=SWEEP_CONFIG)
        for model in ("gmm_vgae", "dgae")
    }


def test_table7_protection_vs_correction_fd(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for model, rows in results.items():
        print(
            format_simple_table(
                rows,
                columns=["mechanism", "acc", "nmi", "ari"],
                title=f"Table 7 — R-{model.upper()} on cora_sim",
            )
        )
    for rows in results.values():
        by_mechanism = {row["mechanism"]: row for row in rows}
        # Correction (gradual Υ) should not be clearly worse than protection.
        assert by_mechanism["correction"]["acc"] >= by_mechanism["protection"]["acc"] - 0.05
