"""Table 4 — mean ± std of (GMM-VGAE, DGAE) pairs on the air-traffic surrogates."""

from _shared import AIR_TRAFFIC_DATASETS, air_traffic_rows
from repro.experiments import format_mean_std_table


def test_table4_airtraffic_mean_std(benchmark):
    rows = benchmark.pedantic(
        air_traffic_rows, kwargs={"variant_best": False}, rounds=1, iterations=1
    )
    print()
    print(
        format_mean_std_table(
            rows, AIR_TRAFFIC_DATASETS, title="Table 4 — mean ± std ACC/NMI/ARI (%)"
        )
    )
    for model_rows in rows.values():
        for dataset_metrics in model_rows.values():
            assert 0.0 <= dataset_metrics["acc"]["mean"] <= 1.0
