"""Figure 13 — sensitivity of GMM-VGAE vs R-GMM-VGAE to the balancing coefficient γ.

The paper's claim: the R- variant is less sensitive to γ because Υ turns the
reconstruction objective into a clustering-oriented one, reducing the
competition between the two losses.
"""

import numpy as np

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import gamma_sensitivity_study
from repro.experiments.tables import format_simple_table


def _run():
    return gamma_sensitivity_study(
        "gmm_vgae",
        cached_graph("cora_sim"),
        gamma_values=(0.01, 0.1, 1.0),
        config=SWEEP_CONFIG,
    )


def test_fig13_gamma_sensitivity(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    flat = [
        {
            "gamma": row["gamma"],
            "gmm_vgae_acc": row["base"]["acc"],
            "r_gmm_vgae_acc": row["rethink"]["acc"],
        }
        for row in rows
    ]
    print()
    print(
        format_simple_table(
            flat,
            columns=["gamma", "gmm_vgae_acc", "r_gmm_vgae_acc"],
            title="Figure 13 — gamma sensitivity on cora_sim",
        )
    )
    base_spread = np.ptp([row["base"]["acc"] for row in rows])
    rethink_spread = np.ptp([row["rethink"]["acc"] for row in rows])
    # The R- variant's accuracy varies no more than the base model's plus a margin.
    assert rethink_spread <= base_spread + 0.10
