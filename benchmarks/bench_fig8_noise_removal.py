"""Figure 8 — robustness of DGAE vs R-DGAE to dropped edges and dropped features."""

import numpy as np

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import edge_removal_study, feature_removal_study
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    return {
        "dropped_edges": edge_removal_study(
            "dgae", graph, num_edges_levels=(0, 400), config=SWEEP_CONFIG
        ),
        "dropped_features": feature_removal_study(
            "dgae", graph, num_columns_levels=(0, 150), config=SWEEP_CONFIG
        ),
    }


def test_fig8_noise_removal(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for study, rows in results.items():
        flat = [
            {
                "level": row["level"],
                "dgae_acc": row["base"]["acc"],
                "rdgae_acc": row["rethink"]["acc"],
            }
            for row in rows
        ]
        print(
            format_simple_table(
                flat,
                columns=["level", "dgae_acc", "rdgae_acc"],
                title=f"Figure 8 — {study} (DGAE vs R-DGAE on cora_sim)",
            )
        )
    for rows in results.values():
        base_mean = np.mean([row["base"]["acc"] for row in rows])
        rethink_mean = np.mean([row["rethink"]["acc"] for row in rows])
        assert rethink_mean >= base_mean - 0.08
