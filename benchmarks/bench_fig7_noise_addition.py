"""Figure 7 — robustness of DGAE vs R-DGAE to added noisy edges and feature noise."""

import numpy as np

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import edge_addition_study, feature_noise_study
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    return {
        "noisy_edges": edge_addition_study(
            "dgae", graph, num_edges_levels=(0, 400), config=SWEEP_CONFIG
        ),
        "feature_noise": feature_noise_study(
            "dgae", graph, variance_levels=(0.0, 0.2), config=SWEEP_CONFIG
        ),
    }


def test_fig7_noise_addition(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for study, rows in results.items():
        flat = [
            {
                "level": row["level"],
                "dgae_acc": row["base"]["acc"],
                "rdgae_acc": row["rethink"]["acc"],
                "dgae_ari": row["base"]["ari"],
                "rdgae_ari": row["rethink"]["ari"],
            }
            for row in rows
        ]
        print(
            format_simple_table(
                flat,
                columns=["level", "dgae_acc", "rdgae_acc", "dgae_ari", "rdgae_ari"],
                title=f"Figure 7 — {study} (DGAE vs R-DGAE on cora_sim)",
            )
        )
    for rows in results.values():
        base_mean = np.mean([row["base"]["acc"] for row in rows])
        rethink_mean = np.mean([row["rethink"]["acc"] for row in rows])
        # R-DGAE should not be clearly less robust than DGAE across the sweep.
        assert rethink_mean >= base_mean - 0.08
