"""Theory benchmark — numerical verification and cost of the loss decompositions.

Checks Proposition 1, Proposition 2 and Theorem 1 on real pretrained
embeddings of the Cora surrogate (not just random vectors), and times the
decomposition so regressions in the analysis code are visible.
"""

import numpy as np

from _shared import BENCH_CONFIG, cached_graph
from repro.core import combined_objective, kmeans_loss, laplacian_term, reconstruction_bce_sum, reconstruction_remainder
from repro.core.losses import kmeans_loss_as_laplacian
from repro.models import build_model


def _setup():
    graph = cached_graph("cora_sim")
    model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
    model.pretrain(graph, epochs=BENCH_CONFIG.pretrain_epochs)
    embeddings = model.embed(graph)
    labels = model.predict_labels(graph)
    return graph, embeddings, labels


def test_theory_decompositions_on_trained_embeddings(benchmark):
    graph, embeddings, labels = _setup()

    def decompose():
        return combined_objective(embeddings, graph.adjacency, labels, gamma=1.0)

    result = benchmark.pedantic(decompose, rounds=3, iterations=1)
    print()
    print("Theorem 1 on trained embeddings:", result)

    # Proposition 1
    lhs = reconstruction_bce_sum(embeddings, graph.adjacency)
    rhs = laplacian_term(embeddings, graph.adjacency) + reconstruction_remainder(
        embeddings, graph.adjacency
    )
    assert np.isclose(lhs, rhs, rtol=1e-8)
    # Proposition 2
    assert np.isclose(kmeans_loss(embeddings, labels), kmeans_loss_as_laplacian(embeddings, labels), rtol=1e-8)
    # Theorem 1
    assert result["gap"] < 1e-6 * max(1.0, abs(result["direct"]))
