"""Figure 10 — separability of the latent spaces of GMM-VGAE vs R-GMM-VGAE.

The paper shows t-SNE plots at epochs 0/40/80/120; the quantitative claim is
that R-GMM-VGAE ends with better-separated clusters.  We report a
between/within scatter ratio plus accuracy at evenly spaced checkpoints.
"""

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import latent_separability_study
from repro.experiments.tables import format_simple_table


def _run():
    return latent_separability_study(
        "gmm_vgae", cached_graph("cora_sim"), config=SWEEP_CONFIG, checkpoints=3
    )


def test_fig10_latent_separability(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    trajectory = result["trajectory"]
    rows = []
    for variant, checkpoints in trajectory.items():
        for epoch, stats in sorted(checkpoints.items()):
            rows.append({"variant": variant, "epoch": epoch, **stats})
    print()
    print(
        format_simple_table(
            rows,
            columns=["variant", "epoch", "separability", "accuracy"],
            title="Figure 10 — latent separability (GMM-VGAE vs R-GMM-VGAE on cora_sim)",
        )
    )
    final_base = max(trajectory["base"])
    final_rethink = max(trajectory["rethink"])
    # Final R- separability should be at least comparable to the base model's.
    assert (
        trajectory["rethink"][final_rethink]["separability"]
        >= 0.5 * trajectory["base"][final_base]["separability"]
    )
    assert result["projection_2d"]["base"].shape[1] == 2
    assert result["projection_2d"]["rethink"].shape[1] == 2
