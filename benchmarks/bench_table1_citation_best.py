"""Table 1 — best clustering performance of D vs R-D on the citation surrogates.

Regenerates the rows of the paper's Table 1 (GAE, VGAE, ARGAE, ARVGAE, DGAE,
GMM-VGAE and their R- variants on Cora/Citeseer/Pubmed surrogates) and
asserts the headline shape: on average the R- variants outperform their base
models.
"""

import numpy as np

from _shared import ALL_MODELS, CITATION_DATASETS, citation_rows
from repro.experiments import format_table


def test_table1_citation_best(benchmark):
    rows = benchmark.pedantic(citation_rows, kwargs={"variant_best": True}, rounds=1, iterations=1)
    print()
    print(format_table(rows, CITATION_DATASETS, title="Table 1 — best ACC/NMI/ARI (%)"))

    base_acc = []
    rethink_acc = []
    for model in ALL_MODELS:
        for dataset in CITATION_DATASETS:
            base_acc.append(rows[model.upper()][dataset]["acc"])
            rethink_acc.append(rows[f"R-{model.upper()}"][dataset]["acc"])
    # Shape check: on average the R- operators improve the clustering accuracy.
    assert np.mean(rethink_acc) >= np.mean(base_acc) - 0.01
    assert all(0.0 <= value <= 1.0 for value in base_acc + rethink_acc)
