"""Figure 5 — Λ_FR traces during R-GMM-VGAE training on the Cora surrogate.

The blue/green curves of the paper correspond to the Λ_FR of the R- model
(clustering loss restricted to Ω) and of the base configuration (all nodes),
measured on the same run.  Both start close to 1 and the R- trace should not
fall below the baseline trace on average (the protection effect of Ξ).
"""

import numpy as np

from _shared import cached_dynamics
from repro.experiments.tables import format_simple_table


def test_fig5_feature_randomness_traces(benchmark):
    result = benchmark.pedantic(cached_dynamics, rounds=1, iterations=1)
    history = result["history"]
    rows = [
        {
            "epoch": epoch,
            "fr_rethink": fr_r,
            "fr_baseline": fr_b,
        }
        for epoch, fr_r, fr_b in zip(
            history.evaluation_epochs, history.fr_rethought, history.fr_baseline
        )
    ]
    print()
    print(
        format_simple_table(
            rows,
            columns=["epoch", "fr_rethink", "fr_baseline"],
            title="Figure 5 — Lambda_FR during R-GMM-VGAE training on cora_sim",
        )
    )
    assert len(rows) > 0
    values = np.array([[row["fr_rethink"], row["fr_baseline"]] for row in rows])
    assert np.all((values >= -1.0) & (values <= 1.0))
    # Protection effect: the Ω-restricted loss is at least as aligned with the
    # oracle as the all-nodes loss, on average.
    assert values[:, 0].mean() >= values[:, 1].mean() - 0.05
