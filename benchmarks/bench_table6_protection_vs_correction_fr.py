"""Table 6 — protection vs correction mechanisms against Feature Randomness.

Delaying the sampling operator Ξ (correction) should not beat starting it
immediately after pretraining (protection); longer delays generally degrade.
"""

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import protection_vs_correction_fr
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    results = {}
    for model in ("gmm_vgae", "dgae"):
        results[model] = protection_vs_correction_fr(
            model, graph, delays=(0, 10), config=SWEEP_CONFIG
        )
    return results


def test_table6_protection_vs_correction_fr(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for model, rows in results.items():
        print(
            format_simple_table(
                rows,
                columns=["mechanism", "delay", "acc", "nmi"],
                title=f"Table 6 — R-{model.upper()} on cora_sim",
            )
        )
    for rows in results.values():
        protection_acc = rows[0]["acc"]
        worst_correction = min(row["acc"] for row in rows[1:])
        # The protection mechanism should not be clearly worse than the
        # worst delayed (correction) variant.
        assert protection_acc >= worst_correction - 0.05
