"""Table 17 (Appendix D) — comparison against non-GAE graph clustering baselines.

Reuses the cached R-DGAE / R-GMM-VGAE runs of Table 1 and adds the TADW,
MGAE, AGC and AGE baselines on the citation surrogates.
"""

import numpy as np

from _shared import CITATION_DATASETS, cached_graph, cached_pair
from repro.baselines import available_baselines, build_baseline
from repro.experiments import format_table
from repro.metrics import evaluate_clustering


def _run():
    rows = {}
    for baseline_name in available_baselines():
        row = {}
        for dataset in CITATION_DATASETS:
            graph = cached_graph(dataset)
            labels = build_baseline(baseline_name, graph.num_clusters, seed=0).fit_predict(graph)
            row[dataset] = evaluate_clustering(graph.labels, labels).as_dict()
        rows[baseline_name.upper()] = row
    for model in ("dgae", "gmm_vgae"):
        rows[f"R-{model.upper()}"] = {
            dataset: cached_pair(model, dataset).best("rethink").as_dict()
            for dataset in CITATION_DATASETS
        }
    return rows


def test_table17_baseline_comparison(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows, CITATION_DATASETS, title="Table 17 — comparison with graph clustering methods"
        )
    )
    baseline_best = max(
        rows[name.upper()][dataset]["acc"]
        for name in available_baselines()
        for dataset in CITATION_DATASETS
    )
    rgae_best = max(
        rows[f"R-{model.upper()}"][dataset]["acc"]
        for model in ("dgae", "gmm_vgae")
        for dataset in CITATION_DATASETS
    )
    # Shape: the R- GAE models are competitive with the simplified baselines.
    assert rgae_best >= baseline_best - 0.10
    assert np.isfinite(rgae_best)
