"""Figure 9 — learning dynamics of R-GMM-VGAE on the Cora surrogate.

Reproduces the three families of curves: (a-c) growth of the decidable set Ω
and accuracy of decidable vs undecidable nodes, (d-f) link bookkeeping of
the operator-built graph (total / added / deleted links, split into true and
false links).
"""

import numpy as np

from _shared import cached_dynamics
from repro.experiments.tables import format_simple_table


def test_fig9_learning_dynamics(benchmark):
    result = benchmark.pedantic(cached_dynamics, rounds=1, iterations=1)
    history = result["history"]

    coverage_rows = [
        {
            "epoch": epoch,
            "coverage": history.omega_coverage[min(epoch, len(history.omega_coverage) - 1)],
            "acc_all": acc_all,
            "acc_decidable": acc_dec,
            "acc_undecidable": acc_undec,
        }
        for epoch, acc_all, acc_dec, acc_undec in zip(
            history.evaluation_epochs,
            history.accuracy_all,
            history.accuracy_decidable,
            history.accuracy_undecidable,
        )
    ]
    link_rows = [
        {"epoch": epoch, **stats}
        for epoch, stats in zip(history.evaluation_epochs, history.link_stats)
    ]
    print()
    print(
        format_simple_table(
            coverage_rows,
            columns=["epoch", "coverage", "acc_all", "acc_decidable", "acc_undecidable"],
            title="Figure 9 (a-c) — decidable nodes and accuracies",
        )
    )
    print(
        format_simple_table(
            link_rows,
            columns=[
                "epoch",
                "total_links",
                "added_true_links",
                "added_false_links",
                "deleted_links",
            ],
            title="Figure 9 (d-f) — links of A_self_clus",
        )
    )
    assert len(coverage_rows) > 0 and len(link_rows) > 0
    # Decidable nodes are at least as accurate as undecidable ones on average.
    decidable = np.mean([row["acc_decidable"] for row in coverage_rows])
    undecidable = np.mean([row["acc_undecidable"] for row in coverage_rows])
    assert decidable >= undecidable - 0.05
    # Most added links connect nodes of the same ground-truth cluster.
    added_true = sum(row["added_true_links"] for row in link_rows)
    added_false = sum(row["added_false_links"] for row in link_rows)
    assert added_true >= added_false
