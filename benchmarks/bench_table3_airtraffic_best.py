"""Table 3 — best performance of (GMM-VGAE, DGAE) pairs on the air-traffic surrogates."""

import numpy as np

from _shared import AIR_TRAFFIC_DATASETS, SECOND_GROUP_MODELS, air_traffic_rows
from repro.experiments import format_table


def test_table3_airtraffic_best(benchmark):
    rows = benchmark.pedantic(air_traffic_rows, kwargs={"variant_best": True}, rounds=1, iterations=1)
    print()
    print(format_table(rows, AIR_TRAFFIC_DATASETS, title="Table 3 — best ACC/NMI/ARI (%)"))
    base = [rows[m.upper()][d]["acc"] for m in SECOND_GROUP_MODELS for d in AIR_TRAFFIC_DATASETS]
    rethink = [
        rows[f"R-{m.upper()}"][d]["acc"] for m in SECOND_GROUP_MODELS for d in AIR_TRAFFIC_DATASETS
    ]
    assert np.mean(rethink) >= np.mean(base) - 0.03
