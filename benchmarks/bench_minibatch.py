"""Minibatch-vs-full-graph benchmark for the R- clustering phase.

Measures wall-clock time and peak traced memory of one R- training epoch
(`RethinkTrainer.fit`, pretraining excluded) in two configurations:

* **full** — the legacy full-graph loop: one forward/backward over the
  whole adjacency, whose reconstruction term materialises the dense
  ``(N, N)`` logits ``Z Zᵀ`` (the O(N²) wall the minibatch subsystem
  removes);
* **cluster** — the same epoch over :class:`~repro.minibatch.ClusterLoader`
  partition batches of ``--batch-size`` nodes, with the operators Ξ / Υ
  refreshed on full-graph state at the epoch boundary.

Usage::

    PYTHONPATH=src python benchmarks/bench_minibatch.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_minibatch.py --smoke    # quick CI run
    PYTHONPATH=src python benchmarks/bench_minibatch.py --output t.json

The full-graph path only runs up to ``--full-max`` nodes (default 2000).
Two scaling checks make CI fail loudly when the subsystem regresses:

1. at every size ≥ 2000 where both paths run, the cluster epoch must use
   *less peak memory* than the full-graph epoch;
2. the largest cluster-sampled size must be ≥ ``--min-scale`` × the largest
   full-graph size (default 4×) while staying within the full-graph path's
   peak memory at its own largest size — "a 4× larger graph in the same
   memory envelope".
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from typing import Dict, Optional

import numpy as np

from repro.core.rethink import RethinkConfig, RethinkTrainer
from repro.graph.graph import AttributedGraph
from repro.graph.sparse import SparseAdjacency
from repro.models import build_model
from repro.observability.metrics import metrics_report as unified_report

FEATURE_DIM = 32
NUM_CLUSTERS = 6


def random_training_graph(n: int, avg_degree: float, seed: int) -> AttributedGraph:
    """Random sparse undirected graph with features, sized for training."""
    rng = np.random.default_rng(seed)
    num_edges = int(n * avg_degree / 2)
    rows = rng.integers(0, n, size=3 * num_edges)
    cols = rng.integers(0, n, size=3 * num_edges)
    valid = rows < cols
    keys = np.unique(rows[valid] * n + cols[valid])[:num_edges]
    edges = np.stack([keys // n, keys % n], axis=1)
    dense = SparseAdjacency.from_edges(edges, n).to_dense()
    np.clip(dense, 0.0, 1.0, out=dense)
    features = rng.standard_normal((n, FEATURE_DIM))
    return AttributedGraph(
        adjacency=dense,
        features=features,
        labels=None,
        name=f"bench_{n}",
        metadata={"num_clusters": NUM_CLUSTERS},
    )


def epoch_runner(graph: AttributedGraph, sampler: Optional[str], batch_size: int, seed: int):
    """A zero-argument callable running exactly one R- epoch."""

    def run():
        model = build_model("gae", graph.num_features, NUM_CLUSTERS, seed=seed)
        config = RethinkConfig(
            epochs=1,
            pretrain_epochs=0,
            sampler=sampler,
            batch_size=batch_size if sampler else None,
            stop_at_convergence=False,
        )
        trainer = RethinkTrainer(model, config)
        trainer.fit(graph, pretrained=True)
        return trainer

    return run


def measure(fn, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall time plus peak traced memory of one run."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"seconds": best, "peak_bytes": int(peak)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small fast run for CI (N = 500, 2000, 8000)"
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None, help="override node counts"
    )
    parser.add_argument("--avg-degree", type=float, default=8.0)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--full-max", type=int, default=2000, help="largest N for the full-graph epoch"
    )
    parser.add_argument(
        "--min-scale",
        type=float,
        default=4.0,
        help="required ratio of largest cluster-sampled N to largest "
        "full-graph N within the full-graph peak-memory envelope "
        "(0 disables both scaling checks)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None, help="write timing JSON here")
    args = parser.parse_args(argv)

    sizes = args.sizes if args.sizes else ([500, 2000, 8000] if args.smoke else [500, 2000, 8000, 16000])
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 4)

    report = unified_report(
        "bench_minibatch",
        [],
        repeats=repeats,
        model="gae",
        feature_dim=FEATURE_DIM,
        num_clusters=NUM_CLUSTERS,
        avg_degree=args.avg_degree,
        batch_size=args.batch_size,
    )
    print(
        f"{'N':>7} {'|E|':>8} {'path':>8} {'epoch':>10} {'peak mem':>10} {'batches':>8}"
    )
    for n in sizes:
        graph = random_training_graph(n, args.avg_degree, args.seed)
        num_edges = int(graph.adjacency.sum()) // 2
        row: Dict = {"num_nodes": n, "num_edges": num_edges, "paths": {}}
        paths = {}
        if n <= args.full_max:
            paths["full"] = (None, 1)
        batches = -(-n // args.batch_size)
        paths["cluster"] = ("cluster", batches)
        for path_name, (sampler, num_batches) in paths.items():
            entry = measure(
                epoch_runner(graph, sampler, args.batch_size, args.seed), repeats
            )
            entry["num_batches"] = num_batches
            row["paths"][path_name] = entry
            print(
                f"{n:>7} {num_edges:>8} {path_name:>8} "
                f"{entry['seconds'] * 1e3:8.1f}ms "
                f"{entry['peak_bytes'] / 1e6:8.1f}MB {num_batches:>8}"
            )
        if "full" in row["paths"]:
            full, cluster = row["paths"]["full"], row["paths"]["cluster"]
            row["memory_ratio"] = full["peak_bytes"] / max(cluster["peak_bytes"], 1)
            row["time_ratio"] = full["seconds"] / max(cluster["seconds"], 1e-12)
        report["results"].append(row)

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.output}")

    failures = []
    if args.min_scale > 0:
        full_rows = [r for r in report["results"] if "full" in r["paths"]]
        cluster_rows = [r for r in report["results"] if "cluster" in r["paths"]]
        for row in full_rows:
            if row["num_nodes"] < 2000:
                continue
            if row["paths"]["cluster"]["peak_bytes"] >= row["paths"]["full"]["peak_bytes"]:
                failures.append(
                    f"cluster epoch does not beat full-graph epoch on peak memory "
                    f"at N={row['num_nodes']} "
                    f"({row['paths']['cluster']['peak_bytes']} >= "
                    f"{row['paths']['full']['peak_bytes']} bytes)"
                )
        if full_rows and cluster_rows:
            largest_full = max(full_rows, key=lambda r: r["num_nodes"])
            largest_cluster = max(cluster_rows, key=lambda r: r["num_nodes"])
            scale = largest_cluster["num_nodes"] / largest_full["num_nodes"]
            full_peak = largest_full["paths"]["full"]["peak_bytes"]
            cluster_peak = largest_cluster["paths"]["cluster"]["peak_bytes"]
            report["scale_factor"] = scale
            report["scaled_within_full_memory"] = cluster_peak <= full_peak
            print(
                f"scale-out: cluster epoch at N={largest_cluster['num_nodes']} "
                f"({scale:.1f}x the largest full-graph N={largest_full['num_nodes']}) "
                f"peaks at {cluster_peak / 1e6:.1f}MB vs full-graph "
                f"{full_peak / 1e6:.1f}MB"
            )
            if scale < args.min_scale:
                failures.append(
                    f"largest cluster-sampled N ({largest_cluster['num_nodes']}) is "
                    f"only {scale:.1f}x the largest full-graph N "
                    f"({largest_full['num_nodes']}); required {args.min_scale:.1f}x"
                )
            elif cluster_peak > full_peak:
                failures.append(
                    f"cluster epoch at N={largest_cluster['num_nodes']} peaks at "
                    f"{cluster_peak} bytes > full-graph epoch at "
                    f"N={largest_full['num_nodes']} ({full_peak} bytes)"
                )
            if args.output:
                with open(args.output, "w") as handle:
                    json.dump(report, handle, indent=2)
    if failures:
        print("MINIBATCH SCALING REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
