"""Chaos benchmark for the fault-tolerant sweep machinery (repro.resilience).

Runs a multi-seed sweep three ways and cross-checks them:

* **baseline** — serial, fault-free: the ground truth metrics.
* **chaos** — pooled, under a pinned ``REPRO_FAULTS`` plan (worker crashes,
  injected trial errors, torn artifact writes) with retries enabled.  The
  sweep must complete with zero quarantined trials and reproduce the
  baseline metrics bit for bit — the headline resilience invariant, CI
  fails otherwise.
* **resume** — the same sweep re-run with ``resume=True`` against the
  journal the chaos sweep left behind.  Trials whose journal entries
  survived are served without re-execution; entries torn by the
  ``store_corrupt`` fault are quarantined and re-run (faults are off by
  then).  Either way the results must again equal the baseline bitwise.

The run always writes the chaos sweep's failure report
(``--report PATH``, default ``bench-resilience-report.json``) so CI can
upload the post-mortem whether or not the invariant held.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke    # quick CI run
    PYTHONPATH=src python benchmarks/bench_resilience.py --report chaos.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from typing import Dict, List

from repro.env import FAULTS_ENV, env_override
from repro.observability.metrics import metrics_report as unified_report
from repro.parallel import run_sweep
from repro.resilience import RetryPolicy

#: the pinned chaos plan: crash probability stays low because a pool break
#: charges a ``pool_broken`` attempt to every in-flight trial, and the
#: retry budget is sized for that collateral (see repro.resilience).
FAULT_PLAN = "worker_crash:p=0.2:seed=5,trial_error:p=0.3:seed=2,store_corrupt:p=0.5:seed=9"

_POLICY = RetryPolicy(max_attempts=20, backoff_base=0.001)


def sweep_specs(seeds: List[int], pretrain_epochs: int, rethink_epochs: int):
    return [
        {
            "dataset": "brazil_air_sim",
            "model": "gae",
            "variant": "rethink",
            "seed": seed,
            "training": {
                "pretrain_epochs": pretrain_epochs,
                "rethink_epochs": rethink_epochs,
            },
            "rethink": {"overrides": {"update_omega_every": 2, "update_graph_every": 2}},
        }
        for seed in seeds
    ]


def stripped(results) -> List[Dict]:
    """Per-trial summaries with the wall-clock-dependent fields removed."""
    rows = []
    for result in results:
        summary = result.summary()
        summary.pop("runtime_seconds", None)
        rows.append(summary)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized run")
    parser.add_argument("--seeds", type=int, default=None, help="number of seeds")
    parser.add_argument("--jobs", type=int, default=2, help="pool width for the chaos sweep")
    parser.add_argument(
        "--report",
        default="bench-resilience-report.json",
        help="write the chaos sweep's failure report JSON here",
    )
    args = parser.parse_args(argv)

    num_seeds = args.seeds if args.seeds is not None else (3 if args.smoke else 5)
    epochs = (2, 2) if args.smoke else (6, 6)
    specs = sweep_specs(list(range(num_seeds)), *epochs)
    failures: List[str] = []
    store_dir = tempfile.mkdtemp(prefix="bench-resilience-")
    try:
        with env_override(FAULTS_ENV, None):
            start = time.perf_counter()
            baseline = run_sweep(specs, jobs=1)
            baseline_seconds = time.perf_counter() - start
        baseline_rows = stripped(baseline.results)

        with env_override(FAULTS_ENV, FAULT_PLAN):
            start = time.perf_counter()
            chaos = run_sweep(specs, jobs=args.jobs, store_dir=store_dir, policy=_POLICY)
            chaos_seconds = time.perf_counter() - start

        results = chaos.report()
        results["baseline_seconds"] = baseline_seconds
        results["chaos_seconds"] = chaos_seconds
        report = unified_report(
            "bench_resilience",
            results,
            fault_plan=FAULT_PLAN,
            seeds=num_seeds,
            jobs=args.jobs,
        )

        if not chaos.ok:
            failures.append(
                f"chaos sweep quarantined {len(chaos.failures)} trial(s) "
                f"despite retries — see the failure report"
            )
        elif stripped(chaos.results) != baseline_rows:
            failures.append("chaos sweep metrics differ from the fault-free baseline")

        with env_override(FAULTS_ENV, None):
            start = time.perf_counter()
            resumed = run_sweep(specs, jobs=1, store_dir=store_dir, resume=True)
            resume_seconds = time.perf_counter() - start
        results["resumed"] = resumed.resumed
        results["resume_seconds"] = resume_seconds
        # store_corrupt also tears journal blobs at write time; those entries
        # fail their checksum on resume and legitimately re-run, so demand
        # only that the journal served *something* — not a full replay.
        if chaos.ok and not 0 < resumed.resumed <= len(specs):
            failures.append(
                f"resume replayed {resumed.resumed}/{len(specs)} trials; expected "
                f"at least one to be served from the journal"
            )
        if resumed.ok and stripped(resumed.results) != baseline_rows:
            failures.append("resumed sweep metrics differ from the fault-free baseline")

        results["metrics_identical"] = not failures
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2)

        print(
            f"bench_resilience: {num_seeds} seeds, plan '{FAULT_PLAN}'\n"
            f"  baseline (serial, fault-free): {baseline_seconds:6.2f}s\n"
            f"  chaos (jobs={args.jobs}, retries): {chaos_seconds:6.2f}s, "
            f"{results['failed']} quarantined\n"
            f"  resume from journal:           {resume_seconds:6.2f}s, "
            f"{resumed.resumed}/{num_seeds} replayed\n"
            f"  report: {args.report}"
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    if failures:
        print("RESILIENCE REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("chaos == fault-free, bitwise; resume == uninterrupted, bitwise")
    return 0


if __name__ == "__main__":
    sys.exit(main())
