"""Figure 6 — Λ_FD traces during R-GMM-VGAE training on the Cora surrogate.

Λ_FD compares the reconstruction gradient against the operator-built graph
(R- configuration) and against the raw input graph (baseline configuration),
both measured against the oracle clustering-oriented graph.  The paper's
claim: the R- configuration attains higher Λ_FD (less Feature Drift) as
training progresses.
"""

import numpy as np

from _shared import cached_dynamics
from repro.experiments.tables import format_simple_table


def test_fig6_feature_drift_traces(benchmark):
    result = benchmark.pedantic(cached_dynamics, rounds=1, iterations=1)
    history = result["history"]
    rows = [
        {"epoch": epoch, "fd_rethink": fd_r, "fd_baseline": fd_b}
        for epoch, fd_r, fd_b in zip(
            history.evaluation_epochs, history.fd_rethought, history.fd_baseline
        )
    ]
    print()
    print(
        format_simple_table(
            rows,
            columns=["epoch", "fd_rethink", "fd_baseline"],
            title="Figure 6 — Lambda_FD during R-GMM-VGAE training on cora_sim",
        )
    )
    assert len(rows) > 0
    values = np.array([[row["fd_rethink"], row["fd_baseline"]] for row in rows])
    assert np.all((values >= -1.0) & (values <= 1.0))
    # The operator-built graph is closer to the oracle clustering-oriented
    # graph than the raw input graph, so its gradient aligns at least as well.
    assert values[:, 0].mean() >= values[:, 1].mean() - 0.05
    # In the second half of training the gap should be visible.
    second_half = values[len(values) // 2 :]
    assert second_half[:, 0].mean() >= second_half[:, 1].mean() - 0.05
