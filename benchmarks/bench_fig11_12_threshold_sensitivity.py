"""Figures 11-12 — sensitivity of R-GMM-VGAE and R-DGAE to the thresholds α1, α2.

The paper's claim: both models give reasonable results over a wide range of
(α1, α2) values.  We sweep a small grid and check the spread of accuracies.
"""

import numpy as np

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import threshold_sensitivity_study
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    return {
        "gmm_vgae": threshold_sensitivity_study(
            "gmm_vgae", graph, alpha1_values=(0.3, 0.6), alpha2_values=(0.15,),
            config=SWEEP_CONFIG,
        ),
        "dgae": threshold_sensitivity_study(
            "dgae", graph, alpha1_values=(0.2, 0.4), alpha2_values=(0.15,),
            config=SWEEP_CONFIG,
        ),
    }


def test_fig11_12_threshold_sensitivity(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for model, rows in results.items():
        print(
            format_simple_table(
                rows,
                columns=["alpha1", "alpha2", "acc", "nmi", "ari", "final_coverage"],
                title=f"Figures 11-12 — R-{model.upper()} threshold sensitivity on cora_sim",
            )
        )
    for rows in results.values():
        accuracies = np.array([row["acc"] for row in rows])
        # Reasonable results across the grid: accuracy spread stays bounded
        # and no configuration collapses to a trivial clustering.
        assert accuracies.min() > 0.3
        assert accuracies.max() - accuracies.min() < 0.35
