"""Warm-start artifact-store benchmark (repro.store).

Measures what the checkpointing subsystem buys and costs:

* **cold vs warm sweep** — a D / R-D ``run_model_pair`` sweep against an
  empty store (every seed pretrains and populates it) and then the same
  sweep against the warm store (every seed loads its pretraining snapshot).
  The warm sweep must report a cache hit for every trial and reproduce the
  cold sweep's metrics bit for bit — CI fails otherwise.
* **snapshot save/load latency** — ``Snapshot.capture`` → ``store.put``
  and ``store.get`` → ``snapshot.apply`` round trips per model, so the
  fixed cost of a checkpoint is a tracked number rather than folklore.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # quick CI run
    PYTHONPATH=src python benchmarks/bench_store.py --output t.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from typing import Dict, List

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_model_pair
from repro.models import build_model
from repro.observability.metrics import metrics_report as unified_report
from repro.parallel import load_dataset_cached
from repro.store import ArtifactStore, Snapshot, pretrain_cache_key


def sweep_wall_time(model: str, dataset: str, config: ExperimentConfig, store_dir: str):
    """One ``run_model_pair`` sweep: wall time, per-trial cache hits, metrics."""
    start = time.perf_counter()
    pair = run_model_pair(model, dataset, config, store_dir=store_dir)
    seconds = time.perf_counter() - start
    trials = pair.base_trials + pair.rethink_trials
    hits = [bool(t.extra.get("pretrain_cache", {}).get("hit")) for t in trials]
    metrics = [
        (t.variant, t.seed, t.report.accuracy, t.report.nmi, t.report.ari)
        for t in trials
    ]
    return {"seconds": seconds, "hits": hits, "num_trials": len(trials)}, metrics


def snapshot_latency(model_name: str, dataset: str, epochs: int, store_dir: str, repeats: int):
    """Best-of-``repeats`` save (capture+put) and load (get+apply) times."""
    graph = load_dataset_cached(dataset, seed=0)
    model = build_model(model_name, graph.num_features, graph.num_clusters, seed=0)
    model.pretrain(graph, epochs=epochs)
    store = ArtifactStore(store_dir)
    key = pretrain_cache_key(model, epochs, dataset={"name": dataset, "seed": 0, "options": {}})
    save_best = load_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        snapshot = Snapshot.capture(model, epoch=epochs, phase="pretrain")
        store.put(key, snapshot)
        save_best = min(save_best, time.perf_counter() - start)
        target = build_model(model_name, graph.num_features, graph.num_clusters, seed=0)
        start = time.perf_counter()
        store.get(key).apply(target, restore_rng=True)
        load_best = min(load_best, time.perf_counter() - start)
    return {"save_seconds": save_best, "load_seconds": load_best}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast run for CI")
    parser.add_argument("--dataset", default="cora_sim")
    parser.add_argument("--models", nargs="*", default=None)
    parser.add_argument("--trials", type=int, default=None, help="seeds per sweep")
    parser.add_argument("--pretrain-epochs", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", type=str, default=None, help="write timing JSON here")
    args = parser.parse_args(argv)

    models = args.models or (["gae", "dgae"] if args.smoke else ["gae", "vgae", "dgae", "gmm_vgae"])
    trials = args.trials if args.trials is not None else (2 if args.smoke else 5)
    pretrain_epochs = args.pretrain_epochs if args.pretrain_epochs is not None else (
        6 if args.smoke else 40
    )
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 5)
    config = ExperimentConfig(
        num_trials=trials,
        pretrain_epochs=pretrain_epochs,
        clustering_epochs=max(2, pretrain_epochs // 3),
        rethink_epochs=max(3, pretrain_epochs // 2),
    )

    report: Dict = unified_report(
        "bench_store",
        [],
        repeats=repeats,
        dataset=args.dataset,
        trials=trials,
        pretrain_epochs=pretrain_epochs,
    )
    failures: List[str] = []
    print(f"{'model':>10} {'cold':>10} {'warm':>10} {'speedup':>8} {'hits':>10}")
    for model in models:
        store_dir = tempfile.mkdtemp(prefix="bench-store-")
        try:
            cold, cold_metrics = sweep_wall_time(model, args.dataset, config, store_dir)
            warm, warm_metrics = sweep_wall_time(model, args.dataset, config, store_dir)
            latency = snapshot_latency(
                model, args.dataset, pretrain_epochs, store_dir, repeats
            )
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
        if any(cold["hits"]):
            failures.append(f"{model}: cold sweep hit the empty store {cold['hits']}")
        if not all(warm["hits"]):
            failures.append(
                f"{model}: warm sweep did not skip pretraining for every trial "
                f"(hits: {warm['hits']})"
            )
        if warm_metrics != cold_metrics:
            failures.append(f"{model}: warm sweep metrics differ from the cold sweep")
        row = {
            "model": model,
            "cold": cold,
            "warm": warm,
            "speedup": cold["seconds"] / max(warm["seconds"], 1e-12),
            "snapshot": latency,
            "metrics_identical": warm_metrics == cold_metrics,
        }
        report["results"].append(row)
        print(
            f"{model:>10} {cold['seconds']:9.2f}s {warm['seconds']:9.2f}s "
            f"{row['speedup']:7.2f}x {sum(warm['hits'])}/{warm['num_trials']:>3} "
            f"(save {latency['save_seconds'] * 1e3:.1f}ms, "
            f"load {latency['load_seconds'] * 1e3:.1f}ms)"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.output}")

    if failures:
        print("WARM-START REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
