"""Table 5 — execution time of (GMM-VGAE, R-GMM-VGAE) and (DGAE, R-DGAE).

The paper's claim: the operators Ξ and Υ do not cause any significant
run-time overhead.  We time both variants on the Cora and Citeseer
surrogates and assert the R- variant stays within a small constant factor.
"""

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import runtime_comparison
from repro.experiments.tables import format_simple_table


def _run():
    rows = []
    for model in ("gmm_vgae", "dgae"):
        for dataset in ("cora_sim",):
            timings = runtime_comparison(
                model, cached_graph(dataset), config=SWEEP_CONFIG, num_runs=2
            )
            rows.append(
                {
                    "method": model.upper(),
                    "dataset": dataset,
                    "best": timings["base"]["best"],
                    "mean": timings["base"]["mean"],
                    "variance": timings["base"]["variance"],
                }
            )
            rows.append(
                {
                    "method": f"R-{model.upper()}",
                    "dataset": dataset,
                    "best": timings["rethink"]["best"],
                    "mean": timings["rethink"]["mean"],
                    "variance": timings["rethink"]["variance"],
                }
            )
    return rows


def test_table5_runtime(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_simple_table(
            rows,
            columns=["method", "dataset", "best", "mean", "variance"],
            title="Table 5 — execution time (seconds)",
        )
    )
    # Shape check: the R- variant never costs more than 3x its base model.
    by_key = {(row["method"], row["dataset"]): row["mean"] for row in rows}
    for (method, dataset), mean in by_key.items():
        if method.startswith("R-"):
            base_mean = by_key[(method[2:], dataset)]
            assert mean <= 3.0 * base_mean + 1.0
