"""Benchmark-suite configuration: make the shared cache module importable."""

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))
