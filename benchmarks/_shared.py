"""Shared, cached computations for the benchmark suite.

Several paper tables and figures are views over the same training runs
(Table 1 = best of the trials, Table 2 = mean ± std of the *same* trials;
Figures 4, 5, 6 and 9 are different traces of the *same* tracked R-GMM-VGAE
run).  This module trains each required artefact once per benchmark session
and caches it so the full suite stays laptop-friendly.

The training budgets (``BENCH_CONFIG``) are intentionally smaller than the
paper's 200+200 epochs; EXPERIMENTS.md records the resulting numbers next to
the paper's and discusses where the shapes agree.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.datasets import load_dataset
from repro.env import BENCH_JOBS_ENV, env_jobs
from repro.datasets.registry import DATASETS
from repro.experiments import ExperimentConfig, learning_dynamics_study, run_model_pair
from repro.experiments.runner import PairResult
from repro.models.registry import MODELS

# Every bench script writes its timing JSON through this envelope so the
# regression tooling sees one schema ("repro-metrics/1") regardless of which
# benchmark produced the artifact.  Re-exported here so the scripts need only
# their local ``_shared`` import.
from repro.observability.metrics import metrics_report as unified_report

__all__ = [
    "BENCH_CONFIG",
    "SWEEP_CONFIG",
    "CITATION_DATASETS",
    "AIR_TRAFFIC_DATASETS",
    "ALL_MODELS",
    "SECOND_GROUP_MODELS",
    "air_traffic_rows",
    "bench_jobs",
    "cached_dynamics",
    "cached_graph",
    "cached_pair",
    "citation_rows",
    "unified_report",
]


def bench_jobs():
    """Process-pool width for the multi-seed table benchmarks.

    Controlled by the ``REPRO_BENCH_JOBS`` environment variable: unset or
    ``1`` keeps the historical serial behaviour, an integer fans the
    (model, dataset, seed) trials of each pair out over that many worker
    processes, and ``auto`` uses every core.  Per-seed results are bitwise
    identical either way (see :mod:`repro.parallel`).
    """
    return env_jobs(BENCH_JOBS_ENV, 1)

#: budget used by every benchmark (see EXPERIMENTS.md for the rationale).
BENCH_CONFIG = ExperimentConfig(
    pretrain_epochs=35,
    clustering_epochs=25,
    rethink_epochs=35,
    num_trials=2,
    base_seed=0,
)

#: a smaller budget for the sweep-style figures (robustness, sensitivity).
SWEEP_CONFIG = ExperimentConfig(
    pretrain_epochs=50,
    clustering_epochs=35,
    rethink_epochs=50,
    num_trials=1,
    base_seed=0,
)

# Discovered from the unified registries rather than hard-coded.
CITATION_DATASETS = tuple(DATASETS.names(family="citation"))
AIR_TRAFFIC_DATASETS = tuple(DATASETS.names(family="air_traffic"))
ALL_MODELS = tuple(MODELS.names())
SECOND_GROUP_MODELS = tuple(MODELS.names(group="second"))


@lru_cache(maxsize=None)
def cached_pair(model_name: str, dataset_name: str) -> PairResult:
    """Train (and cache) the D / R-D pair for a model-dataset combination.

    Multi-seed trials fan out across ``REPRO_BENCH_JOBS`` worker processes,
    which parallelises the Table 2/4/17 style mean ± std benchmarks.
    """
    return run_model_pair(
        model_name, dataset_name, config=BENCH_CONFIG, jobs=bench_jobs()
    )


@lru_cache(maxsize=None)
def cached_graph(dataset_name: str, seed: int = 0):
    """Load (and cache) a benchmark dataset."""
    return load_dataset(dataset_name, seed=seed)


@lru_cache(maxsize=None)
def cached_dynamics(model_name: str = "gmm_vgae", dataset_name: str = "cora_sim") -> Dict:
    """One fully-tracked R- training run, shared by the Figure 4/5/6/9 benches."""
    graph = cached_graph(dataset_name)
    config = ExperimentConfig(
        pretrain_epochs=90, clustering_epochs=40, rethink_epochs=70, num_trials=1
    )
    return learning_dynamics_study(
        model_name, graph, config=config, snapshot_every=20
    )


def citation_rows(models: Tuple[str, ...] = ALL_MODELS, variant_best: bool = True) -> Dict:
    """Rows of Table 1 (best) or Table 2 (mean ± std) for the citation datasets."""
    rows: Dict[str, Dict[str, Dict]] = {}
    for model in models:
        base_row: Dict[str, Dict] = {}
        rethink_row: Dict[str, Dict] = {}
        for dataset in CITATION_DATASETS:
            pair = cached_pair(model, dataset)
            if variant_best:
                base_row[dataset] = pair.best("base").as_dict()
                rethink_row[dataset] = pair.best("rethink").as_dict()
            else:
                base_row[dataset] = pair.mean_std("base")
                rethink_row[dataset] = pair.mean_std("rethink")
        rows[model.upper()] = base_row
        rows[f"R-{model.upper()}"] = rethink_row
    return rows


def air_traffic_rows(variant_best: bool = True) -> Dict:
    """Rows of Table 3 (best) or Table 4 (mean ± std) for the air-traffic datasets."""
    rows: Dict[str, Dict[str, Dict]] = {}
    for model in SECOND_GROUP_MODELS:
        base_row: Dict[str, Dict] = {}
        rethink_row: Dict[str, Dict] = {}
        for dataset in AIR_TRAFFIC_DATASETS:
            pair = cached_pair(model, dataset)
            if variant_best:
                base_row[dataset] = pair.best("base").as_dict()
                rethink_row[dataset] = pair.best("rethink").as_dict()
            else:
                base_row[dataset] = pair.mean_std("base")
                rethink_row[dataset] = pair.mean_std("rethink")
        rows[model.upper()] = base_row
        rows[f"R-{model.upper()}"] = rethink_row
    return rows
