"""Incremental-cache benchmark for the repro-lint static analyser.

Measures what the content-hash cache of :mod:`repro.analysis.engine` buys on
the repository's own source tree:

* **cold vs warm lint** — one full run against an empty cache (every file is
  parsed, fact-extracted and rule-checked) and the same run again against the
  populated cache (every file is served from its cached per-file record; only
  the cheap project pass re-executes).  The warm run must reproduce the cold
  run's diagnostics exactly and be at least ``--required-speedup`` (default
  5x) faster — CI fails otherwise.  This is the ``lint_walltime`` row of the
  timing JSON.
* **parallel cold parse** — the cold run repeated with ``jobs=2`` workers
  (dogfooding ``repro.parallel``), asserting diagnostics stay identical to
  the serial pass.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py            # full run
    PYTHONPATH=src python benchmarks/bench_lint.py --smoke    # quick CI run
    PYTHONPATH=src python benchmarks/bench_lint.py --output t.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import analyze_paths
from repro.observability.metrics import metrics_report as unified_report


def timed_lint(
    targets: List[str], cache_path: Optional[str], jobs: int = 1
) -> Tuple[float, "object"]:
    """One ``analyze_paths`` run: (wall seconds, LintReport)."""
    start = time.perf_counter()
    report = analyze_paths(targets, jobs=jobs, cache_path=cache_path)
    return time.perf_counter() - start, report


def diagnostics_key(report) -> List[Tuple]:
    """Order-independent identity of a run's findings."""
    return sorted(
        (d.path, d.line, d.column, d.code, d.message) for d in report.diagnostics
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast run for CI")
    parser.add_argument(
        "--targets", nargs="*", default=None, help="paths to lint (default: repo tree)"
    )
    parser.add_argument("--repeats", type=int, default=None, help="best-of repeats")
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=5.0,
        help="minimum warm-cache speedup over the cold run",
    )
    parser.add_argument("--output", type=str, default=None, help="write timing JSON here")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.targets:
        targets = args.targets
    elif args.smoke:
        targets = [os.path.join(repo_root, "src")]
    else:
        targets = [os.path.join(repo_root, d) for d in ("src", "benchmarks", "examples")]
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 3)

    report: Dict = unified_report(
        "bench_lint",
        [],
        repeats=repeats,
        targets=[os.path.relpath(t, repo_root) for t in targets],
        required_speedup=args.required_speedup,
    )
    failures: List[str] = []

    cold_best = warm_best = float("inf")
    cold_report = warm_report = None
    cache_dir = tempfile.mkdtemp(prefix="bench-lint-")
    try:
        for repeat in range(repeats):
            cache_path = os.path.join(cache_dir, f"cache-{repeat}.json")
            cold_seconds, cold_report = timed_lint(targets, cache_path)
            warm_seconds, warm_report = timed_lint(targets, cache_path)
            cold_best = min(cold_best, cold_seconds)
            warm_best = min(warm_best, warm_seconds)
            if cold_report.files_cached:
                failures.append(
                    f"repeat {repeat}: cold run hit the empty cache "
                    f"({cold_report.files_cached} files)"
                )
            if warm_report.files_reparsed:
                failures.append(
                    f"repeat {repeat}: warm run re-parsed "
                    f"{warm_report.files_reparsed} files"
                )
            if diagnostics_key(warm_report) != diagnostics_key(cold_report):
                failures.append(f"repeat {repeat}: warm diagnostics differ from cold")

        # Parallel cold parse must agree with the serial pass bit for bit.
        parallel_seconds, parallel_report = timed_lint(targets, cache_path=None, jobs=2)
        if diagnostics_key(parallel_report) != diagnostics_key(cold_report):
            failures.append("jobs=2 diagnostics differ from the serial run")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    speedup = cold_best / max(warm_best, 1e-12)
    if speedup < args.required_speedup:
        failures.append(
            f"warm cache speedup {speedup:.2f}x is below the required "
            f"{args.required_speedup:.1f}x"
        )

    row = {
        "name": "lint_walltime",
        "files": cold_report.files_checked,
        "cold_seconds": cold_best,
        "warm_seconds": warm_best,
        "speedup": speedup,
        "required_speedup": args.required_speedup,
        "warm_files_cached": warm_report.files_cached,
        "parallel_cold_seconds": parallel_seconds,
        "diagnostics": len(cold_report.diagnostics),
        "summary": cold_report.summary(),
    }
    report["results"].append(row)
    print(
        f"lint_walltime: {cold_report.files_checked} files, "
        f"cold {cold_best:.3f}s, warm {warm_best:.3f}s ({speedup:.1f}x, "
        f"required {args.required_speedup:.1f}x), jobs=2 cold {parallel_seconds:.3f}s"
    )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.output}")

    if failures:
        print("LINT-CACHE REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
