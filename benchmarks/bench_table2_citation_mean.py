"""Table 2 — mean ± std of D vs R-D on the citation surrogates (same trials as Table 1)."""

import numpy as np

from _shared import ALL_MODELS, CITATION_DATASETS, citation_rows
from repro.experiments import format_mean_std_table


def test_table2_citation_mean_std(benchmark):
    rows = benchmark.pedantic(
        citation_rows, kwargs={"variant_best": False}, rounds=1, iterations=1
    )
    print()
    print(
        format_mean_std_table(
            rows, CITATION_DATASETS, title="Table 2 — mean ± std ACC/NMI/ARI (%)"
        )
    )
    # Standard deviations must be sane (trials differ only by seed).
    for model_rows in rows.values():
        for dataset_metrics in model_rows.values():
            for stats in dataset_metrics.values():
                assert 0.0 <= stats["std"] <= 0.5
    # Average improvement shape, as in Table 1 but on means.
    base_mean = np.mean(
        [rows[m.upper()][d]["acc"]["mean"] for m in ALL_MODELS for d in CITATION_DATASETS]
    )
    rethink_mean = np.mean(
        [rows[f"R-{m.upper()}"][d]["acc"]["mean"] for m in ALL_MODELS for d in CITATION_DATASETS]
    )
    assert rethink_mean >= base_mean - 0.02
