"""Table 8 — ablation of the confidence thresholds α1 / α2 of the operator Ξ."""

from _shared import SWEEP_CONFIG, cached_graph
from repro.experiments import threshold_ablation
from repro.experiments.tables import format_simple_table


def _run():
    graph = cached_graph("cora_sim")
    return {
        model: threshold_ablation(model, graph, config=SWEEP_CONFIG)
        for model in ("gmm_vgae", "dgae")
    }


def test_table8_threshold_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for model, rows in results.items():
        print(
            format_simple_table(
                rows,
                columns=["case", "acc", "nmi", "ari"],
                title=f"Table 8 — R-{model.upper()} on cora_sim",
            )
        )
    for rows in results.values():
        by_case = {row["case"]: row for row in rows}
        assert set(by_case) == {
            "ablation of alpha2",
            "ablation of alpha1",
            "ablation of both",
            "no ablation",
        }
        # Keeping both criteria should not be clearly worse than dropping both.
        assert by_case["no ablation"]["acc"] >= by_case["ablation of both"]["acc"] - 0.05
