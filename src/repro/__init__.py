"""repro — a full reproduction of "Rethinking Graph Auto-Encoder Models for
Attributed Graph Clustering" (R-GAE).

Public API overview
-------------------

* :mod:`repro.api` — the unified pipeline facade: the fluent
  :class:`~repro.api.Pipeline`, serializable :class:`~repro.api.RunSpec`
  documents, the generic :class:`~repro.api.Registry` protocol behind
  every registry, and the training callbacks.
* :mod:`repro.datasets` — synthetic surrogates of the paper's benchmark
  datasets (``load_dataset``, the ``DATASETS`` registry).
* :mod:`repro.models` — the six GAE clustering models (``build_model``,
  the ``MODELS`` registry).
* :mod:`repro.core` — the paper's operators Ξ and Υ, the
  :class:`~repro.core.rethink.RethinkTrainer` that turns any model D into
  R-D, and the Feature-Randomness / Feature-Drift diagnostics.
* :mod:`repro.metrics` — ACC / NMI / ARI evaluation.
* :mod:`repro.experiments` — runners that regenerate every table and figure.
* :mod:`repro.store` — versioned checkpointing and the warm-start artifact
  store (:class:`~repro.store.Snapshot`, :class:`~repro.store.ArtifactStore`).

Quickstart
----------

>>> from repro.api import Pipeline
>>> result = (
...     Pipeline()
...     .dataset("cora_sim")
...     .model("gae")
...     .rethink(alpha1=0.5)
...     .seed(0)
...     .training(pretrain_epochs=50, rethink_epochs=50)
...     .run()
... )
>>> print(result.report)

The same trial as declarative data (see also the ``repro-run`` command):

>>> import json
>>> spec = result.spec.to_dict()
>>> rerun = Pipeline.from_spec(spec).run()

The lower-level building blocks remain available: ``load_dataset`` /
``build_model`` / :class:`~repro.core.rethink.RethinkTrainer` compose
exactly as the Pipeline does internally.
"""

__version__ = "2.0.0"

from repro.datasets import load_dataset, available_datasets
from repro.models import build_model, available_models
from repro.core import RethinkTrainer, RethinkConfig
from repro.metrics import evaluate_clustering
from repro.api import Registry

# Pipeline and RunSpec are re-exported lazily (below) so `import repro`
# does not defeat repro.api's deferred loading of the heavier modules.
_LAZY_EXPORTS = {
    "Pipeline": ("repro.api.pipeline", "Pipeline"),
    "RunSpec": ("repro.api.spec", "RunSpec"),
    "run_trials": ("repro.parallel", "run_trials"),
    "run_seeded": ("repro.parallel", "run_seeded"),
    "parallel_map": ("repro.parallel", "parallel_map"),
    "ArtifactStore": ("repro.store", "ArtifactStore"),
    "Snapshot": ("repro.store", "Snapshot"),
}

__all__ = [
    "__version__",
    "load_dataset",
    "available_datasets",
    "build_model",
    "available_models",
    "RethinkTrainer",
    "RethinkConfig",
    "evaluate_clustering",
    "Pipeline",
    "Registry",
    "RunSpec",
    "run_trials",
    "run_seeded",
    "parallel_map",
    "ArtifactStore",
    "Snapshot",
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
