"""repro — a full reproduction of "Rethinking Graph Auto-Encoder Models for
Attributed Graph Clustering" (R-GAE).

Public API overview
-------------------

* :mod:`repro.datasets` — synthetic surrogates of the paper's benchmark
  datasets (``load_dataset``).
* :mod:`repro.models` — the six GAE clustering models (``build_model``).
* :mod:`repro.core` — the paper's operators Ξ and Υ, the
  :class:`~repro.core.rethink.RethinkTrainer` that turns any model D into
  R-D, and the Feature-Randomness / Feature-Drift diagnostics.
* :mod:`repro.metrics` — ACC / NMI / ARI evaluation.
* :mod:`repro.experiments` — runners that regenerate every table and figure.

Quickstart
----------

>>> from repro.datasets import load_dataset
>>> from repro.models import build_model
>>> from repro.core import RethinkTrainer, RethinkConfig
>>> from repro.metrics import evaluate_clustering
>>> graph = load_dataset("cora_sim")
>>> model = build_model("gae", graph.num_features, graph.num_clusters, seed=0)
>>> trainer = RethinkTrainer(model, RethinkConfig(alpha1=0.5, epochs=50, pretrain_epochs=50))
>>> history = trainer.fit(graph)
>>> print(history.final_report)
"""

__version__ = "1.0.0"

from repro.datasets import load_dataset, available_datasets
from repro.models import build_model, available_models
from repro.core import RethinkTrainer, RethinkConfig
from repro.metrics import evaluate_clustering

__all__ = [
    "__version__",
    "load_dataset",
    "available_datasets",
    "build_model",
    "available_models",
    "RethinkTrainer",
    "RethinkConfig",
    "evaluate_clustering",
]
