"""AST rule engine behind ``repro-lint``.

The engine is deliberately small: a rule is a function from a
:class:`ModuleContext` (parsed tree + path + derived module name) to
:class:`RuleViolation` instances, registered on the same generic
:class:`~repro.api.registry.Registry` protocol the model/dataset/callback
registries use.  The engine owns everything rule authors should not have
to re-implement:

* file discovery and parsing,
* module-name derivation (``src/repro/core/x.py`` → ``repro.core.x``),
  so rules can scope themselves to library packages,
* ``# repro: noqa[REPxxx]`` suppression handling, including the policy
  checks (a suppression must name its codes, carry a justification, and
  actually suppress something — REP000 otherwise),
* severity ordering, report assembly and JSON serialisation.

Rules come in two scopes.  *File-scope* rules (REP001–REP008, in
:mod:`repro.analysis.rules`) see one :class:`ModuleContext` at a time.
*Project-scope* rules (the REP1xx family, in
:mod:`repro.analysis.dataflow`) run once per lint invocation against a
:class:`~repro.analysis.graph.ProjectGraph` built from every analysed
file, which lets them reason about reachability across modules — see
:mod:`repro.analysis.engine` for the orchestration (incremental cache,
``--jobs`` fan-out, baselines).  Importing this module's rule catalogue
(via :func:`_resolve_select`) registers both families.  See
CONTRIBUTING.md for how to add a rule of either scope.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.api.registry import Registry
from repro.errors import LintConfigError

__all__ = [
    "Diagnostic",
    "RuleViolation",
    "ModuleContext",
    "LintReport",
    "RULES",
    "rule",
    "project_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Meta-diagnostic code for suppression-policy violations.
NOQA_POLICY_CODE = "REP000"
#: Diagnostic code reported for files that fail to parse.
PARSE_ERROR_CODE = "REP900"

_SEVERITY_RANK = {"error": 0, "warning": 1}

#: Matches ``repro: noqa[<codes>] <justification>`` trailing comments.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([^\]]*)\]\s*(.*)$")
_CODE_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Diagnostic:
    """One finding, addressable as ``path:line:column``."""

    path: str
    line: int
    column: int
    code: str
    severity: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} [{self.severity}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class RuleViolation:
    """What a rule yields: a location plus the finding text."""

    line: int
    column: int
    message: str


@dataclass
class _Suppression:
    line: int
    codes: Tuple[str, ...]
    justification: str
    used: Set[str] = field(default_factory=set)


class ModuleContext:
    """Everything a rule needs to know about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module, module: str) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: Dotted module name (``repro.core.losses``) or ``""`` for scripts
        #: outside a package root (benchmarks, examples).
        self.module = module
        self.lines = source.splitlines()

    @property
    def in_library(self) -> bool:
        """Whether the file is library code (the ``repro`` package)."""
        return self.module == "repro" or self.module.startswith("repro.")

    def module_is(self, *prefixes: str) -> bool:
        """Whether the module falls under any of the dotted ``prefixes``."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


#: The rule registry — the same protocol as the model/dataset registries,
#: so ``RULES.describe()`` / metadata queries work unchanged.
RULES: Registry = Registry("lint rule")

Checker = Callable[[ModuleContext], Iterable[RuleViolation]]


def _register_rule(code: str, summary: str, severity: str, scope: str) -> Callable[[Checker], Checker]:
    if not _CODE_RE.match(code):
        raise LintConfigError(f"rule codes look like REP123, got {code!r}")
    if severity not in _SEVERITY_RANK:
        raise LintConfigError(f"severity must be one of {sorted(_SEVERITY_RANK)}, got {severity!r}")

    def decorator(checker: Checker) -> Checker:
        RULES.add(code, checker, summary=summary, severity=severity, scope=scope)
        return checker

    return decorator


def rule(code: str, *, summary: str, severity: str = "error") -> Callable[[Checker], Checker]:
    """Register a file-scope checker under a ``REPxxx`` code.

    >>> @rule("REP042", summary="no frobnication", severity="warning")
    ... def check_frob(ctx: ModuleContext):
    ...     yield RuleViolation(1, 0, "frobnicated")
    """
    return _register_rule(code, summary, severity, scope="file")


def project_rule(code: str, *, summary: str, severity: str = "error") -> Callable[[Checker], Checker]:
    """Register a project-scope (inter-procedural) checker.

    The checker receives a :class:`~repro.analysis.graph.ProjectContext`
    (not a :class:`ModuleContext`) and yields
    :class:`~repro.analysis.graph.ProjectViolation` instances carrying
    their own file path.  Project rules run once per lint invocation, after
    every file has been summarised — see CONTRIBUTING.md.
    """
    return _register_rule(code, summary, severity, scope="project")


def rule_scope(code: str) -> str:
    """The registered scope of a rule: ``"file"`` or ``"project"``."""
    return str(RULES.entry(code).metadata.get("scope", "file"))


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    The segment after the last ``src`` directory is treated as the package
    root (``src/repro/nn/tensor.py`` → ``repro.nn.tensor``); files outside
    a ``src`` tree (benchmark and example scripts) map to ``""`` so
    library-scoped rules skip them.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if "src" not in parts:
        return ""
    rel = parts[len(parts) - 1 - parts[::-1].index("src"):][1:]
    if not rel:
        return ""
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][: -len(".py")]
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


def _parse_suppressions(lines: Sequence[str], path: str) -> Tuple[Dict[int, _Suppression], List[Diagnostic]]:
    """Collect per-line noqa suppressions and their policy violations."""
    suppressions: Dict[int, _Suppression] = {}
    policy: List[Diagnostic] = []
    for lineno, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw_codes = [code.strip() for code in match.group(1).split(",") if code.strip()]
        justification = match.group(2).strip().lstrip("—-# ").strip()
        if not raw_codes or any(not _CODE_RE.match(code) for code in raw_codes):
            # Not a (valid) suppression — docstrings describing the syntax
            # land here, and a typo'd noqa fails open: the violation it
            # meant to silence is still reported, so nothing hides.
            continue
        if not justification:
            policy.append(
                Diagnostic(
                    path, lineno, 0, NOQA_POLICY_CODE, "error",
                    f"noqa[{','.join(raw_codes)}] must carry a justification "
                    "comment explaining why the waiver is sound",
                )
            )
        suppressions[lineno] = _Suppression(lineno, tuple(raw_codes), justification)
    return suppressions, policy


def _resolve_select(select: Optional[Sequence[str]]) -> List[str]:
    import repro.analysis.rules  # noqa: F401 — registers the REP0xx file rules
    import repro.analysis.dataflow  # noqa: F401 — registers the REP1xx project rules

    if select is None:
        return RULES.names()
    select = list(select)
    if not select:
        raise LintConfigError(
            "empty rule selection: --select needs at least one rule code "
            "(e.g. --select REP001,REP102); run --list-rules for the catalogue"
        )
    malformed = [code for code in select if not _CODE_RE.match(code)]
    if malformed:
        raise LintConfigError(
            f"malformed rule code(s): {', '.join(repr(c) for c in malformed)}; "
            f"rule codes look like REP123 (run --list-rules for the catalogue)"
        )
    unknown = [code for code in select if code not in RULES]
    if unknown:
        raise LintConfigError(
            f"unknown lint rule(s): {', '.join(unknown)}; available: {', '.join(RULES.names())}"
        )
    return select


class FileAnalysis:
    """Everything one parse of a file yields, before select/suppression.

    The incremental cache of :mod:`repro.analysis.engine` persists exactly
    this: the raw output of *every* file-scope rule (so a later run with a
    different ``--select`` can be served from cache), the suppression
    table, and the inter-procedural facts extracted for the project pass.
    """

    def __init__(
        self,
        path: str,
        module: str,
        outputs: List[Tuple[str, str, int, int, str]],
        suppressions: Dict[int, _Suppression],
        policy: List[Diagnostic],
        facts: Optional[Dict[str, object]],
    ) -> None:
        self.path = path
        self.module = module
        #: ``(code, severity, line, column, message)`` per rule finding.
        self.outputs = outputs
        self.suppressions = suppressions
        #: Non-suppressable policy diagnostics (REP000 justification, REP900).
        self.policy = policy
        #: :class:`~repro.analysis.dataflow.ModuleFacts` as a JSON dict.
        self.facts = facts


def analyze_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    extract_facts: bool = True,
) -> FileAnalysis:
    """Run every file-scope rule (and fact extraction) over one source text."""
    _resolve_select(None)  # ensure the rule catalogue is registered
    resolved_module = module_name_for(path) if module is None else module
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        policy = [
            Diagnostic(
                path, exc.lineno or 1, exc.offset or 0, PARSE_ERROR_CODE,
                "error", f"file does not parse: {exc.msg}",
            )
        ]
        return FileAnalysis(path, resolved_module, [], {}, policy, None)
    ctx = ModuleContext(path, source, tree, resolved_module)
    suppressions, policy = _parse_suppressions(ctx.lines, path)

    outputs: List[Tuple[str, str, int, int, str]] = []
    for code in RULES.names():
        entry = RULES.entry(code)
        if entry.metadata.get("scope", "file") != "file":
            continue
        severity = str(entry.metadata["severity"])
        for violation in entry.factory(ctx):
            outputs.append((code, severity, violation.line, violation.column, violation.message))

    facts: Optional[Dict[str, object]] = None
    if extract_facts:
        from repro.analysis.dataflow import extract_module_facts

        facts = extract_module_facts(ctx).to_dict()
    return FileAnalysis(path, resolved_module, outputs, suppressions, policy, facts)


def assemble_file_diagnostics(
    analysis: FileAnalysis,
    codes: Sequence[str],
) -> List[Diagnostic]:
    """Select + suppress the raw per-file outputs; marks suppression usage."""
    wanted = set(codes)
    diagnostics = list(analysis.policy)
    for code, severity, line, column, message in analysis.outputs:
        if code not in wanted:
            continue
        suppression = analysis.suppressions.get(line)
        if suppression is not None and code in suppression.codes:
            suppression.used.add(code)
            continue
        diagnostics.append(Diagnostic(analysis.path, line, column, code, severity, message))
    return diagnostics


def unused_suppression_diagnostics(analysis: FileAnalysis) -> List[Diagnostic]:
    """REP000 warnings for waivers that suppressed nothing.

    Only meaningful when every rule ran (otherwise "unused" is an artifact
    of the ``--select`` filter) and after *both* the file-scope and the
    project-scope passes have had their chance to mark usage.
    """
    diagnostics = []
    for suppression in analysis.suppressions.values():
        unused = [code for code in suppression.codes if code not in suppression.used]
        if unused:
            diagnostics.append(
                Diagnostic(
                    analysis.path, suppression.line, 0, NOQA_POLICY_CODE, "warning",
                    f"noqa[{','.join(unused)}] suppresses nothing on this line; drop it",
                )
            )
    return diagnostics


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint source text directly (the entry point the self-tests use).

    This is the *file-scope* view: the REP1xx project rules need the whole
    tree and only run through :func:`lint_paths` /
    :func:`repro.analysis.engine.analyze_paths`.
    """
    codes = _resolve_select(select)
    analysis = analyze_source(source, path=path, module=module, extract_facts=False)
    diagnostics = assemble_file_diagnostics(analysis, codes)
    if select is None:
        diagnostics.extend(unused_suppression_diagnostics(analysis))
    diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.code))
    return diagnostics


def lint_file(path: str, select: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    """Lint one file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for target in paths:
        if os.path.isfile(target):
            yield target
            continue
        if not os.path.isdir(target):
            raise LintConfigError(f"no such file or directory: {target!r}")
        for root, dirs, files in os.walk(target):
            dirs[:] = sorted(d for d in dirs if not d.startswith(".") and d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


@dataclass
class LintReport:
    """The result of a lint run over a set of paths."""

    diagnostics: List[Diagnostic]
    files_checked: int
    #: Files re-parsed this run vs. served from the incremental cache.
    files_reparsed: int = 0
    files_cached: int = 0
    #: Findings hidden by the ``--baseline`` file (gradual adoption).
    baselined: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "warning")

    @property
    def exit_code(self) -> int:
        """0 when no error-severity diagnostics remain, 1 otherwise."""
        return 1 if self.error_count else 0

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "files_reparsed": self.files_reparsed,
            "files_cached": self.files_cached,
            "baselined": self.baselined,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "summary": self.summary(),
            "rules": RULES.describe(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def lint_paths(paths: Sequence[str], select: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every Python file under ``paths`` and return the full report.

    Runs both passes: the per-file rules and — when selected (they are by
    default) — the inter-procedural REP1xx rules over the project graph
    built from the same files.  This is a thin facade over
    :func:`repro.analysis.engine.analyze_paths`, which adds the incremental
    cache, ``--jobs`` fan-out and baseline handling for CLI/CI use.
    """
    from repro.analysis.engine import analyze_paths

    return analyze_paths(paths, select=select)
