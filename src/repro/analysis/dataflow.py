"""Per-file fact extraction and the inter-procedural REP1xx rule family.

The file-scope rules (REP001–REP008) can only see one module at a time,
so the bugs that actually threaten the bitwise any-``--jobs`` guarantee —
a helper three calls deep that draws from the global RNG, a wrapper that
smuggles a lambda into the process pool, module state mutated from inside
a worker — are invisible to them.  This module extracts, per file, the
facts a whole-program analysis needs (:class:`ModuleFacts`, cheap to
cache as JSON), and implements the project-scope rules that consume the
:class:`~repro.analysis.graph.ProjectGraph` built from those facts:

========  ============================================================
REP101    transitive picklability: no lambda / closure / local class
          flowing into ``parallel_map``/``supervised_map`` *through a
          wrapper function* (REP004 only sees the submission site)
REP102    static race detector: no module-level state written by
          worker-reachable code — pool workers and, later, async
          request handlers would race on it (or silently diverge,
          since pool workers never share writes back)
REP103    RNG provenance: no global-RNG draw, OS-entropy generator or
          constant-seeded generator anywhere in the worker-executed
          set; randomness must flow in through parameters (upgrades
          REP001 from per-file syntax to reachability)
REP104    env-read-after-fanout: no ``repro.env`` accessor call (or raw
          ``os.environ`` read) inside worker-reachable code — config
          must be resolved before dispatch so a sweep cannot observe a
          mid-flight environment change
========  ============================================================

Every violation carries a *witness path* (``root → … → function``)
showing how the flagged code becomes worker-reachable, and is waivable
per line with ``# repro: noqa[REPxxx] <justification>`` like any other
rule.  The analysis is conservative name resolution, not type inference:
attribute calls on unknown receivers fall back to every project method
of that name, so the worker-executed set over-approximates — see
CONTRIBUTING.md for what that means when fixing or waiving a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.analysis.linter import ModuleContext, project_rule

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.analysis.graph import ProjectContext

__all__ = [
    "CallArg",
    "CallSite",
    "FunctionFacts",
    "ModuleFacts",
    "extract_module_facts",
    "check_transitive_picklability",
    "check_worker_state_races",
    "check_rng_provenance",
    "check_env_read_after_fanout",
]

#: entry points whose callable argument crosses the process boundary.
POOL_BOUNDARY_NAMES = ("parallel_map", "supervised_map")

#: np.random attributes that construct explicitly seeded generators.
_RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}
#: np.random attributes that read state without drawing from it.
_RNG_STATE_READS = {"get_state"}

#: repro.env accessor functions (REP104 flags calls in worker-reachable code).
_ENV_ACCESSORS = {"env_raw", "env_str", "env_int", "env_float", "env_flag", "env_jobs"}

#: container methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "add",
    "update",
    "clear",
    "pop",
    "popitem",
    "remove",
    "discard",
    "extend",
    "insert",
    "setdefault",
    "move_to_end",
    "appendleft",
    "popleft",
}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.rand``).

    Attribute chains rooted at something that is not a plain name (a call
    result, a subscript) keep their attribute tail behind a ``?`` marker —
    ``Pipeline.from_spec(d).run()`` yields ``?.run`` — so the project graph
    can still do conservative method-name resolution on the tail.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


@dataclass
class CallArg:
    """Shape of one argument at a call site (what REP101 needs to see)."""

    kind: str  #: "lambda" | "param" | "localdef" | "name" | "attr" | "other"
    value: str  #: the name / dotted path ("" for lambda/other)
    keyword: str  #: keyword name, "" for positional
    position: int  #: positional index, -1 for keyword
    line: int
    column: int

    def to_list(self) -> List[Any]:
        return [self.kind, self.value, self.keyword, self.position, self.line, self.column]

    @staticmethod
    def from_list(raw: List[Any]) -> "CallArg":
        return CallArg(str(raw[0]), str(raw[1]), str(raw[2]), int(raw[3]), int(raw[4]), int(raw[5]))


@dataclass
class CallSite:
    """One call expression inside a function body."""

    dotted: str
    line: int
    column: int
    args: List[CallArg] = field(default_factory=list)

    def arg_at(self, position: int, keyword: str) -> Optional[CallArg]:
        """The argument bound to parameter ``position``/``keyword``, if any."""
        for arg in self.args:
            if arg.position == position or (keyword and arg.keyword == keyword):
                return arg
        return None

    def to_list(self) -> List[Any]:
        return [self.dotted, self.line, self.column, [a.to_list() for a in self.args]]

    @staticmethod
    def from_list(raw: List[Any]) -> "CallSite":
        return CallSite(
            str(raw[0]), int(raw[1]), int(raw[2]),
            [CallArg.from_list(a) for a in raw[3]],
        )


@dataclass
class Write:
    """A write whose target is not function-local state."""

    base: str  #: the root name written through (``_CACHE`` of ``_CACHE[k] = v``)
    kind: str  #: "rebind" | "subscript" | "attribute" | "call:<method>"
    line: int
    column: int

    def to_list(self) -> List[Any]:
        return [self.base, self.kind, self.line, self.column]

    @staticmethod
    def from_list(raw: List[Any]) -> "Write":
        return Write(str(raw[0]), str(raw[1]), int(raw[2]), int(raw[3]))


@dataclass
class FunctionFacts:
    """Everything the project pass needs to know about one function."""

    name: str  #: module-relative qualname (``Pipeline.run``, ``f.<locals>.g``)
    line: int
    column: int
    kind: str  #: "function" | "method" | "lambda"
    nested: bool  #: defined inside another function (unpicklable closure)
    class_name: str  #: innermost enclosing class ("" outside classes)
    params: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)  #: function-local imports
    instances: Dict[str, str] = field(default_factory=dict)  #: local var -> constructor dotted
    calls: List[CallSite] = field(default_factory=list)
    refs: List[str] = field(default_factory=list)  #: names loaded as values
    writes: List[Write] = field(default_factory=list)
    rng: List[List[Any]] = field(default_factory=list)  #: [kind, dotted, line, col]
    env: List[List[Any]] = field(default_factory=list)  #: [dotted, line, col]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "kind": self.kind,
            "nested": self.nested,
            "class_name": self.class_name,
            "params": list(self.params),
            "imports": dict(self.imports),
            "instances": dict(self.instances),
            "calls": [c.to_list() for c in self.calls],
            "refs": list(self.refs),
            "writes": [w.to_list() for w in self.writes],
            "rng": [list(r) for r in self.rng],
            "env": [list(e) for e in self.env],
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "FunctionFacts":
        return FunctionFacts(
            name=str(raw["name"]),
            line=int(raw["line"]),
            column=int(raw["column"]),
            kind=str(raw["kind"]),
            nested=bool(raw["nested"]),
            class_name=str(raw["class_name"]),
            params=[str(p) for p in raw["params"]],
            imports={str(k): str(v) for k, v in raw["imports"].items()},
            instances={str(k): str(v) for k, v in raw.get("instances", {}).items()},
            calls=[CallSite.from_list(c) for c in raw["calls"]],
            refs=[str(r) for r in raw["refs"]],
            writes=[Write.from_list(w) for w in raw["writes"]],
            rng=[list(r) for r in raw["rng"]],
            env=[list(e) for e in raw["env"]],
        )


@dataclass
class ModuleFacts:
    """The inter-procedural summary of one file (JSON-cacheable)."""

    path: str
    module: str  #: dotted module name, "" for scripts outside a src root
    is_package: bool  #: whether the file is an ``__init__.py``
    imports: Dict[str, str] = field(default_factory=dict)  #: alias -> dotted target
    toplevel: List[str] = field(default_factory=list)  #: module-level bound names
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Identity in the project graph: module name, or path for scripts."""
        return self.module or self.path

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "imports": dict(self.imports),
            "toplevel": list(self.toplevel),
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: dict(v) for k, v in self.classes.items()},
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "ModuleFacts":
        return ModuleFacts(
            path=str(raw["path"]),
            module=str(raw["module"]),
            is_package=bool(raw["is_package"]),
            imports={str(k): str(v) for k, v in raw["imports"].items()},
            toplevel=[str(n) for n in raw["toplevel"]],
            functions={
                str(k): FunctionFacts.from_dict(f) for k, f in raw["functions"].items()
            },
            classes={str(k): dict(v) for k, v in raw["classes"].items()},
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
class _FunctionState:
    """Mutable per-function scratch state while walking its body."""

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts
        self.locals: Set[str] = set(facts.params)
        self.global_decls: Set[str] = set()
        self.nested_defs: Set[str] = set()
        self.raw_writes: List[Write] = []
        self.refs: Set[str] = set()


class _FactsVisitor(ast.NodeVisitor):
    """One pass over a module tree collecting :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._functions: List[_FunctionState] = []
        self._classes: List[str] = []

    # -- scope bookkeeping ---------------------------------------------
    def _qualname(self, name: str) -> str:
        parts: List[str] = []
        for state in self._functions:
            parts.extend([state.facts.name.rsplit(".", 1)[-1]] if not parts else [])
        prefix = ""
        if self._functions:
            prefix = self._functions[-1].facts.name + ".<locals>."
        elif self._classes:
            prefix = ".".join(self._classes) + "."
        return prefix + name

    def _bind(self, name: str) -> None:
        """Record a name binding in the innermost scope."""
        if self._functions:
            state = self._functions[-1]
            if name not in state.global_decls:
                state.locals.add(name)
        elif not self._classes:
            if name not in self.facts.toplevel:
                self.facts.toplevel.append(name)

    def _enter_function(self, node: ast.AST, name: str, kind: str) -> _FunctionState:
        nested = bool(self._functions)
        if self._functions:
            self._functions[-1].nested_defs.add(name)
        facts = FunctionFacts(
            name=self._qualname(name),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            kind=kind,
            nested=nested,
            class_name=self._classes[-1] if self._classes else "",
        )
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (
                list(getattr(args, "posonlyargs", []))
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                facts.params.append(arg.arg)
            if args.vararg is not None:
                facts.params.append(args.vararg.arg)
            if args.kwarg is not None:
                facts.params.append(args.kwarg.arg)
        state = _FunctionState(facts)
        self._functions.append(state)
        return state

    def _exit_function(self, state: _FunctionState) -> None:
        self._functions.pop()
        facts = state.facts
        facts.refs = sorted(state.refs)
        # A write is "global" when its base name is not bound inside the
        # function — or was explicitly declared ``global``.
        for write in state.raw_writes:
            if write.base in state.global_decls or write.base not in state.locals:
                facts.writes.append(write)
        self.facts.functions[facts.name] = facts

    # -- definitions ----------------------------------------------------
    def _visit_function_def(self, node: Any, kind: str) -> None:
        self._bind(node.name)
        for decorator in node.decorator_list:
            self._record_expr(decorator)
        state = self._enter_function(node, node.name, kind)
        for child in node.body:
            self.visit(child)
        self._exit_function(state)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        kind = "method" if self._classes and not self._functions else "function"
        self._visit_function_def(node, kind)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        kind = "method" if self._classes and not self._functions else "function"
        self._visit_function_def(node, kind)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        name = f"<lambda:{node.lineno}:{node.col_offset}>"
        state = self._enter_function(node, name, "lambda")
        self.visit(node.body)
        self._exit_function(state)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._bind(node.name)
        qualified = ".".join(self._classes + [node.name])
        if not self._functions:
            self.facts.classes[qualified] = {
                "methods": [],
                "bases": [_dotted(base) for base in node.bases],
                "line": node.lineno,
            }
        for decorator in node.decorator_list:
            self._record_expr(decorator)
        for base in node.bases:
            self._record_expr(base)
        self._classes.append(node.name)
        for child in node.body:
            self.visit(child)
        self._classes.pop()
        if not self._functions and qualified in self.facts.classes:
            entry = self.facts.classes[qualified]
            entry["methods"] = sorted(
                fn.rsplit(".", 1)[-1]
                for fn in self.facts.functions
                if fn.rpartition(".")[0] == qualified
            )

    # -- imports --------------------------------------------------------
    def _import_target(self) -> Dict[str, str]:
        return (
            self._functions[-1].facts.imports if self._functions else self.facts.imports
        )

    def visit_Import(self, node: ast.Import) -> None:
        table = self._import_target()
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            table[local] = alias.name if alias.asname else alias.name.split(".")[0]
            self._bind(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            package = self.facts.module
            if package and not self.facts.is_package:
                package = package.rpartition(".")[0]
            for _ in range(node.level - 1):
                package = package.rpartition(".")[0]
            base = f"{package}.{base}" if base else package
        table = self._import_target()
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            table[local] = f"{base}.{alias.name}" if base else alias.name
            self._bind(local)

    # -- bindings and writes -------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        if self._functions:
            self._functions[-1].global_decls.update(node.names)

    def _record_target(self, target: ast.AST, kind_hint: str = "") -> None:
        if isinstance(target, ast.Name):
            if self._functions:
                state = self._functions[-1]
                if target.id in state.global_decls:
                    state.raw_writes.append(
                        Write(target.id, "rebind", target.lineno, target.col_offset)
                    )
                else:
                    state.locals.add(target.id)
            else:
                self._bind(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, kind_hint)
        elif isinstance(target, ast.Starred):
            self._record_target(target.value, kind_hint)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            kind = "subscript" if isinstance(target, ast.Subscript) else "attribute"
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and self._functions:
                self._functions[-1].raw_writes.append(
                    Write(base.id, kind, target.lineno, target.col_offset)
                )
            self._record_expr(target.value)
            if isinstance(target, ast.Subscript):
                self._record_expr(target.slice)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_expr(node.value)
        # Track ``x = SomeCallable(...)`` so the project graph can resolve
        # later ``x.method(...)`` calls when SomeCallable is a project class.
        if (
            self._functions
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            constructor = _dotted(node.value.func)
            if constructor and not constructor.startswith("?"):
                self._functions[-1].facts.instances[node.targets[0].id] = constructor
        for target in node.targets:
            self._record_target(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_expr(node.value)
        if isinstance(node.target, ast.Name) and self._functions:
            state = self._functions[-1]
            if node.target.id in state.global_decls or node.target.id not in state.locals:
                state.raw_writes.append(
                    Write(node.target.id, "rebind", node.target.lineno, node.target.col_offset)
                )
            return
        self._record_target(node.target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_expr(node.value)
        self._record_target(node.target)

    def visit_For(self, node: ast.For) -> None:
        self._record_expr(node.iter)
        self._record_target(node.target)
        for child in node.body + node.orelse:
            self.visit(child)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit_For(node)  # type: ignore[arg-type]

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self._record_expr(item.context_expr)
            if item.optional_vars is not None:
                self._record_target(item.optional_vars)
        for child in node.body:
            self.visit(child)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self.visit_With(node)  # type: ignore[arg-type]

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._bind(node.name)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._record_expr(node.value)
        self._record_target(node.target)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._record_target(node.target)
        self._record_expr(node.iter)
        for condition in node.ifs:
            self._record_expr(condition)

    # -- expressions ----------------------------------------------------
    def _classify_arg(
        self, node: ast.AST, keyword: str, position: int
    ) -> CallArg:
        line = getattr(node, "lineno", 0)
        column = getattr(node, "col_offset", 0)
        if isinstance(node, ast.Lambda):
            return CallArg("lambda", "", keyword, position, line, column)
        if isinstance(node, ast.Name):
            if self._functions:
                state = self._functions[-1]
                if node.id in state.facts.params:
                    return CallArg("param", node.id, keyword, position, line, column)
                if any(node.id in s.nested_defs for s in self._functions):
                    return CallArg("localdef", node.id, keyword, position, line, column)
            return CallArg("name", node.id, keyword, position, line, column)
        if isinstance(node, ast.Attribute):
            return CallArg("attr", _dotted(node), keyword, position, line, column)
        return CallArg("other", "", keyword, position, line, column)

    def _classify_rng(self, node: ast.Call, dotted: str) -> Optional[Tuple[str, str]]:
        argless = not node.args and not node.keywords
        constant = bool(node.args) and all(
            isinstance(a, ast.Constant) for a in node.args
        ) and not node.keywords
        if dotted.startswith(("np.random.", "numpy.random.")):
            attr = dotted.rsplit(".", 1)[1]
            if attr in _RNG_STATE_READS:
                return None
            if attr not in _RNG_CONSTRUCTORS:
                return ("global_draw", dotted)
            if attr in {"default_rng", "SeedSequence"}:
                if argless:
                    return ("argless", dotted)
                if constant:
                    return ("constant_seed", dotted)
            return None
        if dotted in {"default_rng", "SeedSequence"}:
            if argless:
                return ("argless", dotted)
            if constant:
                return ("constant_seed", dotted)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if self._functions:
            state = self._functions[-1]
            args: List[CallArg] = []
            for position, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    continue
                args.append(self._classify_arg(arg, "", position))
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                args.append(self._classify_arg(kw.value, kw.arg, -1))
            state.facts.calls.append(
                CallSite(dotted, node.lineno, node.col_offset, args)
            )
            rng = self._classify_rng(node, dotted)
            if rng is not None:
                state.facts.rng.append([rng[0], rng[1], node.lineno, node.col_offset])
            tail = dotted.rsplit(".", 1)[-1]
            if tail in _ENV_ACCESSORS or dotted in {"os.environ.get", "environ.get", "os.getenv"}:
                state.facts.env.append([dotted, node.lineno, node.col_offset])
            if tail in _MUTATOR_METHODS and "." in dotted:
                base = dotted.split(".", 1)[0]
                if base not in {"self", "cls", "?"}:
                    state.raw_writes.append(
                        Write(base, f"call:{tail}", node.lineno, node.col_offset)
                    )
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``os.environ[...]`` loads count as environment reads too.
        if isinstance(node.ctx, ast.Load) and self._functions:
            if _dotted(node.value) in {"os.environ", "environ"}:
                self._functions[-1].facts.env.append(
                    ["os.environ[]", node.lineno, node.col_offset]
                )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and self._functions:
            self._functions[-1].refs.add(node.id)

    def _record_expr(self, node: ast.AST) -> None:
        self.visit(node)


def extract_module_facts(ctx: ModuleContext) -> ModuleFacts:
    """Extract the inter-procedural summary of one parsed file."""
    facts = ModuleFacts(
        path=ctx.path,
        module=ctx.module,
        is_package=ctx.path.endswith("__init__.py"),
    )
    visitor = _FactsVisitor(facts)
    for node in ctx.tree.body:
        visitor.visit(node)
    return facts


# ----------------------------------------------------------------------
# the REP1xx project rules
# ----------------------------------------------------------------------
def _witness(project: "ProjectContext", symbol: str) -> str:
    return project.witness(symbol)


@project_rule(
    "REP101",
    summary="no lambda/closure/local class flowing into the process pool "
    "through a wrapper call (transitive picklability; upgrades REP004)",
)
def check_transitive_picklability(project: "ProjectContext") -> Iterator[Any]:
    """``ProcessPoolExecutor`` pickles the submitted callable.  REP004
    catches a lambda at the ``parallel_map(...)`` site itself; this rule
    follows *forwarding parameters* — any function whose parameter is
    eventually passed as the pool work unit — and flags unpicklable
    callables entering those wrappers anywhere in the project."""
    from repro.analysis.graph import ProjectViolation

    for submission in project.graph.forwarded_unpicklables():
        what = "lambda" if submission.arg_kind == "lambda" else f"{submission.arg_value!r}"
        detail = (
            "is defined inside an enclosing function"
            if submission.arg_kind == "localdef"
            else "cannot be pickled"
        )
        yield ProjectViolation(
            submission.path,
            submission.line,
            submission.column,
            f"{what} passed to {submission.forwarder!r} {detail}; the "
            f"argument is forwarded to {submission.boundary}() and must "
            f"pickle into pool workers — move it to module level",
        )


@project_rule(
    "REP102",
    summary="no module-level state written by worker-reachable code "
    "(static race detector for the pool and the future async server)",
)
def check_worker_state_races(project: "ProjectContext") -> Iterator[Any]:
    """Module-level writes inside the worker-executed set are how
    determinism silently dies: pool workers each mutate their own copy
    (results diverge from the serial run), and the planned async serving
    layer would turn the same write into a data race.  State must live in
    objects passed through parameters — or carry a justified waiver
    explaining why per-process mutation is sound (e.g. a per-worker
    cache that never leaks across trials)."""
    from repro.analysis.graph import ProjectViolation

    for symbol in sorted(project.worker_set):
        mod, fn = project.function(symbol)
        seen: Set[str] = set()
        for write in fn.writes:
            target = project.graph.classify_global_write(mod, fn, write)
            if target is None or write.base in seen:
                continue
            seen.add(write.base)
            yield ProjectViolation(
                mod.path,
                write.line,
                write.column,
                f"{target} is mutated by worker-reachable "
                f"{fn.name!r} ({project.witness(symbol)}); module state "
                f"written inside pool workers breaks the bitwise any-jobs "
                f"guarantee — thread the state through parameters",
            )


@project_rule(
    "REP103",
    summary="no global-RNG draw or unseeded/constant-seeded generator in "
    "worker-reachable code (RNG provenance; upgrades REP001)",
)
def check_rng_provenance(project: "ProjectContext") -> Iterator[Any]:
    """Worker-executed code must receive its randomness as a seeded
    ``np.random.Generator`` parameter.  A global-stream draw three calls
    below the submitted function breaks bitwise determinism exactly like
    one at the submission site — and a *constant*-seeded generator is as
    bad in the other direction: every trial in the sweep would share one
    stream."""
    from repro.analysis.graph import ProjectViolation

    messages = {
        "global_draw": "draws from the process-global RNG stream",
        "argless": "seeds a generator from OS entropy",
        "constant_seed": "seeds a generator with a hard-coded constant",
    }
    for symbol in sorted(project.worker_set):
        mod, fn = project.function(symbol)
        for kind, dotted, line, column in (tuple(r) for r in fn.rng):
            yield ProjectViolation(
                mod.path,
                int(line),
                int(column),
                f"{dotted}() {messages[str(kind)]} inside worker-reachable "
                f"{fn.name!r} ({project.witness(symbol)}); pass a seeded "
                f"np.random.Generator in through the parameters instead",
            )


@project_rule(
    "REP104",
    summary="no environment read (repro.env accessor or os.environ) inside "
    "worker-reachable code — resolve configuration before dispatch",
)
def check_env_read_after_fanout(project: "ProjectContext") -> Iterator[Any]:
    """Configuration read inside a pool worker is resolved *after* fan-out:
    two workers racing a mid-sweep environment change can observe
    different values, and the future async server would re-read config on
    every request.  Resolve env-derived settings in the parent and pass
    them down — or waive the read with a justification for why per-worker
    resolution is the design (workers inherit the parent environment)."""
    from repro.analysis.graph import ProjectViolation

    for symbol in sorted(project.worker_set):
        mod, fn = project.function(symbol)
        if mod.module == "repro.env":
            continue
        for dotted, line, column in (tuple(e) for e in fn.env):
            yield ProjectViolation(
                mod.path,
                int(line),
                int(column),
                f"{dotted}(...) reads the environment inside worker-reachable "
                f"{fn.name!r} ({project.witness(symbol)}); resolve the value "
                f"before dispatch and pass it through parameters",
            )
