"""Baseline files for gradual adoption of new lint rules.

A baseline is a JSON file of *accepted* findings, fingerprinted as
``path::code::line``.  ``repro-lint --write-baseline`` records the
current findings; subsequent runs with ``--baseline`` drop any finding
whose fingerprint appears in the file, so a new rule can land with the
existing debt frozen while every *new* violation still fails the build.
Fingerprints are line-based on purpose: editing near an accepted finding
moves it off its recorded line and resurfaces it, which is the desired
pressure toward actually fixing the debt.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.linter import Diagnostic
from repro.errors import LintConfigError

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]

#: Schema marker for baseline files.
BASELINE_SCHEMA = "repro-lint-baseline/1"


def fingerprint(diagnostic: Diagnostic) -> str:
    """Stable identity of a finding: ``path::code::line``."""
    return f"{diagnostic.path}::{diagnostic.code}::{diagnostic.line}"


def load_baseline(path: str) -> Set[str]:
    """Read the accepted-finding fingerprints from a baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise LintConfigError(f"baseline file not found: {path!r}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise LintConfigError(f"unreadable baseline file {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise LintConfigError(
            f"{path!r} is not a repro-lint baseline (expected schema "
            f"{BASELINE_SCHEMA!r}); regenerate it with --write-baseline"
        )
    entries = payload.get("accepted", [])
    if not isinstance(entries, list):
        raise LintConfigError(f"baseline file {path!r} has a malformed 'accepted' list")
    return {str(entry) for entry in entries}


def write_baseline(path: str, diagnostics: Sequence[Diagnostic]) -> int:
    """Record every current finding as accepted; returns the entry count."""
    accepted = sorted({fingerprint(d) for d in diagnostics})
    payload: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "accepted": accepted,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(accepted)


def apply_baseline(
    diagnostics: Sequence[Diagnostic], accepted: Set[str]
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (kept, baselined-count)."""
    kept = [d for d in diagnostics if fingerprint(d) not in accepted]
    return kept, len(diagnostics) - len(kept)
