"""The project lint rules (REP001–REP006).

Each rule guards an invariant this reproduction actually depends on —
they are the contracts earlier PRs established, turned into checks:

========  ============================================================
REP001    no unseeded randomness in library code (``--jobs`` bitwise
          determinism; repro.parallel)
REP002    no dense materialization on the CSR hot paths
          (repro.core / repro.nn / repro.minibatch; PR-2 contract)
REP003    every ``backward()`` paired with ``release_graph()`` /
          ``no_grad()`` in the same scope (the PR-4 leak class)
REP004    no lambdas / closures handed to the process pool
          (pool workers pickle their work units)
REP005    every environment read goes through :mod:`repro.env`
          (one documented accessor; REPRO_* is public surface)
REP006    no bare ``assert`` / ``raise Exception`` in library code
          (typed :mod:`repro.errors` hierarchy only)
REP007    no swallowed exceptions in library code: bare ``except:`` and
          ``except Exception: pass`` hide the failures the resilience
          layer is built to surface (repro.resilience)
REP008    no ``print()`` in library code (CLI modules exempt); library
          output goes through the ``repro`` logger
          (:mod:`repro.observability.log`)
========  ============================================================

Violations carry ``file:line`` positions and are suppressable per line
with ``# repro: noqa[REPxxx] <justification>`` — see CONTRIBUTING.md for
the waiver policy.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.linter import ModuleContext, RuleViolation, rule

__all__ = [
    "check_unseeded_randomness",
    "check_dense_materialization",
    "check_backward_release",
    "check_pool_picklability",
    "check_env_accessor",
    "check_typed_errors",
    "check_exception_swallowing",
    "check_no_print",
]

#: dotted prefixes of the CSR-only packages guarded by REP002.
_SPARSE_HOT_PACKAGES = ("repro.core", "repro.nn", "repro.minibatch")

#: np.random attributes that construct explicitly-seeded generators (fine)
#: rather than drawing from the process-global stream (not fine).
_RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}

#: np.random attributes that *read* generator state without drawing from
#: it (the RNG-isolation sanitizer fingerprints state this way).
_RNG_STATE_READS = {"get_state"}

#: entry points of repro.parallel whose callable/iterable arguments cross
#: a process boundary and therefore must pickle.
_POOL_ENTRY_POINTS = {"parallel_map", "run_trials", "run_seeded"}

#: modules whose *job* is writing to stdout/stderr — exempt from REP008.
_CLI_MODULES = ("repro.api.cli", "repro.analysis.cli")


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``np.random.rand``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _violation(node: ast.AST, message: str) -> RuleViolation:
    return RuleViolation(getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message)


# ----------------------------------------------------------------------
# REP001 — unseeded randomness
# ----------------------------------------------------------------------
@rule(
    "REP001",
    summary="no unseeded randomness in library code (np.random.* module "
    "calls, argless default_rng())",
)
def check_unseeded_randomness(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """Global-stream draws make results depend on call order across the
    whole process, which breaks the bitwise any-``jobs`` guarantee of
    :mod:`repro.parallel`.  Randomness must flow from generators seeded
    with explicit values."""
    if not ctx.in_library:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        argless = not node.args and not node.keywords
        if dotted.startswith(("np.random.", "numpy.random.")):
            attr = dotted.rsplit(".", 1)[1]
            if attr in _RNG_STATE_READS:
                continue
            if attr not in _RNG_CONSTRUCTORS:
                yield _violation(
                    node,
                    f"{dotted}() draws from the process-global RNG; use an "
                    f"explicitly seeded np.random.default_rng(seed)",
                )
            elif attr in {"default_rng", "SeedSequence"} and argless:
                yield _violation(
                    node,
                    f"argless {dotted}() seeds from OS entropy; pass an "
                    f"explicit seed so trials stay reproducible",
                )
        elif isinstance(node.func, ast.Name) and node.func.id == "default_rng" and argless:
            yield _violation(
                node,
                "argless default_rng() seeds from OS entropy; pass an "
                "explicit seed so trials stay reproducible",
            )


# ----------------------------------------------------------------------
# REP002 — dense materialization on CSR hot paths
# ----------------------------------------------------------------------
@rule(
    "REP002",
    summary="no dense adjacency materialization inside repro.core / "
    "repro.nn / repro.minibatch without a justified waiver",
)
def check_dense_materialization(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """The PR-2 contract: the propagation/loss hot paths stay O(|E|·d).
    ``to_dense()`` and ``np.asarray(adjacency)`` turn them back into
    O(N²); intentional dense branches (small-graph dispatch, per-batch
    blocks) must carry a justified waiver."""
    if not ctx.module_is(*_SPARSE_HOT_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr == "to_dense":
            yield _violation(
                node,
                "to_dense() materializes an O(N^2) matrix on a CSR hot "
                "path; keep the sparse form or add a justified waiver",
            )
            continue
        dotted = _dotted(node.func)
        if dotted in {"np.asarray", "numpy.asarray", "np.array", "numpy.array", "np.asfortranarray"}:
            if node.args:
                try:
                    target = ast.unparse(node.args[0])
                except Exception:  # pragma: no cover - unparse is total on parsed trees
                    target = ""
                if "adj" in target.lower():
                    yield _violation(
                        node,
                        f"{dotted}({target}, ...) densifies an adjacency on "
                        f"a CSR hot path; dispatch on the sparse type or "
                        f"add a justified waiver",
                    )


# ----------------------------------------------------------------------
# REP003 — backward() paired with release_graph()/no_grad()
# ----------------------------------------------------------------------
def _scope_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (async) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _direct_body(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``scope`` excluding nested function/class bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@rule(
    "REP003",
    summary="every backward() call site pairs with release_graph() or "
    "no_grad() in the same scope",
)
def check_backward_release(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """A backward graph is a web of reference cycles; without an explicit
    ``release_graph()`` each step's intermediates survive until the cyclic
    GC runs (the PR-4 leak class, measured at ~4x peak memory)."""
    for scope in _scope_nodes(ctx.tree):
        backward_calls: List[ast.Call] = []
        releases = False
        for node in _direct_body(scope):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute):
                    if node.func.attr == "backward":
                        backward_calls.append(node)
                    elif node.func.attr == "release_graph":
                        releases = True
                elif isinstance(node.func, ast.Name) and node.func.id == "release_graph":
                    releases = True
            elif isinstance(node, ast.withitem):
                target = node.context_expr
                if isinstance(target, ast.Call):
                    target = target.func
                if _dotted(target).split(".")[-1] == "no_grad":
                    releases = True
        if not releases:
            for call in backward_calls:
                yield _violation(
                    call,
                    "backward() without release_graph() in the same scope "
                    "leaks the step graph until the cyclic GC runs; release "
                    "the loss root after optimizer.step()",
                )


# ----------------------------------------------------------------------
# REP004 — pool picklability
# ----------------------------------------------------------------------
@rule(
    "REP004",
    summary="no lambdas or closures passed to parallel_map / run_trials "
    "(pool workers pickle their work units)",
)
def check_pool_picklability(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """``ProcessPoolExecutor`` pickles the callable; lambdas and functions
    defined inside other functions fail at submit time — but only when
    ``jobs > 1``, which is exactly how the bug escapes serial test runs."""

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.violations: List[RuleViolation] = []
            self._nested_defs: List[Set[str]] = []

        def _visit_function(self, node: ast.AST, name: str = "") -> None:
            if self._nested_defs and name:
                self._nested_defs[-1].add(name)
            self._nested_defs.append(set())
            self.generic_visit(node)
            self._nested_defs.pop()

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._visit_function(node, node.name)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._visit_function(node, node.name)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            self._visit_function(node)

        def visit_Call(self, node: ast.Call) -> None:
            target = _dotted(node.func).split(".")[-1]
            if target in _POOL_ENTRY_POINTS:
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                for argument in arguments:
                    if isinstance(argument, ast.Lambda):
                        self.violations.append(
                            _violation(
                                argument,
                                f"lambda passed to {target}() cannot be "
                                f"pickled into pool workers; use a "
                                f"module-level function",
                            )
                        )
                    elif isinstance(argument, ast.Name) and any(
                        argument.id in defs for defs in self._nested_defs
                    ):
                        self.violations.append(
                            _violation(
                                argument,
                                f"{argument.id!r} is defined inside an "
                                f"enclosing function; closures passed to "
                                f"{target}() cannot be pickled into pool "
                                f"workers — move it to module level",
                            )
                        )
            self.generic_visit(node)

    visitor = Visitor()
    visitor.visit(ctx.tree)
    yield from visitor.violations


# ----------------------------------------------------------------------
# REP005 — environment reads through repro.env
# ----------------------------------------------------------------------
@rule(
    "REP005",
    summary="all environment reads (REPRO_*) routed through the repro.env "
    "accessor",
)
def check_env_accessor(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """:mod:`repro.env` is the one place that reads ``os.environ``: it
    validates types, registers every supported ``REPRO_*`` variable, and
    generates the documentation table.  Reads anywhere else reintroduce
    undocumented configuration surface."""
    if ctx.module_is("repro.env"):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in {"os.environ.get", "environ.get", "os.getenv"}:
                yield _violation(
                    node,
                    f"{dotted}(...) bypasses the repro.env accessor; use "
                    f"repro.env.env_str/env_int/env_flag (and register the "
                    f"variable) instead",
                )
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if _dotted(node.value) in {"os.environ", "environ"}:
                yield _violation(
                    node,
                    "os.environ[...] bypasses the repro.env accessor; use "
                    "repro.env.env_str/env_int/env_flag (and register the "
                    "variable) instead",
                )


# ----------------------------------------------------------------------
# REP006 — typed errors only
# ----------------------------------------------------------------------
@rule(
    "REP006",
    summary="no bare assert / raise Exception in library code (typed "
    "repro.errors only)",
)
def check_typed_errors(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """Asserts vanish under ``python -O`` and generic ``Exception`` gives
    callers nothing to catch; library invariants raise the typed
    :mod:`repro.errors` hierarchy instead."""
    if not ctx.in_library:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assert):
            yield _violation(
                node,
                "bare assert in library code vanishes under python -O; "
                "raise a typed repro.errors exception "
                "(e.g. InternalInvariantError) instead",
            )
        elif isinstance(node, ast.Raise) and node.exc is not None:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in {"Exception", "BaseException"}:
                yield _violation(
                    node,
                    f"raise {target.id} gives callers nothing to catch; "
                    f"raise a typed repro.errors exception instead",
                )


# ----------------------------------------------------------------------
# REP007 — no swallowed exceptions
# ----------------------------------------------------------------------
def _is_silent_body(body: List[ast.stmt]) -> bool:
    """Whether a handler body does nothing: only ``pass`` / ``...``."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _broad_handler_names(handler: ast.ExceptHandler) -> List[str]:
    """Catch-all exception names a handler matches (Exception/BaseException)."""
    kinds = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return [
        kind.id
        for kind in kinds
        if isinstance(kind, ast.Name) and kind.id in {"Exception", "BaseException"}
    ]


@rule(
    "REP007",
    summary="no swallowed exceptions in library code (bare except:, "
    "except Exception: pass)",
)
def check_exception_swallowing(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """The resilience layer's guarantees rest on failures *propagating*:
    the supervised pool retries what it can see, the store quarantines
    what raises, the failure report records what happened.  A bare
    ``except:`` (which also eats ``KeyboardInterrupt``) or a catch-all
    handler that only ``pass``-es deletes that signal.  Catch-alls that
    actually handle — log, degrade, re-raise, record — are fine."""
    if not ctx.in_library:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield _violation(
                node,
                "bare except: catches everything including "
                "KeyboardInterrupt; name the exception types (or catch "
                "Exception and handle it)",
            )
            continue
        broad = _broad_handler_names(node)
        if broad and _is_silent_body(node.body):
            yield _violation(
                node,
                f"except {broad[0]}: pass silently swallows every failure; "
                f"handle the error (log, degrade, re-raise) or catch the "
                f"specific types that are safe to ignore",
            )


# ----------------------------------------------------------------------
# REP008 — no print() in library code
# ----------------------------------------------------------------------
@rule(
    "REP008",
    summary="no print() in library code (CLI modules exempt); route output "
    "through the repro logger",
)
def check_no_print(ctx: ModuleContext) -> Iterator[RuleViolation]:
    """``print()`` in library code cannot be silenced, redirected or
    captured by a host application, and pool workers interleave it
    arbitrarily on shared stdout.  Library output goes through
    :func:`repro.observability.log.get_logger`; only the CLI entry points
    (whose contract *is* stdout/stderr) print directly."""
    if not ctx.in_library or ctx.module_is(*_CLI_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield _violation(
                node,
                "print() in library code bypasses the repro logger; use "
                "repro.observability.log.get_logger(...).info(...) so hosts "
                "can configure, silence or redirect the output",
            )
