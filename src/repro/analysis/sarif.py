"""SARIF 2.1.0 export for ``repro-lint`` reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — GitHub renders a ``.sarif`` artifact as
inline annotations on the PR diff.  This writer emits the minimal valid
subset: one ``run`` with a ``tool.driver`` carrying the rule catalogue
and one ``result`` per diagnostic.  Columns are converted from the
linter's 0-based offsets to SARIF's 1-based convention.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence

from repro.analysis.linter import RULES, Diagnostic

__all__ = ["sarif_report", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptors(codes: Sequence[str]) -> List[Dict[str, Any]]:
    descriptors: List[Dict[str, Any]] = []
    for code in sorted(codes):
        entry: Dict[str, Any] = {"id": code}
        if code in RULES:
            metadata = RULES.entry(code).metadata
            entry["shortDescription"] = {"text": str(metadata.get("summary", code))}
            entry["defaultConfiguration"] = {
                "level": _LEVELS.get(str(metadata.get("severity", "error")), "error")
            }
        else:  # engine meta-codes (REP000 policy, REP900 parse errors)
            entry["shortDescription"] = {"text": "repro-lint engine diagnostic"}
        descriptors.append(entry)
    return descriptors


def sarif_report(
    diagnostics: Sequence[Diagnostic], tool_version: str = "2.0.0"
) -> Dict[str, Any]:
    """Assemble a SARIF 2.1.0 log dict for a set of findings."""
    results: List[Dict[str, Any]] = []
    for diagnostic in diagnostics:
        results.append(
            {
                "ruleId": diagnostic.code,
                "level": _LEVELS.get(diagnostic.severity, "error"),
                "message": {"text": diagnostic.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": diagnostic.path.replace(os.sep, "/"),
                            },
                            "region": {
                                "startLine": max(1, diagnostic.line),
                                "startColumn": diagnostic.column + 1,
                            },
                        }
                    }
                ],
            }
        )
    codes = sorted({d.code for d in diagnostics})
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/repro/repro-rgae",
                        "version": tool_version,
                        "rules": _rule_descriptors(codes),
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: str, diagnostics: Sequence[Diagnostic]) -> None:
    """Write the SARIF log atomically."""
    payload = sarif_report(diagnostics)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
