"""Analysis orchestration: incremental cache, parallel parse, project pass.

:func:`analyze_paths` is the engine behind ``repro-lint`` and
:func:`repro.analysis.linter.lint_paths`:

1. discover files and hash their contents (SHA-256),
2. serve unchanged files from the **incremental cache** — the cache
   stores the *pre-select* output of every file-scope rule plus the
   extracted inter-procedural facts, so switching ``--select`` or adding
   a baseline never invalidates it; editing a file (or changing any
   rule's registration) does,
3. re-analyze the misses, optionally fanned out with ``--jobs N`` over
   :func:`repro.parallel.parallel_map` — the linter dogfooding the
   deterministic pool it lints,
4. run the selected project-scope rules (REP1xx) over the
   :class:`~repro.analysis.graph.ProjectGraph` built from all facts,
   honouring per-line ``noqa`` waivers exactly like file-scope rules,
5. report unused suppressions (only after both passes had their chance
   to mark usage), apply the ``--baseline`` filter, and assemble the
   :class:`~repro.analysis.linter.LintReport`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.linter import (
    RULES,
    Diagnostic,
    FileAnalysis,
    LintReport,
    _Suppression,
    _resolve_select,
    analyze_source,
    assemble_file_diagnostics,
    iter_python_files,
    rule_scope,
    unused_suppression_diagnostics,
)

__all__ = ["AnalysisCache", "analyze_paths", "rules_fingerprint"]

#: Bump when the cached record layout changes shape.
CACHE_SCHEMA = "repro-lint-cache/1"


def rules_fingerprint() -> str:
    """Hash of the registered rule catalogue; part of the cache key.

    Any change to a rule's code, summary, severity or scope produces a
    different fingerprint, invalidating every cached record — rule logic
    changes almost always ship with a metadata change, and the repo-tree
    gate re-lints cold in CI regardless.
    """
    _resolve_select(None)
    catalogue = [
        (code, str(RULES.entry(code).metadata.get("summary", "")),
         str(RULES.entry(code).metadata.get("severity", "")),
         str(RULES.entry(code).metadata.get("scope", "")))
        for code in RULES.names()
    ]
    digest = hashlib.sha256(
        json.dumps([CACHE_SCHEMA, catalogue], sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()


def _serialize_analysis(analysis: FileAnalysis) -> Dict[str, Any]:
    return {
        "module": analysis.module,
        "outputs": [list(entry) for entry in analysis.outputs],
        "suppressions": {
            str(line): {"codes": list(s.codes), "justification": s.justification}
            for line, s in analysis.suppressions.items()
        },
        "policy": [
            [d.line, d.column, d.code, d.severity, d.message] for d in analysis.policy
        ],
        "facts": analysis.facts,
    }


def _deserialize_analysis(path: str, raw: Dict[str, Any]) -> FileAnalysis:
    suppressions = {
        int(line): _Suppression(
            int(line),
            tuple(str(c) for c in entry["codes"]),
            str(entry["justification"]),
        )
        for line, entry in raw["suppressions"].items()
    }
    policy = [
        Diagnostic(path, int(p[0]), int(p[1]), str(p[2]), str(p[3]), str(p[4]))
        for p in raw["policy"]
    ]
    outputs = [
        (str(o[0]), str(o[1]), int(o[2]), int(o[3]), str(o[4])) for o in raw["outputs"]
    ]
    facts = raw.get("facts")
    return FileAnalysis(
        path, str(raw["module"]), outputs, suppressions, policy,
        dict(facts) if isinstance(facts, dict) else None,
    )


class AnalysisCache:
    """Content-hash-keyed store of per-file analysis records."""

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.fingerprint = rules_fingerprint()
        self._files: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                payload = None  # a corrupt cache is a cold cache, never an error
            if (
                isinstance(payload, dict)
                and payload.get("schema") == CACHE_SCHEMA
                and payload.get("fingerprint") == self.fingerprint
                and isinstance(payload.get("files"), dict)
            ):
                self._files = payload["files"]

    def get(self, path: str, sha: str) -> Optional[FileAnalysis]:
        entry = self._files.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return _deserialize_analysis(path, entry["record"])
        except (KeyError, TypeError, ValueError, IndexError):
            return None  # stale layout: treat as a miss

    def put(self, path: str, sha: str, analysis: FileAnalysis) -> None:
        self._files[path] = {"sha": sha, "record": _serialize_analysis(analysis)}
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "files": self._files,
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, self.path)
        self._dirty = False


def _analyze_file_worker(item: Tuple[str, str]) -> Tuple[str, Dict[str, Any]]:
    """Pool work unit: analyze one (path, source) pair.

    Module-level on purpose — it crosses the process boundary and must
    pickle.  Returns the serialized record rather than the
    :class:`FileAnalysis` so the parent and a pool worker produce the
    same bytes.
    """
    path, source = item
    analysis = analyze_source(source, path=path, extract_facts=True)
    return path, _serialize_analysis(analysis)


def _content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _run_project_rules(
    codes: Sequence[str],
    analyses: Dict[str, FileAnalysis],
) -> List[Diagnostic]:
    """Build the project graph and run the selected REP1xx rules."""
    from repro.analysis.dataflow import ModuleFacts
    from repro.analysis.graph import build_project

    project_codes = [code for code in codes if rule_scope(code) == "project"]
    if not project_codes:
        return []
    facts = [
        ModuleFacts.from_dict(analysis.facts)
        for analysis in analyses.values()
        if analysis.facts is not None
    ]
    facts.sort(key=lambda mod: mod.path)
    project = build_project(facts)
    diagnostics: List[Diagnostic] = []
    for code in project_codes:
        entry = RULES.entry(code)
        severity = str(entry.metadata["severity"])
        for violation in entry.factory(project):
            analysis = analyses.get(violation.path)
            if analysis is not None:
                suppression = analysis.suppressions.get(violation.line)
                if suppression is not None and code in suppression.codes:
                    suppression.used.add(code)
                    continue
            diagnostics.append(
                Diagnostic(
                    violation.path, violation.line, violation.column,
                    code, severity, violation.message,
                )
            )
    return diagnostics


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_path: Optional[str] = None,
    baseline: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the full two-pass analysis over every Python file in ``paths``.

    ``baseline`` is a pre-loaded set/sequence of accepted fingerprints
    (see :mod:`repro.analysis.baseline`); ``cache_path`` enables the
    incremental cache; ``jobs`` > 1 parses cold files in the
    deterministic process pool.
    """
    codes = _resolve_select(select)
    cache = AnalysisCache(cache_path)

    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((path, handle.read()))

    analyses: Dict[str, FileAnalysis] = {}
    shas: Dict[str, str] = {}
    cold: List[Tuple[str, str]] = []
    for path, source in sources:
        sha = _content_sha(source)
        shas[path] = sha
        cached = cache.get(path, sha)
        if cached is not None:
            analyses[path] = cached
        else:
            cold.append((path, source))

    if cold:
        if jobs is not None and jobs > 1:
            from repro.parallel import parallel_map

            records = parallel_map(_analyze_file_worker, cold, jobs=jobs)
        else:
            records = [_analyze_file_worker(item) for item in cold]
        for path, record in records:
            analysis = _deserialize_analysis(path, record)
            analyses[path] = analysis
            cache.put(path, shas[path], analysis)
    cache.save()

    diagnostics: List[Diagnostic] = []
    for path in sorted(analyses):
        diagnostics.extend(assemble_file_diagnostics(analyses[path], codes))
    diagnostics.extend(_run_project_rules(codes, analyses))
    if select is None:
        # Only meaningful once *both* passes have marked waiver usage.
        for path in sorted(analyses):
            diagnostics.extend(unused_suppression_diagnostics(analyses[path]))
    diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.code))

    baselined = 0
    if baseline:
        from repro.analysis.baseline import apply_baseline

        diagnostics, baselined = apply_baseline(diagnostics, set(baseline))

    return LintReport(
        diagnostics=diagnostics,
        files_checked=len(sources),
        files_reparsed=len(cold),
        files_cached=len(sources) - len(cold),
        baselined=baselined,
    )
