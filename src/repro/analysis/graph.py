"""Project-wide import/call graph and the worker-reachability engine.

Built from per-file :class:`~repro.analysis.dataflow.ModuleFacts`
summaries (which are cheap to cache), :class:`ProjectGraph` provides what
the REP1xx rules consume:

* a **symbol index** — every function in the project addressed as
  ``module:qualname`` (``repro.api.pipeline:Pipeline.run``,
  ``repro.parallel:run_sweep.<locals>.on_result``),
* **conservative name resolution** for call sites: module/symbol imports
  (including function-local lazy imports and package re-exports),
  ``self``/``cls`` method dispatch with base-class walking, locally
  constructed instances (``store = ArtifactStore(...); store.get(...)``),
  and a *method-name fallback* that matches an unresolvable ``x.foo()``
  against every project method named ``foo`` — except names shadowing
  builtin container / ndarray methods, where the fallback would connect
  essentially everything to everything,
* the **forwarding fixpoint**: functions whose parameter is eventually
  passed as the callable of ``parallel_map``/``supervised_map`` are
  *forwarders*, and their call sites are pool submission sites too
  (this is what lets REP101 see through wrappers),
* the **worker-executed set**: BFS over call + reference edges from every
  pool-submitted callable and all of ``repro.minibatch`` (loader code
  runs inside trials), with parent tracking so every finding can print a
  witness path.

Deliberate approximations (documented in CONTRIBUTING.md): module-level
statements are *not* part of the worker set (imports re-execute in
workers, but deterministically and once per process), dynamic dispatch
through data structures is invisible, and the method-name fallback
over-approximates.  Cycles in the import graph are harmless — resolution
is demand-driven with a depth guard, never a topological sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import (
    POOL_BOUNDARY_NAMES,
    CallSite,
    FunctionFacts,
    ModuleFacts,
    Write,
)

__all__ = [
    "ProjectViolation",
    "ForwardedSubmission",
    "ProjectGraph",
    "ProjectContext",
    "build_project",
]

#: Attribute names whose method-name fallback would be noise: they shadow
#: methods of builtin containers / strings / numpy arrays, so an
#: unresolvable ``x.get(...)`` is far more likely ``dict.get`` than a
#: project method.  Classes whose methods share these names are reached
#: through resolvable receivers (``self.``, instantiation, imports) only.
_BUILTIN_METHOD_NAMES: FrozenSet[str] = frozenset(
    set(dir(dict)) | set(dir(list)) | set(dir(set)) | set(dir(str))
    | set(dir(tuple)) | set(dir(bytes)) | set(dir(float)) | set(dir(int))
    | {
        # ubiquitous numpy.ndarray methods
        "mean", "std", "var", "argmax", "argmin", "reshape", "astype",
        "tolist", "item", "dot", "ravel", "flatten", "transpose", "clip",
        "nonzero", "squeeze", "cumsum", "take", "repeat", "argsort", "fill",
        "all", "any", "round", "trace", "diagonal", "sum", "min", "max",
        "copy", "sort",
    }
)

_MAX_RESOLVE_DEPTH = 12


@dataclass(frozen=True)
class ProjectViolation:
    """What a project-scope rule yields: a finding with its own path."""

    path: str
    line: int
    column: int
    message: str


@dataclass(frozen=True)
class ForwardedSubmission:
    """An unpicklable callable entering the pool through a wrapper call."""

    path: str
    line: int
    column: int
    arg_kind: str  #: "lambda" | "localdef"
    arg_value: str  #: the local name ("" for lambdas)
    forwarder: str  #: dotted name of the wrapper being called
    boundary: str  #: the underlying pool entry point (e.g. "parallel_map")


class ProjectGraph:
    """Symbol index + call graph + worker-reachability over module facts."""

    def __init__(self, modules: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        for mod in modules:
            self.modules[mod.key] = mod
        #: symbol -> (module facts, function facts)
        self.functions: Dict[str, Tuple[ModuleFacts, FunctionFacts]] = {}
        #: simple method name -> symbols of project methods with that name
        self._method_index: Dict[str, Set[str]] = {}
        for key in sorted(self.modules):
            mod = self.modules[key]
            for qualname in sorted(mod.functions):
                fn = mod.functions[qualname]
                symbol = f"{key}:{qualname}"
                self.functions[symbol] = (mod, fn)
                if fn.kind == "method" and not qualname.rsplit(".", 1)[-1].startswith("__"):
                    self._method_index.setdefault(
                        qualname.rsplit(".", 1)[-1], set()
                    ).add(symbol)

        #: module key -> project module keys it imports (the import graph)
        self.module_imports: Dict[str, Set[str]] = {}
        for key in sorted(self.modules):
            deps: Set[str] = set()
            mod = self.modules[key]
            tables = [mod.imports] + [fn.imports for fn in mod.functions.values()]
            for table in tables:
                for target in table.values():
                    owner = self._owning_module(target)
                    if owner is not None and owner != key:
                        deps.add(owner)
            self.module_imports[key] = deps

        # Resolve every call site once; the fixpoint and BFS reuse this.
        self._call_targets: Dict[Tuple[str, int], FrozenSet[str]] = {}
        for symbol in sorted(self.functions):
            mod, fn = self.functions[symbol]
            for index, call in enumerate(fn.calls):
                self._call_targets[(symbol, index)] = frozenset(
                    self.resolve_call(mod, fn, call.dotted)
                )

        #: forwarder symbol -> {(param position, param name)} crossing the pool
        self.forwarders: Dict[str, Set[Tuple[int, str]]] = {}
        self._forwarder_boundary: Dict[str, str] = {}
        self._compute_forwarders()

        self._submissions: List[ForwardedSubmission] = []
        #: worker roots: symbol -> human-readable reason it is a root
        self.roots: Dict[str, str] = {}
        self._collect_roots()

        self.edges: Dict[str, Set[str]] = {}
        self._build_edges()

        #: the worker-executed set, with BFS parents for witness paths
        self.worker_set: Set[str] = set()
        self._parent: Dict[str, Optional[str]] = {}
        self._reach()

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _owning_module(self, dotted: str) -> Optional[str]:
        """Longest known-module prefix of a dotted import target."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def _resolve_import(self, target: str, depth: int = 0) -> Optional[Tuple[str, str]]:
        """Resolve an import target to ("module"|"func"|"class", reference)."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        if target in self.modules:
            return ("module", target)
        prefix, _, last = target.rpartition(".")
        if not prefix:
            return None
        mod = self.modules.get(prefix)
        if mod is None:
            base = self._resolve_import(prefix, depth + 1)
            if base is None or base[0] != "module":
                return None
            mod = self.modules[base[1]]
        return self._lookup_in_module(mod, last, depth + 1)

    def _lookup_in_module(
        self, mod: ModuleFacts, name: str, depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        if name in mod.functions:
            return ("func", f"{mod.key}:{name}")
        if name in mod.classes:
            return ("class", f"{mod.key}:{name}")
        if name in mod.imports:
            return self._resolve_import(mod.imports[name], depth + 1)
        submodule = f"{mod.key}.{name}"
        if submodule in self.modules:
            return ("module", submodule)
        return None

    def _resolve_name(
        self, mod: ModuleFacts, fn: FunctionFacts, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a bare name visible inside ``fn``."""
        if name in fn.imports:
            return self._resolve_import(fn.imports[name])
        # sibling / enclosing-scope nested defs: f.<locals>.g
        scope = fn.name
        while scope:
            nested = f"{scope}.<locals>.{name}"
            if nested in mod.functions:
                return ("func", f"{mod.key}:{nested}")
            scope = scope.rpartition(".<locals>.")[0]
        if name in mod.functions:
            return ("func", f"{mod.key}:{name}")
        if name in mod.classes:
            return ("class", f"{mod.key}:{name}")
        if name in mod.imports:
            return self._resolve_import(mod.imports[name])
        return None

    def _resolve_method(
        self, mod: ModuleFacts, class_name: str, method: str, seen: Set[str]
    ) -> Set[str]:
        """Find ``class_name.method`` in ``mod``, walking project bases."""
        marker = f"{mod.key}:{class_name}"
        if marker in seen or class_name not in mod.classes:
            return set()
        seen.add(marker)
        qualified = f"{class_name}.{method}"
        if qualified in mod.functions:
            return {f"{mod.key}:{qualified}"}
        results: Set[str] = set()
        for base in self.modules[mod.key].classes[class_name].get("bases", []):
            resolved = self._resolve_dotted_value(mod, str(base))
            if resolved is not None and resolved[0] == "class":
                base_mod_key, base_name = resolved[1].split(":", 1)
                results |= self._resolve_method(
                    self.modules[base_mod_key], base_name, method, seen
                )
        return results

    def _resolve_dotted_value(
        self, mod: ModuleFacts, dotted: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a dotted expression at module scope (base-class names)."""
        parts = dotted.split(".")
        head = self._lookup_in_module(mod, parts[0])
        for attr in parts[1:]:
            if head is None or head[0] != "module":
                return None
            head = self._lookup_in_module(self.modules[head[1]], attr)
        return head

    def _fallback(self, method: str) -> Set[str]:
        """All project methods named ``method`` (the conservative net)."""
        if method.startswith("__") or method in _BUILTIN_METHOD_NAMES:
            return set()
        return set(self._method_index.get(method, ()))

    def resolve_call(
        self, mod: ModuleFacts, fn: FunctionFacts, dotted: str, _depth: int = 0
    ) -> Set[str]:
        """Symbols a call expression may invoke (empty = external/builtin)."""
        if not dotted or _depth > _MAX_RESOLVE_DEPTH:
            return set()
        parts = dotted.split(".")
        head = parts[0]
        if head in {"self", "cls"} and fn.class_name:
            if len(parts) == 2:
                found = self._resolve_method(mod, fn.class_name, parts[1], set())
                return found or self._fallback(parts[1])
            if len(parts) > 2:
                return self._fallback(parts[-1])
            return set()
        resolved = self._resolve_name(mod, fn, head)
        if (
            resolved is None
            and head in fn.instances
            and fn.instances[head].split(".", 1)[0] != head
        ):
            constructor = self.resolve_call(mod, fn, fn.instances[head], _depth + 1)
            # a constructor resolves to __init__; re-anchor on its class
            for init_symbol in constructor:
                mod_key, qualname = init_symbol.split(":", 1)
                class_name = qualname.rsplit(".", 1)[0]
                if len(parts) == 2:
                    found = self._resolve_method(
                        self.modules[mod_key], class_name, parts[1], set()
                    )
                    if found:
                        return found
        if resolved is None:
            if len(parts) == 1:
                return set()  # builtin, parameter-held callable, or unknown
            return self._fallback(parts[-1])
        kind, target = resolved
        for index, attr in enumerate(parts[1:]):
            if kind == "module":
                step = self._lookup_in_module(self.modules[target], attr)
                if step is None:
                    return set()  # external module or data attribute
                kind, target = step
            elif kind == "class":
                if index == len(parts) - 2:  # last segment: a method call
                    mod_key, class_name = target.split(":", 1)
                    return self._resolve_method(
                        self.modules[mod_key], class_name, attr, set()
                    )
                return set()
            else:  # func.attr — not resolvable
                return set()
        if kind == "func":
            return {target}
        if kind == "class":  # instantiation runs __init__ (possibly inherited)
            mod_key, class_name = target.split(":", 1)
            return self._resolve_method(self.modules[mod_key], class_name, "__init__", set())
        return set()

    # ------------------------------------------------------------------
    # forwarding fixpoint + submission scan
    # ------------------------------------------------------------------
    def _boundary_specs(
        self, symbol: str, call_index: int, call: CallSite
    ) -> List[Tuple[int, str, str, str]]:
        """(position, keyword, forwarder display, boundary) pairs for a call
        whose argument at that position crosses the pool boundary."""
        tail = call.dotted.rsplit(".", 1)[-1]
        if tail in POOL_BOUNDARY_NAMES:
            return [(0, "fn", call.dotted, tail)]
        specs: List[Tuple[int, str, str, str]] = []
        for target in sorted(self._call_targets.get((symbol, call_index), ())):
            for position, param in sorted(self.forwarders.get(target, ())):
                boundary = self._forwarder_boundary.get(target, "parallel_map")
                specs.append((position, param, call.dotted, boundary))
        return specs

    def _compute_forwarders(self) -> None:
        changed = True
        while changed:
            changed = False
            for symbol in sorted(self.functions):
                _, fn = self.functions[symbol]
                for index, call in enumerate(fn.calls):
                    for position, keyword, _, boundary in self._boundary_specs(
                        symbol, index, call
                    ):
                        arg = call.arg_at(position, keyword)
                        if arg is None or arg.kind != "param":
                            continue
                        if arg.value not in fn.params:
                            continue
                        spec = (fn.params.index(arg.value), arg.value)
                        entries = self.forwarders.setdefault(symbol, set())
                        if spec not in entries:
                            entries.add(spec)
                            self._forwarder_boundary.setdefault(symbol, boundary)
                            changed = True

    def _collect_roots(self) -> None:
        # Everything in repro.minibatch executes inside pool trials.
        for key in sorted(self.modules):
            if key == "repro.minibatch" or key.startswith("repro.minibatch."):
                for qualname in sorted(self.modules[key].functions):
                    self.roots.setdefault(
                        f"{key}:{qualname}", "minibatch loader code runs inside pool trials"
                    )
        for symbol in sorted(self.functions):
            mod, fn = self.functions[symbol]
            for index, call in enumerate(fn.calls):
                tail = call.dotted.rsplit(".", 1)[-1]
                direct = tail in POOL_BOUNDARY_NAMES
                for position, keyword, forwarder, boundary in self._boundary_specs(
                    symbol, index, call
                ):
                    arg = call.arg_at(position, keyword)
                    if arg is None or arg.kind == "param":
                        continue
                    if arg.kind in {"name", "attr", "localdef"}:
                        resolved = self.resolve_call(mod, fn, arg.value)
                        if not resolved and arg.kind in {"name", "localdef"}:
                            named = self._resolve_name(mod, fn, arg.value)
                            if named is not None and named[0] == "func":
                                resolved = {named[1]}
                        for root in sorted(resolved):
                            self.roots.setdefault(
                                root,
                                f"submitted to {boundary}() at {mod.path}:{call.line}",
                            )
                    if not direct and arg.kind in {"lambda", "localdef"}:
                        # At a *direct* boundary call REP004 already flags
                        # this; through a wrapper it is REP101's finding.
                        self._submissions.append(
                            ForwardedSubmission(
                                mod.path, arg.line, arg.column,
                                arg.kind, arg.value, forwarder, boundary,
                            )
                        )

    def forwarded_unpicklables(self) -> List[ForwardedSubmission]:
        """REP101's findings, deterministically ordered."""
        return sorted(
            self._submissions, key=lambda s: (s.path, s.line, s.column, s.arg_kind)
        )

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        for symbol in sorted(self.functions):
            mod, fn = self.functions[symbol]
            targets: Set[str] = set()
            for index in range(len(fn.calls)):
                targets |= self._call_targets.get((symbol, index), frozenset())
            for name in fn.refs:
                resolved = self._resolve_name(mod, fn, name)
                if resolved is not None and resolved[0] == "func":
                    targets.add(resolved[1])
            targets.discard(symbol)
            self.edges[symbol] = targets

    def _reach(self) -> None:
        frontier = sorted(self.roots)
        for root in frontier:
            if root in self.functions:
                self._parent[root] = None
                self.worker_set.add(root)
        queue = [root for root in frontier if root in self.worker_set]
        while queue:
            current = queue.pop(0)
            for successor in sorted(self.edges.get(current, ())):
                if successor in self.worker_set or successor not in self.functions:
                    continue
                self.worker_set.add(successor)
                self._parent[successor] = current
                queue.append(successor)

    def witness(self, symbol: str, limit: int = 5) -> str:
        """Human-readable evidence chain: how ``symbol`` reaches a worker."""
        chain: List[str] = []
        cursor: Optional[str] = symbol
        while cursor is not None and len(chain) < 64:
            chain.append(cursor)
            cursor = self._parent.get(cursor)
        chain.reverse()
        root = chain[0]
        reason = self.roots.get(root, "pool root")
        names = [entry.split(":", 1)[1] for entry in chain]
        if len(names) > limit:
            names = names[:2] + ["…"] + names[-(limit - 3):]
        return f"{reason}; path: {' -> '.join(names)}"

    # ------------------------------------------------------------------
    # REP102 support
    # ------------------------------------------------------------------
    def classify_global_write(
        self, mod: ModuleFacts, fn: FunctionFacts, write: Write
    ) -> Optional[str]:
        """Describe a write target if it is module-level project state."""
        base = write.base
        imported = fn.imports.get(base, mod.imports.get(base, ""))
        if imported:
            if write.kind == "attribute":
                resolved = self._resolve_import(imported)
                if resolved is not None and resolved[0] == "module":
                    return f"an attribute of module {resolved[1]!r}"
            return None  # mutation through an imported object: out of scope
        if base in mod.toplevel:
            return f"module-level name {base!r} of {mod.key!r}"
        return None


class ProjectContext:
    """What a :func:`~repro.analysis.linter.project_rule` checker receives."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph

    @property
    def worker_set(self) -> Set[str]:
        return self.graph.worker_set

    def function(self, symbol: str) -> Tuple[ModuleFacts, FunctionFacts]:
        return self.graph.functions[symbol]

    def witness(self, symbol: str) -> str:
        return self.graph.witness(symbol)


def build_project(modules: Sequence[ModuleFacts]) -> ProjectContext:
    """Build the project graph + context from per-file fact summaries."""
    return ProjectContext(ProjectGraph(modules))
