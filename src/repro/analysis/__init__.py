"""Static analysis and runtime sanitizers for the repro code base.

The reproduction rests on contracts no generic tool checks — bitwise
determinism across ``--jobs``, autograd-graph hygiene, CSR-only hot paths,
schema-gated snapshot state.  This package makes regressions against those
contracts mechanically detectable:

* :mod:`repro.analysis.linter` — the AST rule engine:
  ``# repro: noqa[REPxxx]`` suppressions, ``file:line`` diagnostics and
  the registry both rule families live on.  Run it with the
  ``repro-lint`` console script (or ``python -m repro.analysis.cli``).
* :mod:`repro.analysis.rules` — the file-scope rules REP001–REP008;
  importing it populates the rule registry.
* :mod:`repro.analysis.dataflow` / :mod:`repro.analysis.graph` — per-file
  fact extraction, the project-wide import/call graph with the
  worker-reachability engine, and the inter-procedural rules
  REP101–REP104 (transitive picklability, static races, RNG provenance,
  env-read-after-fanout).
* :mod:`repro.analysis.engine` — orchestration: the content-hash
  incremental cache, ``--jobs`` parallel parsing over
  :func:`repro.parallel.parallel_map`, project-pass wiring and
  ``--baseline`` filtering.
* :mod:`repro.analysis.sarif` / :mod:`repro.analysis.baseline` — SARIF
  2.1.0 export for code-scanning UIs and baseline files for gradual
  rule adoption.
* :mod:`repro.analysis.sanitizers` — opt-in runtime guards
  (``REPRO_SANITIZE=1``): a NaN/Inf guard on every tensor op, a live
  autograd-node leak detector, and an RNG-isolation check for pool
  workers.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.sanitizers import (
    autograd_leak_check,
    install_sanitizers,
    live_graph_nodes,
    rng_isolation_check,
    sanitizers_enabled,
    uninstall_sanitizers,
)

# The linter (an AST engine plus the rule catalogue) is exported lazily:
# the sanitizer hooks are imported by the training loops, and `import
# repro.models` must not pay for — or cycle through — the analysis engine.
_LAZY_EXPORTS = {
    "Diagnostic": ("repro.analysis.linter", "Diagnostic"),
    "LintReport": ("repro.analysis.linter", "LintReport"),
    "ModuleContext": ("repro.analysis.linter", "ModuleContext"),
    "RULES": ("repro.analysis.linter", "RULES"),
    "lint_paths": ("repro.analysis.linter", "lint_paths"),
    "ModuleFacts": ("repro.analysis.dataflow", "ModuleFacts"),
    "ProjectGraph": ("repro.analysis.graph", "ProjectGraph"),
    "ProjectContext": ("repro.analysis.graph", "ProjectContext"),
    "ProjectViolation": ("repro.analysis.graph", "ProjectViolation"),
    "build_project": ("repro.analysis.graph", "build_project"),
    "analyze_paths": ("repro.analysis.engine", "analyze_paths"),
    "AnalysisCache": ("repro.analysis.engine", "AnalysisCache"),
    "sarif_report": ("repro.analysis.sarif", "sarif_report"),
    "write_sarif": ("repro.analysis.sarif", "write_sarif"),
    "load_baseline": ("repro.analysis.baseline", "load_baseline"),
    "write_baseline": ("repro.analysis.baseline", "write_baseline"),
}

__all__ = [
    "Diagnostic",
    "LintReport",
    "ModuleContext",
    "RULES",
    "lint_paths",
    "ModuleFacts",
    "ProjectGraph",
    "ProjectContext",
    "ProjectViolation",
    "build_project",
    "analyze_paths",
    "AnalysisCache",
    "sarif_report",
    "write_sarif",
    "load_baseline",
    "write_baseline",
    "autograd_leak_check",
    "install_sanitizers",
    "live_graph_nodes",
    "rng_isolation_check",
    "sanitizers_enabled",
    "uninstall_sanitizers",
]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
