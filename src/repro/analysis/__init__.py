"""Static analysis and runtime sanitizers for the repro code base.

The reproduction rests on contracts no generic tool checks — bitwise
determinism across ``--jobs``, autograd-graph hygiene, CSR-only hot paths,
schema-gated snapshot state.  This package makes regressions against those
contracts mechanically detectable:

* :mod:`repro.analysis.linter` — an AST rule engine with the project
  rules REP001–REP006, ``# repro: noqa[REPxxx]`` suppressions and
  ``file:line`` diagnostics.  Run it with the ``repro-lint`` console
  script (or ``python -m repro.analysis.cli``).
* :mod:`repro.analysis.rules` — the rule implementations; importing it
  populates the rule registry.
* :mod:`repro.analysis.sanitizers` — opt-in runtime guards
  (``REPRO_SANITIZE=1``): a NaN/Inf guard on every tensor op, a live
  autograd-node leak detector, and an RNG-isolation check for pool
  workers.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.sanitizers import (
    autograd_leak_check,
    install_sanitizers,
    live_graph_nodes,
    rng_isolation_check,
    sanitizers_enabled,
    uninstall_sanitizers,
)

# The linter (an AST engine plus the rule catalogue) is exported lazily:
# the sanitizer hooks are imported by the training loops, and `import
# repro.models` must not pay for — or cycle through — the analysis engine.
_LAZY_EXPORTS = {
    "Diagnostic": ("repro.analysis.linter", "Diagnostic"),
    "LintReport": ("repro.analysis.linter", "LintReport"),
    "ModuleContext": ("repro.analysis.linter", "ModuleContext"),
    "RULES": ("repro.analysis.linter", "RULES"),
    "lint_paths": ("repro.analysis.linter", "lint_paths"),
}

__all__ = [
    "Diagnostic",
    "LintReport",
    "ModuleContext",
    "RULES",
    "lint_paths",
    "autograd_leak_check",
    "install_sanitizers",
    "live_graph_nodes",
    "rng_isolation_check",
    "sanitizers_enabled",
    "uninstall_sanitizers",
]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
