"""``repro-lint`` — run the project lint rules over source trees.

Usage::

    repro-lint src benchmarks examples
    repro-lint --select REP002,REP003 src
    repro-lint --format json src
    repro-lint --report lint-report.json src benchmarks examples
    repro-lint --list-rules

Exit status is 0 when no error-severity diagnostics remain, 1 when any
error survives suppression, 2 on usage errors (unknown rule codes,
missing paths).  ``--report`` writes the full JSON report (diagnostics,
per-code summary, rule catalogue) regardless of the chosen terminal
format — CI uploads it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import LintConfigError

USAGE_EXIT_CODE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Run the repro project lint rules (REP001-REP006) over source trees.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src benchmarks examples)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all registered rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="terminal output format (default: text)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write the full JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _print_rules() -> None:
    from repro.analysis.linter import RULES, _resolve_select

    _resolve_select(None)  # ensure the project rules are registered
    for name in RULES.names():
        entry = RULES.entry(name)
        print(f"{name}  [{entry.metadata['severity']}]  {entry.metadata['summary']}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given (try: repro-lint src)", file=sys.stderr)
        return USAGE_EXIT_CODE

    select: Optional[List[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    from repro.analysis.linter import lint_paths

    try:
        report = lint_paths(args.paths, select=select)
    except LintConfigError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return USAGE_EXIT_CODE

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")

    if args.format == "json":
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.format())
        counts = ", ".join(f"{code}: {n}" for code, n in report.summary().items())
        tail = f" ({counts})" if counts else ""
        print(
            f"repro-lint: {report.files_checked} files checked, "
            f"{report.error_count} errors, {report.warning_count} warnings{tail}"
        )

    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
