"""``repro-lint`` — run the project lint rules over source trees.

Usage::

    repro-lint src benchmarks examples
    repro-lint --select REP101,REP102,REP103,REP104 src
    repro-lint --jobs 4 --cache .lint-cache.json src
    repro-lint --format json src
    repro-lint --report lint-report.json --sarif lint-report.sarif src
    repro-lint --write-baseline .lint-baseline.json src
    repro-lint --baseline .lint-baseline.json src
    repro-lint --list-rules

Exit status is 0 when no error-severity diagnostics remain, 1 when any
error survives suppression (and the baseline, if one is given), 2 on
usage errors (unknown/malformed/empty rule selections, missing paths,
unreadable baselines).  ``--report`` writes the full JSON report and
``--sarif`` a SARIF 2.1.0 log regardless of the chosen terminal format —
CI uploads both as artifacts.  ``--cache`` keeps per-file analysis
keyed by content hash, making warm re-runs near-instant; ``--jobs N``
parses cold files in the deterministic process pool the linter itself
polices.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import LintConfigError

USAGE_EXIT_CODE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Run the repro lint rules (file-scope REP001-REP008 and the "
            "inter-procedural REP101-REP104 family) over source trees."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src benchmarks examples)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all registered rules)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse cold files with N pool workers (default: 1, serial)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help="incremental analysis cache file (content-hash keyed)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record the current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="terminal output format (default: text)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write the full JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write a SARIF 2.1.0 log to PATH (code-scanning upload)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _print_rules() -> None:
    from repro.analysis.linter import RULES, _resolve_select, rule_scope

    _resolve_select(None)  # ensure both rule families are registered
    for name in RULES.names():
        entry = RULES.entry(name)
        print(
            f"{name}  [{entry.metadata['severity']}/{rule_scope(name)}]  "
            f"{entry.metadata['summary']}"
        )


def _parse_select(raw: Optional[str]) -> Optional[List[str]]:
    """Split ``--select``; empty/whitespace selections resolve to [] so the
    engine rejects them loudly instead of silently selecting nothing."""
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given (try: repro-lint src)", file=sys.stderr)
        return USAGE_EXIT_CODE

    select = _parse_select(args.select)

    from repro.analysis.engine import analyze_paths

    try:
        accepted: Optional[List[str]] = None
        if args.baseline:
            from repro.analysis.baseline import load_baseline

            accepted = sorted(load_baseline(args.baseline))
        report = analyze_paths(
            args.paths,
            select=select,
            jobs=args.jobs,
            cache_path=args.cache,
            baseline=accepted,
        )
    except LintConfigError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return USAGE_EXIT_CODE

    if args.write_baseline:
        from repro.analysis.baseline import write_baseline

        count = write_baseline(args.write_baseline, report.diagnostics)
        print(f"repro-lint: wrote {count} accepted findings to {args.write_baseline}")
        return 0

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")

    if args.sarif:
        from repro.analysis.sarif import write_sarif

        write_sarif(args.sarif, report.diagnostics)

    if args.format == "json":
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.format())
        counts = ", ".join(f"{code}: {n}" for code, n in report.summary().items())
        tail = f" ({counts})" if counts else ""
        cache_note = (
            f", {report.files_cached} from cache" if report.files_cached else ""
        )
        baseline_note = f", {report.baselined} baselined" if report.baselined else ""
        print(
            f"repro-lint: {report.files_checked} files checked{cache_note}, "
            f"{report.error_count} errors, {report.warning_count} warnings"
            f"{baseline_note}{tail}"
        )

    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
