"""Opt-in runtime sanitizers guarding the library's training invariants.

Enable with ``REPRO_SANITIZE=1`` (the tier-1 suite runs once in this mode
in CI) or programmatically via :func:`install_sanitizers` /
:func:`sanitized`.  Three guards are provided:

* **NaN/Inf tensor guard** — every autograd op output and every gradient
  accumulated during ``backward()`` is checked for non-finite values;
  violations raise :class:`~repro.errors.NonFiniteTensorError` at the op
  that produced them instead of surfacing as a corrupted metric hundreds
  of steps later.
* **Autograd leak detector** — :func:`autograd_leak_check` tracks every
  graph node created inside its scope and fails if any still holds a
  backward closure at exit.  The training loops wrap their epochs in it,
  so a missing ``release_graph()`` (the PR-4 leak class, lint rule
  REP003) fails a sanitized test run instead of silently inflating peak
  memory.
* **RNG isolation check** — :func:`rng_isolation_check` fails if the
  wrapped code consumed the process-global numpy RNG, which would break
  the bitwise ``--jobs`` determinism guarantee.  Pool workers wrap every
  trial in it when sanitizing.

The hooks cost one global load and an is-None test per tensor op when the
sanitizers are off, so shipping them enabled-in-CI-only is free for
production use.
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Iterator, List, Set

import numpy as np

from repro.env import SANITIZE_ENV, env_flag
from repro.errors import AutogradLeakError, NonFiniteTensorError, RngIsolationError
from repro.nn import tensor as _tensor_mod
from repro.nn.tensor import Tensor

__all__ = [
    "sanitizers_enabled",
    "install_sanitizers",
    "uninstall_sanitizers",
    "install_from_env",
    "sanitized",
    "live_graph_nodes",
    "autograd_leak_check",
    "rng_isolation_check",
]

_enabled = False

# Weak tracking of every tensor produced by an autograd op while the
# sanitizers are enabled.  Entries vanish the moment the interpreter frees
# the tensor, so membership plus an intact ``_backward`` closure is exactly
# the "live graph node" condition the leak detector needs.
_graph_nodes: "weakref.WeakSet[Tensor]" = weakref.WeakSet()


def _describe_nonfinite(values: np.ndarray) -> str:
    nan = int(np.isnan(values).sum())
    pos = int(np.isposinf(values).sum())
    neg = int(np.isneginf(values).sum())
    parts = [
        text
        for count, text in ((nan, f"{nan} NaN"), (pos, f"{pos} +Inf"), (neg, f"{neg} -Inf"))
        if count
    ]
    return ", ".join(parts) or "non-finite values"


def _child_hook(child: Tensor) -> None:
    data = child.data
    if not np.all(np.isfinite(data)):
        raise NonFiniteTensorError(
            f"tensor operation produced {_describe_nonfinite(data)} in an "
            f"output of shape {data.shape}"
        )
    if child._backward is not None:
        _graph_nodes.add(child)  # repro: noqa[REP102] per-process leak-detector bookkeeping, reset every trial


def _grad_hook(node: Tensor, grad: np.ndarray) -> None:
    if not np.all(np.isfinite(grad)):
        raise NonFiniteTensorError(
            f"backward() accumulated {_describe_nonfinite(grad)} into a "
            f"gradient of shape {grad.shape}"
        )


def sanitizers_enabled() -> bool:
    """Whether the runtime sanitizers are currently installed."""
    return _enabled


def install_sanitizers() -> None:
    """Install the tensor hooks and start tracking graph nodes."""
    global _enabled
    _enabled = True  # repro: noqa[REP102] per-process install flag; each worker arms its own hooks
    _tensor_mod.set_sanitizer_hooks(_child_hook, _grad_hook)


def uninstall_sanitizers() -> None:
    """Remove the hooks and drop all tracking state."""
    global _enabled
    _enabled = False
    _tensor_mod.set_sanitizer_hooks(None, None)
    _graph_nodes.clear()


def install_from_env() -> bool:
    """Install the sanitizers when ``REPRO_SANITIZE`` is set; return whether.

    Idempotent, and called from process entry points that may run inside
    pool workers (workers inherit the parent environment, so exporting the
    flag before the pool starts sanitizes every trial).
    """
    if env_flag(SANITIZE_ENV) and not _enabled:  # repro: noqa[REP104] workers deliberately re-read inherited REPRO_SANITIZE (set before fan-out)
        install_sanitizers()
    return _enabled


@contextlib.contextmanager
def sanitized() -> Iterator[None]:
    """Enable the sanitizers for the duration of the context (tests)."""
    was_enabled = _enabled
    install_sanitizers()
    try:
        yield
    finally:
        if not was_enabled:
            uninstall_sanitizers()


def live_graph_nodes() -> int:
    """Number of tracked tensors that still hold a backward closure."""
    return sum(1 for node in _graph_nodes if node._backward is not None)


@contextlib.contextmanager
def autograd_leak_check(scope: str = "scope") -> Iterator[None]:
    """Fail if graph nodes created inside the context survive its exit.

    "Survive" means the tensor object is still alive *and* still holds its
    ``_backward`` closure: nodes severed by ``release_graph()`` (or built
    under ``no_grad()``) never trigger, and nodes freed by the reference
    counter leave the weak set on their own.  Nodes that were already live
    at entry are exempt, so the checks nest — a discriminator step guarded
    inside a guarded pretraining epoch sees only its own creations.

    No-op unless the sanitizers are installed.
    """
    if not _enabled:
        yield
        return
    # Strong references for the duration of the context: identity
    # membership must not be confused by ids being reused after a
    # pre-existing node is freed mid-scope.
    at_entry: List[Tensor] = [
        node for node in _graph_nodes if node._backward is not None
    ]
    entry_ids: Set[int] = {id(node) for node in at_entry}
    try:
        yield
    finally:
        del at_entry
    survivors = [
        node
        for node in _graph_nodes
        if node._backward is not None and id(node) not in entry_ids
    ]
    if survivors:
        raise AutogradLeakError(len(survivors), scope)


def _rng_state_fingerprint() -> tuple:
    state = np.random.get_state()
    return tuple(
        value.tobytes() if isinstance(value, np.ndarray) else value for value in state
    )


@contextlib.contextmanager
def rng_isolation_check(scope: str = "trial") -> Iterator[None]:
    """Fail if the wrapped code advanced the process-global numpy RNG.

    All library randomness must flow from explicitly seeded
    ``np.random.Generator`` objects (REP001); global-stream consumption
    would make results depend on execution order and break the bitwise
    ``--jobs`` determinism contract.  No-op unless the sanitizers are
    installed.
    """
    if not _enabled:
        yield
        return
    before = _rng_state_fingerprint()
    yield
    if _rng_state_fingerprint() != before:
        raise RngIsolationError(
            f"{scope} consumed the process-global numpy RNG; use an "
            f"explicitly seeded np.random.Generator instead"
        )
