"""Journaled sweeps: per-trial completion records that survive a kill -9.

A multi-seed sweep is a list of independent trials, yet before this module
the sweep's progress lived only in the driver's memory: any interruption —
crash, Ctrl-C, OOM kill, pre-empted CI runner — discarded every finished
trial.  :class:`SweepJournal` writes each completed trial's result into the
:class:`~repro.store.store.ArtifactStore` *as it finishes* (the supervised
pool's ``on_result`` hook fires in the parent), keyed by:

* the **sweep key** — a canonical hash over the ordered list of trial keys,
  so re-running the same command finds the same journal, and any change to
  the trial list (different seeds, different spec) maps to a fresh one;
* the **trial key** — ``RunSpec.store_key()``, the same full-spec hash the
  warm-start machinery uses, so a journal entry can never be replayed
  against a different trial.

Because every trial is bitwise-reproducible from its spec, replaying a
journal entry is *indistinguishable* from re-running the trial — which is
what makes ``repro-run --resume`` safe: finished trials are skipped and the
resumed sweep's results equal an uninterrupted run's bit for bit.

Journal entries ride on the store's hardened blob layer: SHA-256 sidecar
checksums verified on read, corrupt entries quarantined and treated as
missing (the trial simply re-runs), atomic tmp-file writes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ArtifactCorruptError
from repro.store.keys import config_hash
from repro.store.store import ArtifactStore

__all__ = ["SweepJournal", "sweep_key"]


def sweep_key(trial_keys: Sequence[str]) -> str:
    """Stable identity of a sweep: a hash over its ordered trial keys."""
    return config_hash({"kind": "sweep", "trials": [str(key) for key in trial_keys]})


class SweepJournal:
    """Completion journal of one sweep (see module docstring)."""

    #: blob category prefix under the store root.
    CATEGORY = "journal"

    def __init__(self, store: ArtifactStore, trial_keys: Sequence[str]) -> None:
        self.store = store
        self.trial_keys: List[str] = [str(key) for key in trial_keys]
        self.sweep_key = sweep_key(self.trial_keys)
        self.category = f"{self.CATEGORY}/{self.sweep_key}"

    def load(self) -> Dict[int, Any]:
        """Completed trial results by input index, checksum-verified.

        A corrupt entry has already been quarantined by the store when the
        read raises; it is treated as missing, so the trial re-runs — the
        degraded outcome is a slower resume, never a wrong one.
        """
        completed: Dict[int, Any] = {}
        for index, key in enumerate(self.trial_keys):
            try:
                value = self.store.get_blob(self.category, key, default=None)
            except ArtifactCorruptError:
                value = None  # quarantined by the store; re-run the trial
            if value is not None:
                completed[index] = value
        return completed

    def record(self, index: int, value: Any) -> str:
        """Persist trial ``index``'s result; returns the written path."""
        return self.store.put_blob(self.category, self.trial_keys[index], value)

    def entries(self) -> List[str]:
        """Trial keys currently journaled for this sweep."""
        return self.store.blob_names(self.category)

    def clear(self) -> int:
        """Drop this sweep's journal; returns how many entries were removed."""
        removed = 0
        for name in self.entries():
            removed += bool(self.store.delete_blob(self.category, name))
        return removed

    def describe(self) -> Dict[str, Any]:
        return {
            "sweep_key": self.sweep_key,
            "trials": len(self.trial_keys),
            "journaled": len(self.entries()),
            "store": self.store.root,
        }


def open_journal(
    store: Optional[ArtifactStore], trial_keys: Sequence[str]
) -> Optional[SweepJournal]:
    """A journal when a store is configured, else ``None`` (journaling off)."""
    if store is None:
        return None
    return SweepJournal(store, trial_keys)
