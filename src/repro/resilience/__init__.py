"""repro.resilience — fault-tolerant execution for sweeps and serving.

The failure-semantics layer under :mod:`repro.parallel`:

* :mod:`repro.resilience.supervisor` — the supervised process pool:
  per-attempt timeouts (``REPRO_TRIAL_TIMEOUT``), crash detection with
  pool respawn, retry with exponential backoff and deterministic jitter
  (``REPRO_MAX_RETRIES``), quarantine-over-abort with ordered partial
  results and a failure report, interrupt-safe teardown.
* :mod:`repro.resilience.journal` — per-trial completion journaling into
  the artifact store, the mechanism behind ``repro-run --resume``: an
  interrupted sweep skips finished trials and completes bitwise identical
  to an uninterrupted run.
* :mod:`repro.resilience.faults` — deterministic fault injection
  (``REPRO_FAULTS``): worker crashes, hangs, trial errors and torn
  artifact writes, replayable bit-for-bit so chaos tests can assert
  recovery *exactly* reproduces the fault-free results.

The headline invariant, CI-enforced: a sweep under injected faults with
retries enabled returns per-trial results bitwise identical to a
fault-free serial run.
"""

from repro.errors import (
    FaultPlanError,
    InjectedFaultError,
    ResilienceError,
    TrialFailedError,
    TrialTimeoutError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultRule,
    active_plan,
    fault_decision,
    parse_fault_plan,
)
from repro.resilience.journal import SweepJournal, open_journal, sweep_key
from repro.resilience.supervisor import (
    RetryPolicy,
    SweepOutcome,
    TrialFailure,
    backoff_delay,
    supervised_map,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlanError",
    "FaultRule",
    "InjectedFaultError",
    "ResilienceError",
    "RetryPolicy",
    "SweepJournal",
    "SweepOutcome",
    "TrialFailedError",
    "TrialFailure",
    "TrialTimeoutError",
    "active_plan",
    "backoff_delay",
    "fault_decision",
    "open_journal",
    "parse_fault_plan",
    "supervised_map",
    "sweep_key",
]
