"""Deterministic fault injection for chaos testing the execution substrate.

Production failure modes — a worker segfault, a hung trial, a truncated
artifact — are rare and non-reproducible, which makes the recovery code the
least-tested code in the system.  This module turns those failures into a
*deterministic, replayable plan*: the ``REPRO_FAULTS`` environment variable
names which faults fire where, and every injection decision is a pure
function of ``(fault kind, rule seed, site, key)``, so the same plan
produces the same crashes on every run, in any process, for any pool
width.  That determinism is what lets the chaos suite assert the headline
invariant: *a sweep with injected faults and retries returns results
bitwise identical to a fault-free serial run*.

Plan syntax (comma-separated rules, colon-separated fields)::

    REPRO_FAULTS=worker_crash:p=0.3:seed=7,store_corrupt
    REPRO_FAULTS=trial_hang:p=1:match=seed3:seconds=60
    REPRO_FAULTS=trial_error:p=0.5:seed=1,worker_crash:p=0.2

Fault kinds and the instrumented choke points they fire at:

=============  ======================  ====================================
kind           site                    effect
=============  ======================  ====================================
worker_crash   ``trial``               ``os._exit`` in a pool worker (the
                                       parent sees ``BrokenProcessPool``);
                                       degraded to a typed
                                       :class:`InjectedFaultError` when
                                       executing in-process.
trial_hang     ``trial``               sleeps ``seconds`` (default 30) —
                                       with ``REPRO_TRIAL_TIMEOUT`` set the
                                       supervisor reaps it as a timeout;
                                       degraded to an error in-process so
                                       a serial run can never deadlock.
trial_error    ``trial``               raises :class:`InjectedFaultError`.
store_corrupt  ``store_write``         truncates the just-written artifact
                                       file, simulating a torn write.
=============  ======================  ====================================

Rule fields: ``p`` (fire probability, default 1.0), ``seed`` (decision
stream seed, default 0), ``match`` (substring the site key must contain —
targets one trial/artifact), ``seconds`` (hang duration).  Trial-site keys
look like ``<trial key>#a<attempt>``: the attempt index is part of the
decision input, so a fault that fires on attempt 0 re-rolls on attempt 1
and retries can make progress.

The plan is read from the environment at every choke point (workers
inherit it from the sweep parent); with ``REPRO_FAULTS`` unset every hook
is a cheap no-op.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import env as repro_env
from repro.errors import FaultPlanError, InjectedFaultError

__all__ = [
    "FaultRule",
    "FAULT_KINDS",
    "parse_fault_plan",
    "active_plan",
    "fault_decision",
    "inject",
    "corrupt_file",
    "in_worker_process",
]

#: the supported fault kinds, mapped to the site they fire at.
FAULT_KINDS: Dict[str, str] = {
    "worker_crash": "trial",
    "trial_hang": "trial",
    "trial_error": "trial",
    "store_corrupt": "store_write",
}

#: exit status used by injected worker crashes (visible in pool post-mortems).
CRASH_EXIT_CODE = 113

#: default sleep of a ``trial_hang`` fault (finite, so an unsupervised run
#: degrades to slowness rather than a deadlock).
DEFAULT_HANG_SECONDS = 30.0


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule of a ``REPRO_FAULTS`` plan."""

    kind: str
    probability: float = 1.0
    seed: int = 0
    match: str = ""
    seconds: float = DEFAULT_HANG_SECONDS

    @property
    def site(self) -> str:
        return FAULT_KINDS[self.kind]


def parse_fault_plan(text: Optional[str]) -> Tuple[FaultRule, ...]:
    """Parse a plan string into rules; raises :class:`FaultPlanError`."""
    if not text or not text.strip():
        return ()
    rules = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        kind = parts[0].strip()
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r} in plan {text!r}; "
                f"supported: {', '.join(sorted(FAULT_KINDS))}"
            )
        fields: Dict[str, str] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise FaultPlanError(
                    f"fault rule field {part!r} must look like name=value "
                    f"(in plan {text!r})"
                )
            name, _, value = part.partition("=")
            fields[name.strip()] = value.strip()
        unknown = set(fields) - {"p", "seed", "match", "seconds"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault rule field(s) {sorted(unknown)} in plan "
                f"{text!r}; supported: p, seed, match, seconds"
            )
        try:
            probability = float(fields.get("p", "1"))
            seed = int(fields.get("seed", "0"))
            seconds = float(fields.get("seconds", str(DEFAULT_HANG_SECONDS)))
        except ValueError as error:
            raise FaultPlanError(
                f"bad numeric field in fault rule {chunk!r}: {error}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise FaultPlanError(
                f"fault probability must be in [0, 1], got {probability} "
                f"in rule {chunk!r}"
            )
        rules.append(
            FaultRule(
                kind=kind,
                probability=probability,
                seed=seed,
                match=fields.get("match", ""),
                seconds=seconds,
            )
        )
    return tuple(rules)


# One-entry parse cache: the plan string rarely changes within a process,
# but must be re-read from the environment at every choke point so sweeps
# can reconfigure workers between trials.
_plan_cache: Tuple[Optional[str], Tuple[FaultRule, ...]] = (None, ())


def active_plan() -> Tuple[FaultRule, ...]:
    """The rules of the current ``REPRO_FAULTS`` value (``()`` when unset)."""
    global _plan_cache
    text = repro_env.env_str(repro_env.FAULTS_ENV)  # repro: noqa[REP104] fault plans are injected per worker via inherited REPRO_FAULTS by design
    if text == _plan_cache[0]:
        return _plan_cache[1]
    rules = parse_fault_plan(text)
    _plan_cache = (text, rules)  # repro: noqa[REP102] per-process parse cache keyed by the env text itself
    return rules


def fault_decision(rule: FaultRule, site: str, key: str) -> bool:
    """Whether ``rule`` fires at ``(site, key)`` — pure and deterministic.

    The decision hashes ``(kind, seed, site, key)`` into a uniform value in
    ``[0, 1)`` and compares it to the rule's probability: no RNG state, no
    call-order dependence, identical in every process.
    """
    if rule.site != site:
        return False
    if rule.match and rule.match not in key:
        return False
    digest = hashlib.sha256(
        f"{rule.kind}|{rule.seed}|{site}|{key}".encode("utf-8")
    ).hexdigest()
    return int(digest[:16], 16) / float(1 << 64) < rule.probability


def in_worker_process() -> bool:
    """Whether this process was spawned by a multiprocessing parent."""
    return multiprocessing.parent_process() is not None


def inject(site: str, key: str) -> None:
    """Fire any matching trial-site faults; called at instrumented points.

    ``worker_crash`` hard-kills the process only when it actually is a pool
    worker; executing in-process (``jobs=1``, or the site living in the
    driver) both crash and hang degrade to :class:`InjectedFaultError`, so
    injected chaos can never take down the sweep driver or deadlock a
    serial run.
    """
    for fault_rule in active_plan():
        if not fault_decision(fault_rule, site, key):
            continue
        if fault_rule.kind == "worker_crash":
            if in_worker_process():
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFaultError(fault_rule.kind, site, key)
        if fault_rule.kind == "trial_hang":
            if in_worker_process():
                time.sleep(fault_rule.seconds)
                continue
            raise InjectedFaultError(fault_rule.kind, site, key)
        if fault_rule.kind == "trial_error":
            raise InjectedFaultError(fault_rule.kind, site, key)


def corrupt_file(site: str, key: str, path: str) -> bool:
    """Truncate ``path`` if a ``store_corrupt`` rule fires; returns whether.

    Cuts the file to half its size (at least one byte short), simulating a
    torn write — exactly the corruption the store's checksum verification
    and quarantine machinery must catch on the next read.
    """
    for fault_rule in active_plan():
        if fault_rule.kind != "store_corrupt":
            continue
        if not fault_decision(fault_rule, site, key):
            continue
        size = os.path.getsize(path)
        keep = min(size // 2, size - 1)
        if keep < 0:
            keep = 0
        with open(path, "rb+") as stream:
            stream.truncate(keep)
        return True
    return False
