"""The supervised process pool: retries, timeouts, crash recovery.

``ProcessPoolExecutor.map`` — what :func:`repro.parallel.parallel_map` used
to be — has all-or-nothing failure semantics: one worker crash, hung trial
or Ctrl-C kills the whole sweep and throws away every finished result.
This module replaces it with a future-based supervisor that treats each
work item as an independently retryable *attempt stream*:

* **Per-attempt timeout** (:data:`~repro.env.TRIAL_TIMEOUT_ENV`): a trial
  running past its budget is reaped — the worker is terminated, the pool
  respawned — and the attempt recorded as a timeout.  Trials that were
  innocently in flight on the same pool are *preempted* (resubmitted
  without consuming an attempt).
* **Crash detection**: a dying worker breaks the whole
  ``ProcessPoolExecutor``; the supervisor catches ``BrokenProcessPool``,
  records a ``pool_broken`` attempt against every in-flight trial (the
  pool cannot say which one crashed — the deterministic fault plan or the
  real segfault will single it out on retry), kills the wreck and spins up
  a fresh pool.
* **Retry with exponential backoff**: failed attempts are rescheduled at
  ``backoff_base · 2^(attempt-1)`` seconds (capped), scaled by a
  deterministic jitter derived from the item key — no RNG state, bitwise
  reproducible, yet de-synchronised across items.
* **Quarantine over abort**: an item that exhausts ``max_attempts``
  becomes a :class:`TrialFailure` carrying its full attempt history; the
  sweep *completes*, returning ordered partial results plus a failure
  report.  ``fail_fast=True`` opts back into abort-on-first-failure, which
  raises the typed :class:`~repro.errors.TrialTimeoutError` /
  :class:`~repro.errors.TrialFailedError`.
* **Interrupt-safe teardown**: every exit path — success, fail-fast,
  ``KeyboardInterrupt`` — cancels queued futures and terminates worker
  processes, so Ctrl-C can no longer wedge the interpreter behind a pool
  that waits forever for a hung child.

Results are written by input index, so whatever order attempts land in,
the output order equals the input order — the property the bitwise
any-``jobs`` determinism guarantee of :mod:`repro.parallel` rests on.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from repro import env as repro_env
from repro.errors import ConfigError, TrialFailedError, TrialTimeoutError
from repro.observability.metrics import metric_inc
from repro.observability.tracer import span as _span
from repro.observability.tracer import trace_event
from repro.resilience import faults

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "RetryPolicy",
    "TrialFailure",
    "SweepOutcome",
    "supervised_map",
    "backoff_delay",
]

#: attempt outcomes that consume one unit of the retry budget.
_COUNTED_OUTCOMES = {"error", "timeout", "pool_broken"}

#: floor of the scheduler's wait quantum (seconds).
_MIN_TICK = 0.01


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs of one supervised sweep."""

    #: total tries per item (1 = no retries).
    max_attempts: int = 1
    #: per-attempt wall-clock budget in seconds (None = unlimited);
    #: enforced for pooled execution only — a single process cannot
    #: preempt itself without signals.
    timeout: Optional[float] = None
    #: first backoff step; attempt ``n`` waits ``base * 2^(n-1)`` (capped).
    backoff_base: float = 0.05
    #: upper bound of one backoff wait.
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"RetryPolicy.timeout must be positive or None, got {self.timeout}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("RetryPolicy backoff values must be >= 0")

    @classmethod
    def from_env(
        cls,
        max_attempts: Optional[int] = None,
        timeout: Optional[float] = None,
        **overrides: Any,
    ) -> "RetryPolicy":
        """Policy from ``REPRO_MAX_RETRIES`` / ``REPRO_TRIAL_TIMEOUT``.

        Explicit arguments win over the environment; a timeout of 0 (in
        either) means "no timeout".
        """
        if max_attempts is None:
            retries = repro_env.env_int(repro_env.MAX_RETRIES_ENV, 0)
            if retries < 0:
                raise ConfigError(
                    f"{repro_env.MAX_RETRIES_ENV} must be >= 0, got {retries}"
                )
            max_attempts = 1 + retries
        if timeout is None:
            timeout = repro_env.env_float(repro_env.TRIAL_TIMEOUT_ENV, 0.0)
        if timeout is not None and timeout <= 0:
            timeout = None
        return cls(max_attempts=max_attempts, timeout=timeout, **overrides)


def backoff_delay(policy: RetryPolicy, key: str, attempt: int) -> float:
    """Wait before retry ``attempt`` of ``key`` (deterministic jitter).

    Exponential in the attempt index, scaled into ``[0.5, 1.0]`` of the
    step by a jitter value hashed from ``(key, attempt)`` — reproducible
    everywhere, yet different items never retry in lock-step.
    """
    step = min(policy.backoff_max, policy.backoff_base * (2 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"backoff|{key}|{attempt}".encode("utf-8")).hexdigest()
    jitter = int(digest[:16], 16) / float(1 << 64)
    return step * (0.5 + 0.5 * jitter)


@dataclass
class TrialFailure:
    """A work item that exhausted its retry budget (quarantined).

    Sits in the failed item's result slot when a sweep degrades
    gracefully; carries everything a post-mortem needs.
    """

    index: int
    key: str
    attempts: List[Dict[str, Any]]
    error: BaseException

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "error_type": type(self.error).__name__,
            "error": str(self.error),
            "attempts": list(self.attempts),
        }

    def __repr__(self) -> str:
        return (
            f"TrialFailure(index={self.index}, key={self.key!r}, "
            f"attempts={len(self.attempts)}, error={type(self.error).__name__})"
        )


@dataclass
class SweepOutcome:
    """What :func:`supervised_map` returns: ordered results + failures."""

    #: one slot per input item; a quarantined item's slot holds its
    #: :class:`TrialFailure` instead of a result.
    results: List[Any]
    #: the quarantined items, in input order.
    failures: List[TrialFailure]
    #: how many input items were served from a journal instead of executed
    #: (filled in by :func:`repro.parallel.run_trials` on resume).
    resumed: int = 0
    policy: Optional[RetryPolicy] = None
    #: merged sweep telemetry (``repro-trace/1`` document) when tracing or
    #: metrics were enabled; filled in by :func:`repro.parallel.run_sweep`.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def report(self) -> Dict[str, Any]:
        """JSON-serialisable failure report of the sweep."""
        policy = self.policy or RetryPolicy()
        return {
            "total": len(self.results),
            "succeeded": len(self.results) - len(self.failures),
            "failed": len(self.failures),
            "resumed": self.resumed,
            "fault_plan": repro_env.env_str(repro_env.FAULTS_ENV),
            "policy": {
                "max_attempts": policy.max_attempts,
                "timeout": policy.timeout,
                "backoff_base": policy.backoff_base,
                "backoff_max": policy.backoff_max,
            },
            "failures": [failure.to_dict() for failure in self.failures],
        }


def _call_with_faults(fn: Callable[[T], U], item: T, key: str, attempt: int) -> U:
    """The unit actually executed per attempt (module-level: must pickle).

    Routes through the ``trial`` fault-injection site with the attempt
    index folded into the decision key, so deterministic faults re-roll
    between retries.
    """
    faults.inject("trial", f"{key}#a{attempt}")
    return fn(item)


@dataclass
class _TrialState:
    index: int
    item: Any
    key: str
    attempts: List[Dict[str, Any]] = field(default_factory=list)
    counted: int = 0
    retry_at: float = 0.0

    def record(self, outcome: str, error: Optional[BaseException], seconds: float) -> None:
        self.attempts.append(
            {
                "attempt": len(self.attempts) + 1,
                "outcome": outcome,
                "error": None if error is None else f"{type(error).__name__}: {error}",
                "seconds": round(seconds, 6),
            }
        )
        if outcome in _COUNTED_OUTCOMES:
            self.counted += 1
        # Supervisor-side observability: the attempt already happened (in a
        # worker, or inline), so it is recorded as a completed span keyed
        # ``<trial key>#a<attempt>`` — the same identity the fault planner
        # and backoff jitter use.
        trace_event(
            "resilience.attempt",
            seconds=seconds,
            attempt_key=f"{self.key}#a{len(self.attempts)}",
            outcome=outcome,
        )
        metric_inc("resilience.attempts")
        if outcome in _COUNTED_OUTCOMES:
            metric_inc(f"resilience.{outcome}")

    def permanent_error(self, policy: RetryPolicy) -> TrialFailedError:
        counted = [a for a in self.attempts if a["outcome"] in _COUNTED_OUTCOMES]
        if counted and counted[-1]["outcome"] == "timeout":
            return TrialTimeoutError(self.key, self.attempts, policy.timeout or 0.0)
        return TrialFailedError(self.key, self.attempts)


def _teardown_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    """Shut a pool down without ever waiting on a hung or dead worker.

    ``kill=True`` terminates the worker processes outright — the only way
    to reclaim a worker stuck in a hung trial, and the difference between
    Ctrl-C returning promptly and the interpreter hanging in
    ``Executor.__exit__`` forever.  ``_processes`` is private executor
    state, but the stdlib offers no public kill switch before 3.14.
    """
    if kill:
        for process in dict(getattr(pool, "_processes", None) or {}).values():
            if process.is_alive():
                process.terminate()
    pool.shutdown(wait=not kill, cancel_futures=True)


def _serial_map(
    fn: Callable[[T], U],
    states: List[_TrialState],
    policy: RetryPolicy,
    fail_fast: bool,
    on_result: Optional[Callable[[int, Any], None]],
) -> SweepOutcome:
    """In-process execution with the same retry/quarantine semantics.

    Timeouts are not enforced (a process cannot preempt itself without
    signals) and injected crashes/hangs degrade to typed errors inside
    :func:`~repro.resilience.faults.inject`, so a serial sweep can always
    run the identical fault plan without dying.
    """
    results: List[Any] = [None] * len(states)
    failures: List[TrialFailure] = []
    for state in states:
        while True:
            attempt = len(state.attempts) + 1
            start = time.monotonic()
            try:
                value = _call_with_faults(fn, state.item, state.key, attempt)
            except KeyboardInterrupt:
                raise
            # BaseException, not Exception: injected crashes degrade to
            # typed errors here, but a trial calling sys.exit() must be
            # recorded as a failure, exactly as its pooled twin would be.
            except BaseException as error:
                state.record("error", error, time.monotonic() - start)
                if state.counted >= policy.max_attempts:
                    failure = TrialFailure(
                        state.index, state.key, state.attempts, state.permanent_error(policy)
                    )
                    if fail_fast:
                        raise failure.error from error
                    failures.append(failure)
                    results[state.index] = failure
                    break
                metric_inc("resilience.retries")
                with _span("resilience.backoff", key=state.key, attempt=state.counted):
                    time.sleep(backoff_delay(policy, state.key, state.counted))
            else:
                state.record("ok", None, time.monotonic() - start)
                results[state.index] = value
                if on_result is not None:
                    on_result(state.index, value)
                break
    return SweepOutcome(results=results, failures=failures, policy=policy)


def supervised_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    jobs: int,
    policy: Optional[RetryPolicy] = None,
    keys: Optional[Sequence[str]] = None,
    fail_fast: bool = False,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> SweepOutcome:
    """Map ``fn`` over ``items`` under supervision (see module docstring).

    ``jobs`` must already be resolved to a positive int (use
    :func:`repro.parallel.resolve_jobs`).  ``keys`` are stable per-item
    identities used for fault decisions, backoff jitter and failure
    reports — sweeps pass ``RunSpec.store_key()``; the default is the item
    index.  ``on_result(index, value)`` fires in the parent as each item
    completes, which is where journaled sweeps persist finished trials.
    """
    items = list(items)
    policy = policy if policy is not None else RetryPolicy.from_env()
    if keys is None:
        keys = [f"item{i}" for i in range(len(items))]
    elif len(keys) != len(items):
        raise ConfigError(
            f"supervised_map got {len(items)} items but {len(keys)} keys"
        )
    states = [
        _TrialState(index=i, item=item, key=str(key))
        for i, (item, key) in enumerate(zip(items, keys))
    ]
    if jobs == 1 or len(items) <= 1:
        return _serial_map(fn, states, policy, fail_fast, on_result)

    results: List[Any] = [None] * len(states)
    failures: List[TrialFailure] = []
    pending: List[_TrialState] = list(states)
    inflight: Dict[Future, Any] = {}
    pool: Optional[ProcessPoolExecutor] = None

    def fail(state: _TrialState) -> Optional[TrialFailure]:
        """Quarantine ``state`` (or schedule its retry); returns the failure."""
        if state.counted >= policy.max_attempts:
            failure = TrialFailure(
                state.index, state.key, state.attempts, state.permanent_error(policy)
            )
            failures.append(failure)
            results[state.index] = failure
            return failure
        state.retry_at = time.monotonic() + backoff_delay(
            policy, state.key, state.counted
        )
        metric_inc("resilience.retries")
        pending.append(state)
        return None

    try:
        while pending or inflight:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=jobs)
            now = time.monotonic()
            # fill the pool with eligible work (backoff delays respected)
            ready = [s for s in pending if s.retry_at <= now]
            for state in ready:
                if len(inflight) >= jobs:
                    break
                pending.remove(state)
                attempt = len(state.attempts) + 1
                future = pool.submit(
                    _call_with_faults, fn, state.item, state.key, attempt
                )
                inflight[future] = (state, time.monotonic())

            if not inflight:
                # every remaining item is waiting out its backoff
                next_at = min(s.retry_at for s in pending)
                with _span("resilience.backoff", waiting=len(pending)):
                    time.sleep(max(_MIN_TICK, next_at - time.monotonic()))
                continue

            # how long we may block: the nearest attempt deadline or retry
            wait_timeout: Optional[float] = None
            if policy.timeout is not None:
                nearest = min(started for (_, started) in inflight.values())
                wait_timeout = max(_MIN_TICK, nearest + policy.timeout - now)
            if pending:
                next_retry = max(_MIN_TICK, min(s.retry_at for s in pending) - now)
                wait_timeout = (
                    next_retry if wait_timeout is None else min(wait_timeout, next_retry)
                )
            done, _ = wait(set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            pool_broken = False
            for future in done:
                state, started = inflight.pop(future)
                elapsed = time.monotonic() - started
                try:
                    value = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    state.record("pool_broken", None, elapsed)
                    failure = fail(state)
                    if failure is not None and fail_fast:
                        raise failure.error
                except KeyboardInterrupt:
                    raise
                # BaseException: the pool re-raises whatever the worker
                # died with, including SystemExit-shaped trial bugs.
                except BaseException as error:
                    state.record("error", error, elapsed)
                    failure = fail(state)
                    if failure is not None and fail_fast:
                        raise failure.error from error
                else:
                    state.record("ok", None, elapsed)
                    results[state.index] = value
                    if on_result is not None:
                        on_result(state.index, value)

            def salvage(future: Future, state: _TrialState, started: float) -> bool:
                """Bank a result that completed between wait() and now."""
                if not future.done() or future.exception() is not None:
                    return False
                state.record("ok", None, time.monotonic() - started)
                results[state.index] = future.result()
                if on_result is not None:
                    on_result(state.index, results[state.index])
                return True

            if pool_broken:
                # the executor is a write-off: every still-inflight future
                # is doomed to the same BrokenProcessPool, so account for
                # them now and respawn.
                for future, (state, started) in list(inflight.items()):
                    if salvage(future, state, started):
                        continue
                    state.record("pool_broken", None, time.monotonic() - started)
                    failure = fail(state)
                    if failure is not None and fail_fast:
                        raise failure.error
                inflight.clear()
                _teardown_pool(pool, kill=True)
                pool = None
                trace_event("resilience.pool_respawn", reason="pool_broken")
                metric_inc("resilience.pool_respawns")
                continue

            # reap attempts that outlived their budget
            if policy.timeout is not None:
                now = time.monotonic()
                timed_out = [
                    (future, state, started)
                    for future, (state, started) in inflight.items()
                    if now - started > policy.timeout
                ]
                if timed_out:
                    reaped = {future for future, _, _ in timed_out}
                    for future, state, started in timed_out:
                        state.record("timeout", None, now - started)
                        failure = fail(state)
                        if failure is not None and fail_fast:
                            raise failure.error
                    # innocent cohabitants are preempted, not penalised
                    for future, (state, started) in inflight.items():
                        if future in reaped:
                            continue
                        if salvage(future, state, started):
                            continue
                        state.record("preempted", None, now - started)
                        state.retry_at = 0.0
                        pending.append(state)
                    inflight.clear()
                    # the only way to stop a running task is to kill its
                    # worker; the pool goes with it.
                    _teardown_pool(pool, kill=True)
                    pool = None
                    trace_event("resilience.pool_respawn", reason="timeout")
                    metric_inc("resilience.pool_respawns")
    finally:
        if pool is not None:
            _teardown_pool(pool, kill=True)

    failures.sort(key=lambda f: f.index)
    return SweepOutcome(results=results, failures=failures, policy=policy)
