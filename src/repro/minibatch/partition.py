"""METIS-free graph partitioning for Cluster-GCN-style minibatch training.

:class:`ClusterPartitioner` splits the node set into ``num_parts`` balanced
parts by growing each part with a seeded breadth-first search over the CSR
adjacency: BFS keeps most of a neighbourhood inside one part, which is what
keeps the edge cut — and therefore the information lost by training on
induced blocks — low, without depending on METIS.  The resulting
:class:`GraphPartition` is deterministic for a given seed and reusable
across epochs (and trainers): partitioning is paid once per graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.graph.sparse import SparseAdjacency, as_sparse_adjacency

__all__ = ["ClusterPartitioner", "GraphPartition"]


@dataclass
class GraphPartition:
    """A disjoint cover of the node set, plus its quality diagnostics."""

    #: sorted node-id arrays; disjoint, union = all nodes.
    parts: List[np.ndarray]
    num_nodes: int
    #: fraction of (directed) adjacency entries crossing part boundaries.
    edge_cut_fraction: float

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    def part_of(self) -> np.ndarray:
        """(N,) array mapping every node to its part index."""
        assignment = np.full(self.num_nodes, -1, dtype=np.int64)
        for index, part in enumerate(self.parts):
            assignment[part] = index
        return assignment

    def sizes(self) -> List[int]:
        return [int(part.shape[0]) for part in self.parts]


class ClusterPartitioner:
    """Greedy seeded-BFS edge-cut partitioner over a CSR adjacency.

    Parameters
    ----------
    num_parts:
        Number of parts to produce (parts never exceed
        ``ceil(N / num_parts)`` nodes; trailing parts may be smaller, and
        fewer parts are returned when the graph has fewer nodes).
    seed:
        Controls the BFS start nodes, making the partition — and every
        minibatch sequence built on it — deterministic and reproducible
        across processes.
    """

    def __init__(self, num_parts: int, seed: int = 0) -> None:
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        self.num_parts = int(num_parts)
        self.seed = int(seed)

    def partition(
        self, adjacency: Union[np.ndarray, SparseAdjacency]
    ) -> GraphPartition:
        """Partition the node set of ``adjacency``."""
        sparse = as_sparse_adjacency(adjacency)
        num_nodes = sparse.num_nodes
        if num_nodes == 0:
            return GraphPartition(parts=[], num_nodes=0, edge_cut_fraction=0.0)
        num_parts = min(self.num_parts, num_nodes)
        target = -(-num_nodes // num_parts)  # ceil division
        rng = np.random.default_rng([self.seed, num_nodes, num_parts])

        assignment = np.full(num_nodes, -1, dtype=np.int64)
        # Visit candidates in a seeded random order; BFS pulls whole
        # neighbourhoods into the current part ahead of this order.
        visit_order = rng.permutation(num_nodes)
        cursor = 0
        parts: List[np.ndarray] = []
        indptr, indices = sparse.indptr, sparse.indices
        for part_index in range(num_parts):
            members: List[int] = []
            queue: deque = deque()
            while len(members) < target:
                if not queue:
                    # (Re)start BFS from the next unassigned node, if any.
                    while cursor < num_nodes and assignment[visit_order[cursor]] >= 0:
                        cursor += 1
                    if cursor == num_nodes:
                        break
                    start = int(visit_order[cursor])
                    assignment[start] = part_index
                    members.append(start)
                    queue.append(start)
                    continue
                node = queue.popleft()
                for neighbor in indices[indptr[node] : indptr[node + 1]]:
                    if len(members) >= target:
                        break
                    if assignment[neighbor] < 0:
                        assignment[neighbor] = part_index
                        members.append(int(neighbor))
                        queue.append(int(neighbor))
            if members:
                parts.append(np.sort(np.asarray(members, dtype=np.int64)))
        # The per-part target caps sizes, so every node lands in some part.
        rows, cols, _ = sparse.coo()
        if rows.size:
            cut = float(np.count_nonzero(assignment[rows] != assignment[cols]))
            edge_cut_fraction = cut / rows.size
        else:
            edge_cut_fraction = 0.0
        return GraphPartition(
            parts=parts, num_nodes=num_nodes, edge_cut_fraction=edge_cut_fraction
        )
