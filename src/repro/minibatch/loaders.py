"""Minibatch loaders: stream renumbered subgraph blocks to the trainers.

Full-graph R- training runs one forward/backward over the whole adjacency,
whose reconstruction term alone materialises the dense ``(N, N)`` logits
``Z Zᵀ`` — an O(N²) wall every epoch.  The loaders here cut that wall down
to O(B²) per batch by yielding :class:`Minibatch` objects:

* :class:`FullBatchLoader` — the whole graph as a single batch.  This is
  the documented equivalence anchor: driving the minibatch training path
  with it reproduces the legacy full-graph trainer to 1e-10 (the loader
  re-uses exactly the inputs ``model.prepare_inputs`` would build).
* :class:`NeighborLoader` — GraphSAGE-style: a seeded shuffle splits the
  nodes into seed batches, each expanded by ``num_hops`` rounds of
  deterministic fanout-limited neighbour sampling
  (:meth:`~repro.graph.sparse.SparseAdjacency.sample_neighbors`); the block
  is the subgraph induced by seeds + sampled neighbours.
* :class:`ClusterLoader` — Cluster-GCN-style: a reusable
  :class:`~repro.minibatch.partition.ClusterPartitioner` partition, one
  part per batch.  Blocks are precomputed once and only their order is
  reshuffled per epoch, so steady-state epochs do no graph work at all.

Every batch carries its *own* normalised propagation matrix (computed from
the induced block of the original graph, exactly like Cluster-GCN), so the
GCN layers never see global state.  All randomness derives from
``(loader seed, epoch)`` through ``np.random.default_rng`` seed sequences —
equal seeds give identical minibatch sequences in any process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.graph.graph import AttributedGraph
from repro.graph.sparse import (
    SparseAdjacency,
    as_sparse_adjacency,
    propagation_matrix,
)
from repro.minibatch.partition import ClusterPartitioner, GraphPartition
from repro.observability.tracer import span as _span

__all__ = [
    "Minibatch",
    "MinibatchLoader",
    "FullBatchLoader",
    "NeighborLoader",
    "ClusterLoader",
    "build_loader",
    "SAMPLERS",
]

#: sampler names accepted by ``RethinkConfig.sampler`` / ``--sampler``.
SAMPLERS = ("full", "neighbor", "cluster")


@dataclass
class Minibatch:
    """One renumbered subgraph block.

    Row ``i`` of every per-batch array corresponds to the global node
    ``node_ids[i]``; trainers map any global per-node state (decidable set
    Ω, clustering targets, self-supervision graph) through ``node_ids``.
    """

    #: global ids of the block's nodes; defines the local renumbering.
    node_ids: np.ndarray
    #: (B, J) row-normalised feature slice.
    features: np.ndarray
    #: per-batch GCN propagation matrix over the induced block (dense or CSR).
    adj_norm: Union[np.ndarray, SparseAdjacency]
    #: global ids of the seed nodes that spawned the batch (== node_ids for
    #: full-batch and cluster loaders; a prefix of node_ids for neighbour
    #: sampling, where the remaining rows are sampled context).
    seed_ids: np.ndarray
    #: total number of nodes in the underlying graph.
    num_nodes_total: int

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    @property
    def num_seeds(self) -> int:
        return int(self.seed_ids.shape[0])

    def local_indices_of(self, global_mask: np.ndarray) -> np.ndarray:
        """Block-local indices of the nodes flagged by a global (N,) mask."""
        return np.flatnonzero(global_mask[self.node_ids])


class MinibatchLoader:
    """Protocol shared by the loaders: seeded, epoch-indexed batch streams."""

    graph: AttributedGraph
    seed: int

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def batches_per_epoch(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.batches_per_epoch

    def epoch_batches(self, epoch: int) -> Iterator[Minibatch]:
        """Yield the epoch's batches; deterministic in ``(seed, epoch)``."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.__class__.__name__}(batches={self.batches_per_epoch})"


class FullBatchLoader(MinibatchLoader):
    """The entire graph as one batch — the legacy-trainer equivalence anchor.

    ``features`` and ``adj_norm`` are byte-identical to what
    ``model.prepare_inputs(graph)`` builds, so a trainer consuming this
    loader performs exactly the legacy full-graph computation.
    """

    def __init__(self, graph: AttributedGraph, seed: int = 0) -> None:
        self.graph = graph
        self.seed = int(seed)
        node_ids = np.arange(graph.num_nodes, dtype=np.int64)
        self._batch = Minibatch(
            node_ids=node_ids,
            features=graph.row_normalized_features(),
            adj_norm=propagation_matrix(graph.adjacency, self_loops=True),
            seed_ids=node_ids,
            num_nodes_total=graph.num_nodes,
        )

    @property
    def batches_per_epoch(self) -> int:
        return 1

    def epoch_batches(self, epoch: int) -> Iterator[Minibatch]:
        yield self._batch


def _induced_minibatch(
    sparse: SparseAdjacency,
    features: np.ndarray,
    node_ids: np.ndarray,
    seed_ids: np.ndarray,
) -> Minibatch:
    """Build the renumbered block for ``node_ids`` with its own normalisation."""
    with _span("kernel.minibatch_block"):
        block = sparse.induced_subgraph(node_ids)
        return Minibatch(
            node_ids=node_ids,
            features=features[node_ids],
            adj_norm=propagation_matrix(block, self_loops=True),
            seed_ids=seed_ids,
            num_nodes_total=sparse.num_nodes,
        )


class NeighborLoader(MinibatchLoader):
    """GraphSAGE-style seeded neighbour-sampling loader.

    Every epoch: a seeded shuffle splits all nodes into batches of
    ``batch_size`` seeds; each batch's frontier is expanded ``num_hops``
    times with at most ``fanout`` sampled neighbours per frontier node, and
    the batch block is the subgraph induced by the union.  Seeds occupy the
    first ``num_seeds`` rows of each block.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        batch_size: int,
        fanout: int = 10,
        num_hops: int = 2,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if num_hops < 1:
            raise ValueError(f"num_hops must be >= 1, got {num_hops}")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.graph = graph
        self.batch_size = int(batch_size)
        self.fanout = int(fanout)
        self.num_hops = int(num_hops)
        self.seed = int(seed)
        self._sparse = as_sparse_adjacency(graph.adjacency)
        self._features = graph.row_normalized_features()

    @property
    def batches_per_epoch(self) -> int:
        return -(-self.graph.num_nodes // self.batch_size)

    def epoch_batches(self, epoch: int) -> Iterator[Minibatch]:
        rng = np.random.default_rng([self.seed, 11, int(epoch)])
        order = rng.permutation(self.graph.num_nodes)
        for start in range(0, self.graph.num_nodes, self.batch_size):
            seeds = np.sort(order[start : start + self.batch_size]).astype(np.int64)
            block_nodes = seeds
            frontier = seeds
            with _span("kernel.sample_neighbors", hops=self.num_hops):
                for _ in range(self.num_hops):
                    if frontier.size == 0:
                        break
                    _, sampled = self._sparse.sample_neighbors(frontier, self.fanout, rng)
                    frontier = np.setdiff1d(sampled, block_nodes, assume_unique=False)
                    block_nodes = np.concatenate([block_nodes, frontier])
            yield _induced_minibatch(self._sparse, self._features, block_nodes, seeds)

    def describe(self) -> str:
        return (
            f"NeighborLoader(batch_size={self.batch_size}, fanout={self.fanout}, "
            f"num_hops={self.num_hops}, batches={self.batches_per_epoch})"
        )


class ClusterLoader(MinibatchLoader):
    """Cluster-GCN-style loader over a reusable BFS edge-cut partition.

    ``batch_size`` sets the *target part size* (``num_parts =
    ceil(N / batch_size)``); alternatively pass ``num_parts`` or a
    pre-computed :class:`~repro.minibatch.partition.GraphPartition`
    directly.  Each part's renumbered block (features, per-batch
    normalisation) is built once at construction and reused every epoch —
    only the batch order is reshuffled.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        batch_size: Optional[int] = None,
        num_parts: Optional[int] = None,
        seed: int = 0,
        partition: Optional[GraphPartition] = None,
        shuffle: bool = True,
    ) -> None:
        self.graph = graph
        self.seed = int(seed)
        self.shuffle = bool(shuffle)
        self._sparse = as_sparse_adjacency(graph.adjacency)
        self._features = graph.row_normalized_features()
        if partition is None:
            if num_parts is None:
                if batch_size is None:
                    raise ValueError(
                        "ClusterLoader needs a batch_size, a num_parts or a partition"
                    )
                if batch_size < 1:
                    raise ValueError(f"batch_size must be >= 1, got {batch_size}")
                num_parts = max(1, -(-graph.num_nodes // int(batch_size)))
            partition = ClusterPartitioner(num_parts, seed=self.seed).partition(
                self._sparse
            )
        self.partition = partition
        self._batches: List[Minibatch] = [
            _induced_minibatch(self._sparse, self._features, part, part)
            for part in partition.parts
        ]

    @property
    def batches_per_epoch(self) -> int:
        return len(self._batches)

    def epoch_batches(self, epoch: int) -> Iterator[Minibatch]:
        if self.shuffle and len(self._batches) > 1:
            rng = np.random.default_rng([self.seed, 13, int(epoch)])
            order = rng.permutation(len(self._batches))
        else:
            order = np.arange(len(self._batches))
        for index in order:
            yield self._batches[index]

    def describe(self) -> str:
        return (
            f"ClusterLoader(parts={self.batches_per_epoch}, "
            f"edge_cut={self.partition.edge_cut_fraction:.3f})"
        )


def build_loader(
    sampler: str,
    graph: AttributedGraph,
    batch_size: Optional[int] = None,
    fanout: int = 10,
    num_hops: int = 2,
    seed: int = 0,
) -> MinibatchLoader:
    """Build the loader named by ``sampler`` ("full" / "neighbor" / "cluster").

    ``batch_size`` defaults to ``min(N, 256)`` for the sampling loaders;
    the full-batch loader ignores it.
    """
    if sampler not in SAMPLERS:
        raise ValueError(
            f"unknown sampler {sampler!r}; expected one of {', '.join(SAMPLERS)}"
        )
    with _span("minibatch.build_loader", sampler=sampler):
        if sampler == "full":
            return FullBatchLoader(graph, seed=seed)
        if batch_size is None:
            batch_size = min(graph.num_nodes, 256)
        if sampler == "neighbor":
            return NeighborLoader(
                graph, batch_size=batch_size, fanout=fanout, num_hops=num_hops, seed=seed
            )
        return ClusterLoader(graph, batch_size=batch_size, seed=seed)
