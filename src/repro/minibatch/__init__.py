"""repro.minibatch — subgraph sampling loaders between the graph substrate
and the trainers.

The full-graph R- training loop caps the dataset size at whatever a dense
``(N, N)`` reconstruction epoch can afford.  This package streams
*renumbered subgraph blocks* instead:

* :class:`~repro.minibatch.partition.ClusterPartitioner` — METIS-free
  seeded-BFS edge-cut partitioning over the CSR backend, producing a
  reusable :class:`~repro.minibatch.partition.GraphPartition`;
* :class:`~repro.minibatch.loaders.NeighborLoader` /
  :class:`~repro.minibatch.loaders.ClusterLoader` — GraphSAGE-style
  neighbour sampling and Cluster-GCN-style partition batches, both yielding
  :class:`~repro.minibatch.loaders.Minibatch` objects (global node ids,
  renumbered CSR block, feature slice, per-batch normalisation);
* :class:`~repro.minibatch.loaders.FullBatchLoader` — the whole graph as a
  single batch, reproducing the legacy full-graph trainer to 1e-10.

The consumer is ``RethinkTrainer``: set ``RethinkConfig.sampler`` (or pass
``repro-run --sampler cluster --batch-size 1024``) and the clustering phase
runs per-batch while the operators Ξ and Υ keep working on full-graph state
refreshed at epoch boundaries.
"""

from repro.minibatch.loaders import (
    SAMPLERS,
    ClusterLoader,
    FullBatchLoader,
    Minibatch,
    MinibatchLoader,
    NeighborLoader,
    build_loader,
)
from repro.minibatch.partition import ClusterPartitioner, GraphPartition

__all__ = [
    "SAMPLERS",
    "Minibatch",
    "MinibatchLoader",
    "FullBatchLoader",
    "NeighborLoader",
    "ClusterLoader",
    "ClusterPartitioner",
    "GraphPartition",
    "build_loader",
]
