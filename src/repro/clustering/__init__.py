"""Classical clustering substrate: k-means, Gaussian mixtures, assignments."""

from repro.clustering.kmeans import KMeans, kmeans_plus_plus_init
from repro.clustering.gmm import GaussianMixture
from repro.clustering.assignments import (
    hard_to_one_hot,
    soft_assignment_gaussian,
    soft_assignment_student_t,
    soften_assignments,
    target_distribution,
)

__all__ = [
    "KMeans",
    "kmeans_plus_plus_init",
    "GaussianMixture",
    "hard_to_one_hot",
    "soft_assignment_gaussian",
    "soft_assignment_student_t",
    "soften_assignments",
    "target_distribution",
]
