"""Diagonal-covariance Gaussian Mixture Model fitted with EM.

GMM-VGAE (Hui et al., 2020) uses a Gaussian mixture over the latent codes to
capture per-cluster variances; the sampling operator Ξ also uses a diagonal
Gaussian responsibility (Eq. 15) to soften hard assignments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans


class GaussianMixture:
    """EM for a mixture of axis-aligned Gaussians.

    Attributes after :meth:`fit`:

    * ``means_`` — (K, d) component means,
    * ``variances_`` — (K, d) per-dimension variances,
    * ``weights_`` — (K,) mixing proportions,
    * ``responsibilities_`` — (N, K) posterior assignment probabilities.
    """

    def __init__(
        self,
        num_components: int,
        max_iter: int = 100,
        tol: float = 1e-5,
        reg_covar: float = 1e-6,
        seed: int = 0,
    ) -> None:
        self.num_components = int(num_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.reg_covar = float(reg_covar)
        self.seed = int(seed)
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self.responsibilities_: Optional[np.ndarray] = None
        self.log_likelihood_: Optional[float] = None

    # ------------------------------------------------------------------
    def _log_prob(self, data: np.ndarray) -> np.ndarray:
        """(N, K) log densities of each point under each component."""
        n, d = data.shape
        log_probs = np.empty((n, self.num_components))
        for k in range(self.num_components):
            var = self.variances_[k]
            diff = data - self.means_[k]
            log_det = np.sum(np.log(var))
            mahalanobis = np.sum(diff ** 2 / var, axis=1)
            log_probs[:, k] = -0.5 * (d * np.log(2.0 * np.pi) + log_det + mahalanobis)
        return log_probs

    def _e_step(self, data: np.ndarray) -> tuple:
        weighted = self._log_prob(data) + np.log(self.weights_ + 1e-300)
        log_norm = _logsumexp(weighted, axis=1)
        responsibilities = np.exp(weighted - log_norm[:, None])
        return responsibilities, float(log_norm.mean())

    def _m_step(self, data: np.ndarray, responsibilities: np.ndarray) -> None:
        counts = responsibilities.sum(axis=0) + 1e-12
        self.weights_ = counts / data.shape[0]
        self.means_ = (responsibilities.T @ data) / counts[:, None]
        for k in range(self.num_components):
            diff = data - self.means_[k]
            self.variances_[k] = (
                responsibilities[:, k] @ (diff ** 2)
            ) / counts[k] + self.reg_covar

    def fit(self, data: np.ndarray) -> "GaussianMixture":
        """Fit the mixture with EM, initialised from k-means."""
        data = np.asarray(data, dtype=np.float64)
        kmeans = KMeans(self.num_components, num_init=5, seed=self.seed).fit(data)
        self.means_ = kmeans.cluster_centers_.copy()
        self.variances_ = np.ones((self.num_components, data.shape[1]))
        for k in range(self.num_components):
            members = data[kmeans.labels_ == k]
            if members.shape[0] > 1:
                self.variances_[k] = members.var(axis=0) + self.reg_covar
        # np.bincount keeps counts aligned with component indices even when
        # k-means leaves a cluster empty (np.unique would compact the counts
        # and credit them to the wrong components); empty components fall
        # back to the uniform prior so EM can still revive them.
        counts = np.bincount(kmeans.labels_, minlength=self.num_components)
        weights = counts / data.shape[0]
        weights[counts == 0] = 1.0 / self.num_components
        self.weights_ = weights / weights.sum()

        previous = -np.inf
        for _ in range(self.max_iter):
            responsibilities, log_likelihood = self._e_step(data)
            self._m_step(data, responsibilities)
            if abs(log_likelihood - previous) < self.tol:
                break
            previous = log_likelihood
        self.responsibilities_, self.log_likelihood_ = self._e_step(data)
        return self

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Posterior responsibilities for new points."""
        if self.means_ is None:
            raise RuntimeError("GaussianMixture must be fitted first")
        data = np.asarray(data, dtype=np.float64)
        weighted = self._log_prob(data) + np.log(self.weights_ + 1e-300)
        log_norm = _logsumexp(weighted, axis=1)
        return np.exp(weighted - log_norm[:, None])

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard assignments (argmax responsibility)."""
        return np.argmax(self.predict_proba(data), axis=1)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).predict(data)


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = values.max(axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(values - peak), axis=axis)) + np.squeeze(peak, axis=axis)
    return out
