"""Diagonal-covariance Gaussian Mixture Model fitted with EM.

GMM-VGAE (Hui et al., 2020) uses a Gaussian mixture over the latent codes to
capture per-cluster variances; the sampling operator Ξ also uses a diagonal
Gaussian responsibility (Eq. 15) to soften hard assignments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.observability.tracer import span as _span


class GaussianMixture:
    """EM for a mixture of axis-aligned Gaussians.

    Attributes after :meth:`fit`:

    * ``means_`` — (K, d) component means,
    * ``variances_`` — (K, d) per-dimension variances,
    * ``weights_`` — (K,) mixing proportions,
    * ``responsibilities_`` — (N, K) posterior assignment probabilities.
    """

    def __init__(
        self,
        num_components: int,
        max_iter: int = 100,
        tol: float = 1e-5,
        reg_covar: float = 1e-6,
        seed: int = 0,
    ) -> None:
        self.num_components = int(num_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.reg_covar = float(reg_covar)
        self.seed = int(seed)
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self.responsibilities_: Optional[np.ndarray] = None
        self.log_likelihood_: Optional[float] = None

    # ------------------------------------------------------------------
    def _log_prob(
        self, data: np.ndarray, squared: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(N, K) log densities of each point under each component.

        Loop-free: expanding ``Σ_d (x - μ)² / σ²`` into ``x²·(1/σ²) -
        2 x·(μ/σ²) + Σ μ²/σ²`` turns the Mahalanobis terms of every
        component into two GEMMs plus a per-component constant.  ``squared``
        lets the EM loop pass a precomputed ``data ** 2``.
        """
        d = data.shape[1]
        if squared is None:
            squared = data ** 2
        precision = 1.0 / self.variances_  # (K, d)
        log_det = np.sum(np.log(self.variances_), axis=1)  # (K,)
        mahalanobis = squared @ precision.T
        mahalanobis -= 2.0 * data @ (self.means_ * precision).T
        mahalanobis += np.einsum("kd,kd->k", self.means_ ** 2, precision)[None, :]
        return -0.5 * (d * np.log(2.0 * np.pi) + log_det[None, :] + mahalanobis)

    def _e_step(self, data: np.ndarray, squared: Optional[np.ndarray] = None) -> tuple:
        weighted = self._log_prob(data, squared) + np.log(self.weights_ + 1e-300)
        log_norm = _logsumexp(weighted, axis=1)
        responsibilities = np.exp(weighted - log_norm[:, None])
        return responsibilities, float(log_norm.mean())

    def _m_step(
        self,
        data: np.ndarray,
        responsibilities: np.ndarray,
        squared: Optional[np.ndarray] = None,
    ) -> None:
        mass = responsibilities.sum(axis=0)
        counts = mass + 1e-12
        self.weights_ = counts / data.shape[0]
        self.means_ = (responsibilities.T @ data) / counts[:, None]
        # Loop-free variance update: expanding Σ r (x - μ)² / counts turns
        # the weighted second moment into one GEMM.  The cross/mean terms do
        # NOT collapse to exactly -μ² because counts carries a 1e-12
        # stabiliser, so Σ r / counts < 1; keeping the (2 - mass/counts)
        # factor reproduces the per-component loop identically (visible at
        # ~1e-5 for near-empty components).  The subtraction can go
        # marginally negative in floating point, so clamp before adding the
        # regulariser.
        if squared is None:
            squared = data ** 2
        second_moment = (responsibilities.T @ squared) / counts[:, None]
        variances = second_moment - self.means_ ** 2 * (2.0 - mass / counts)[:, None]
        np.maximum(variances, 0.0, out=variances)
        self.variances_ = variances + self.reg_covar

    def fit(self, data: np.ndarray) -> "GaussianMixture":
        """Fit the mixture with EM, initialised from k-means."""
        with _span("kernel.gmm_fit", components=self.num_components):
            return self._fit(data)

    def _fit(self, data: np.ndarray) -> "GaussianMixture":
        data = np.asarray(data, dtype=np.float64)
        kmeans = KMeans(self.num_components, num_init=5, seed=self.seed).fit(data)
        self.means_ = kmeans.cluster_centers_.copy()
        # Per-cluster variances in one scatter-add pass: biased variance
        # E[x²] - E[x]² per component; clusters with fewer than two members
        # keep the unit-variance prior.
        squared = data ** 2
        counts = np.bincount(kmeans.labels_, minlength=self.num_components)
        sums = np.zeros((self.num_components, data.shape[1]))
        sums_sq = np.zeros_like(sums)
        np.add.at(sums, kmeans.labels_, data)
        np.add.at(sums_sq, kmeans.labels_, squared)
        safe = np.maximum(counts, 1)[:, None]
        variances = sums_sq / safe - (sums / safe) ** 2
        np.maximum(variances, 0.0, out=variances)
        self.variances_ = np.where(
            counts[:, None] > 1, variances + self.reg_covar, 1.0
        )
        # np.bincount keeps counts aligned with component indices even when
        # k-means leaves a cluster empty (np.unique would compact the counts
        # and credit them to the wrong components); empty components fall
        # back to the uniform prior so EM can still revive them.
        counts = np.bincount(kmeans.labels_, minlength=self.num_components)
        weights = counts / data.shape[0]
        weights[counts == 0] = 1.0 / self.num_components
        self.weights_ = weights / weights.sum()

        previous = -np.inf
        for _ in range(self.max_iter):
            responsibilities, log_likelihood = self._e_step(data, squared)
            self._m_step(data, responsibilities, squared)
            if abs(log_likelihood - previous) < self.tol:
                break
            previous = log_likelihood
        self.responsibilities_, self.log_likelihood_ = self._e_step(data, squared)
        return self

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Posterior responsibilities for new points."""
        if self.means_ is None:
            raise RuntimeError("GaussianMixture must be fitted first")
        data = np.asarray(data, dtype=np.float64)
        weighted = self._log_prob(data) + np.log(self.weights_ + 1e-300)
        log_norm = _logsumexp(weighted, axis=1)
        return np.exp(weighted - log_norm[:, None])

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard assignments (argmax responsibility)."""
        return np.argmax(self.predict_proba(data), axis=1)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).predict(data)


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = values.max(axis=axis, keepdims=True)
    # A slice that is entirely -inf (zero total mass, possible under extreme
    # reg_covar or degenerate data) would otherwise compute exp(-inf + inf)
    # = nan; anchoring those slices at 0 lets log(sum exp) return the
    # mathematically correct -inf instead.
    anchor = np.where(np.isfinite(peak), peak, 0.0)
    with np.errstate(divide="ignore"):
        summed = np.log(np.sum(np.exp(values - anchor), axis=axis))
    return summed + np.squeeze(anchor, axis=axis)
