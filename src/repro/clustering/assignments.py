"""Clustering assignment utilities.

These implement the exact formulas the paper builds on:

* Eq. (15) — the Gaussian softening of hard assignments used by the sampling
  operator Ξ,
* Eq. (20) — the Student's t soft assignment used by DGAE,
* the DEC-style target distribution associated with the Student's t
  assignment (the "hard" counterpart Q of Appendix B),
* a one-hot encoding of hard labels.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def hard_to_one_hot(labels: np.ndarray, num_clusters: Optional[int] = None) -> np.ndarray:
    """One-hot (N, K) encoding of integer hard labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if num_clusters is None:
        num_clusters = int(labels.max()) + 1
    one_hot = np.zeros((labels.shape[0], num_clusters))
    one_hot[np.arange(labels.shape[0]), labels] = 1.0
    return one_hot


def soft_assignment_gaussian(
    embeddings: np.ndarray,
    centers: np.ndarray,
    variances: Optional[np.ndarray] = None,
    temperature: float = 1.0,
    eps: float = 1e-12,
) -> np.ndarray:
    """Gaussian responsibility matrix of Eq. (15).

    ``p'_ij ∝ exp(-1/(2τ) (z_i - μ_j)^T Σ_j^{-1} (z_i - μ_j))`` with diagonal
    ``Σ_j``.  When ``variances`` is ``None`` unit variances are used, which
    reduces to a softmax over negative squared distances.

    ``temperature`` (τ) rescales the exponent; with ``τ = d`` (the latent
    dimensionality) the exponent becomes a per-dimension average rather than
    a sum, which keeps the confidence scores used by the operator Ξ in a
    useful range on low-dimensional, well-separated embeddings (see
    DESIGN.md §2 on this calibration).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    num_clusters = centers.shape[0]
    if temperature <= 0.0:
        raise ValueError("temperature must be positive")
    if variances is None:
        variances = np.ones_like(centers)
    variances = np.maximum(np.asarray(variances, dtype=np.float64), eps)
    log_scores = np.empty((embeddings.shape[0], num_clusters))
    for k in range(num_clusters):
        diff = embeddings - centers[k]
        log_scores[:, k] = -0.5 * np.sum(diff ** 2 / variances[k], axis=1) / temperature
    log_scores -= log_scores.max(axis=1, keepdims=True)
    scores = np.exp(log_scores)
    return scores / np.maximum(scores.sum(axis=1, keepdims=True), eps)


def soft_assignment_student_t(
    embeddings: np.ndarray, centers: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Student's t (degree 1) soft assignment of Eq. (20) / DEC.

    ``p_ij ∝ (1 + ||z_i - μ_j||²)^{-1}``.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    sq = (
        np.sum(embeddings ** 2, axis=1)[:, None]
        + np.sum(centers ** 2, axis=1)[None, :]
        - 2.0 * embeddings @ centers.T
    )
    np.maximum(sq, 0.0, out=sq)
    scores = 1.0 / (1.0 + sq)
    return scores / np.maximum(scores.sum(axis=1, keepdims=True), eps)


def target_distribution(soft_assignments: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """DEC/DGAE target distribution ``q_ij ∝ p_ij² / Σ_i p_ij``.

    Sharpens the soft assignment; DGAE minimises ``KL(Q || P)`` towards it.
    """
    p = np.asarray(soft_assignments, dtype=np.float64)
    weight = p ** 2 / np.maximum(p.sum(axis=0, keepdims=True), eps)
    return weight / np.maximum(weight.sum(axis=1, keepdims=True), eps)


def soften_assignments(
    assignments: np.ndarray,
    embeddings: np.ndarray,
    centers: Optional[np.ndarray] = None,
    variances: Optional[np.ndarray] = None,
    temperature: Optional[float] = None,
) -> np.ndarray:
    """First guideline of the sampling operator Ξ (Section 4.1).

    If ``assignments`` is already row-stochastic (soft) it is returned
    unchanged; otherwise hard assignments are converted to soft ones with the
    Gaussian responsibility of Eq. (15), estimating per-cluster means and
    diagonal variances from the hard partition when they are not supplied.
    ``temperature`` defaults to the embedding dimensionality (see
    :func:`soft_assignment_gaussian`).
    """
    assignments = np.asarray(assignments, dtype=np.float64)
    if assignments.ndim != 2:
        raise ValueError("assignments must be an (N, K) matrix")
    is_soft = np.allclose(assignments.sum(axis=1), 1.0) and np.any(
        (assignments > 0.0) & (assignments < 1.0)
    )
    if is_soft:
        return assignments
    hard = np.argmax(assignments, axis=1)
    num_clusters = assignments.shape[1]
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if temperature is None:
        temperature = float(embeddings.shape[1])
    if centers is None or variances is None:
        centers, variances = estimate_cluster_moments(embeddings, hard, num_clusters)
    return soft_assignment_gaussian(embeddings, centers, variances, temperature=temperature)


def estimate_cluster_moments(
    embeddings: np.ndarray, hard_labels: np.ndarray, num_clusters: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cluster means and diagonal variances from a hard partition.

    Empty clusters fall back to the global mean/variance so downstream soft
    assignments remain well defined.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    hard_labels = np.asarray(hard_labels, dtype=np.int64)
    global_mean = embeddings.mean(axis=0)
    global_var = embeddings.var(axis=0) + 1e-6
    centers = np.tile(global_mean, (num_clusters, 1))
    variances = np.tile(global_var, (num_clusters, 1))
    for k in range(num_clusters):
        members = embeddings[hard_labels == k]
        if members.shape[0] > 0:
            centers[k] = members.mean(axis=0)
        if members.shape[0] > 1:
            variances[k] = members.var(axis=0) + 1e-6
    return centers, variances
