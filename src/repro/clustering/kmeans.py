"""K-means clustering with k-means++ initialisation.

K-means plays two roles in the paper: it initialises the embedded cluster
centres of DGAE (Appendix B) and the GMM of GMM-VGAE, and the embedded
k-means loss is the clustering loss analysed by Proposition 2 and Theorem 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def kmeans_plus_plus_init(
    data: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if num_clusters > n:
        raise ValueError("more clusters than points")
    centers = np.empty((num_clusters, data.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with an existing centre.
            choice = int(rng.integers(0, n))
        else:
            probs = closest_sq / total
            choice = int(rng.choice(n, p=probs))
        centers[index] = data[choice]
        dist_sq = np.sum((data - centers[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


class KMeans:
    """Lloyd's algorithm with k-means++ init and multiple restarts."""

    def __init__(
        self,
        num_clusters: int,
        num_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = int(num_clusters)
        self.num_init = int(num_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = int(seed)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    # ------------------------------------------------------------------
    def _single_run(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        centers = kmeans_plus_plus_init(data, self.num_clusters, rng)
        labels = np.zeros(data.shape[0], dtype=np.int64)
        for _ in range(self.max_iter):
            distances = _pairwise_sq_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.num_clusters):
                members = data[labels == cluster]
                if members.shape[0] > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the farthest point.
                    farthest = int(np.argmax(distances.min(axis=1)))
                    new_centers[cluster] = data[farthest]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift < self.tol:
                break
        distances = _pairwise_sq_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(data.shape[0]), labels].sum())
        return centers, labels, inertia

    def fit(self, data: np.ndarray) -> "KMeans":
        """Run k-means and store centres, labels and inertia."""
        data = np.asarray(data, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        best: Optional[Tuple[np.ndarray, np.ndarray, float]] = None
        for _ in range(self.num_init):
            centers, labels, inertia = self._single_run(data, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit and return hard cluster labels."""
        return self.fit(data).labels_

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest learned centre."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans must be fitted before predict()")
        distances = _pairwise_sq_distances(np.asarray(data, dtype=np.float64), self.cluster_centers_)
        return np.argmin(distances, axis=1)


def _pairwise_sq_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(N, K) matrix of squared distances between points and centres."""
    data_sq = np.sum(data ** 2, axis=1)[:, None]
    centers_sq = np.sum(centers ** 2, axis=1)[None, :]
    d2 = data_sq + centers_sq - 2.0 * data @ centers.T
    np.maximum(d2, 0.0, out=d2)
    return d2
