"""K-means clustering with k-means++ initialisation.

K-means plays two roles in the paper: it initialises the embedded cluster
centres of DGAE (Appendix B) and the GMM of GMM-VGAE, and the embedded
k-means loss is the clustering loss analysed by Proposition 2 and Theorem 1.

All ``num_init`` restarts run *simultaneously* as batched ``(R, K, d)``
array operations: one seeding pass draws the k-means++ centres for every
restart at once (incrementally maintained closest-centre distances, inverse
CDF sampling), and one batched Lloyd loop updates every still-active restart
per iteration with a bincount M-step.  There are no per-cluster or
per-restart Python loops anywhere on the hot path; see
``benchmarks/bench_clustering.py`` for the speedup over the historical
loop kernels and ``tests/test_kernel_equivalence.py`` for the numerical
equivalence guarantee against a loop reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.observability.tracer import span as _span


def kmeans_plus_plus_init(
    data: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007) for a single restart."""
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if num_clusters > n:
        raise ValueError("more clusters than points")
    centers = np.empty((num_clusters, data.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with an existing centre.
            choice = int(rng.integers(0, n))
        else:
            probs = closest_sq / total
            choice = int(rng.choice(n, p=probs))
        centers[index] = data[choice]
        dist_sq = np.sum((data - centers[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


def batched_kmeans_plus_plus_init(
    data: np.ndarray,
    num_clusters: int,
    num_restarts: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding for ``num_restarts`` restarts at once.

    Returns a ``(R, K, d)`` array of initial centres.  The randomness is
    consumed as flat arrays — one ``integers`` draw for the first centres,
    then one ``random`` draw per subsequent centre — and each probability
    draw is resolved by inverse-CDF search over the incrementally maintained
    closest-centre distances, so every restart sees the standard k-means++
    distribution without any per-restart Python loop.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if num_clusters > n:
        raise ValueError("more clusters than points")
    centers = np.empty((num_restarts, num_clusters, data.shape[1]))
    firsts = rng.integers(0, n, size=num_restarts)
    centers[:, 0] = data[firsts]
    data_sq = np.einsum("nd,nd->n", data, data)
    closest_sq = _sq_distances_to_centers(data, centers[:, 0], data_sq)
    for index in range(1, num_clusters):
        cumulative = np.cumsum(closest_sq, axis=1)
        totals = cumulative[:, -1]
        draws = rng.random(num_restarts)
        # First point whose cumulative mass reaches the drawn quantile.
        choices = np.sum(cumulative < (draws * totals)[:, None], axis=1)
        np.minimum(choices, n - 1, out=choices)
        degenerate = totals <= 0.0
        if np.any(degenerate):
            # All remaining points coincide with an existing centre; fall
            # back to a uniform pick driven by the same draw.
            uniform = np.minimum((draws * n).astype(np.int64), n - 1)
            choices = np.where(degenerate, uniform, choices)
        centers[:, index] = data[choices]
        dist_sq = _sq_distances_to_centers(data, centers[:, index], data_sq)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


class KMeans:
    """Lloyd's algorithm with k-means++ init and batched multiple restarts."""

    def __init__(
        self,
        num_clusters: int,
        num_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = int(num_clusters)
        self.num_init = int(num_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = int(seed)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "KMeans":
        """Run all restarts as one batched computation and keep the best."""
        with _span(
            "kernel.kmeans_fit", restarts=self.num_init, clusters=self.num_clusters
        ):
            return self._fit(data)

    def _fit(self, data: np.ndarray) -> "KMeans":
        data = np.asarray(data, dtype=np.float64)
        n, dim = data.shape
        num_restarts = self.num_init
        num_clusters = self.num_clusters
        rng = np.random.default_rng(self.seed)
        centers = batched_kmeans_plus_plus_init(data, num_clusters, num_restarts, rng)
        data_sq = np.einsum("nd,nd->n", data, data)
        # One ones-augmented copy of the data: the trailing 1-column turns
        # the per-centre |c|² offsets into one extra GEMM row, so the whole
        # E-step is a single (N, d+1) @ (d+1, A·K) matrix product.
        augmented = np.concatenate([data, np.ones((n, 1))], axis=1)
        point_columns = np.tile(np.arange(n), num_restarts)

        active = np.arange(num_restarts)
        for _ in range(self.max_iter):
            subset = centers[active]  # (A, K, d)
            num_active = subset.shape[0]
            partial = _partial_distance_block(augmented, subset)  # (N, A, K)
            labels = np.ascontiguousarray(np.argmin(partial, axis=2).T)  # (A, N)
            flat = (labels + np.arange(num_active)[:, None] * num_clusters).ravel()
            counts = np.bincount(flat, minlength=num_active * num_clusters)
            # M-step: scatter the points into per-restart one-hot membership
            # matrices and reduce with one batched GEMM.
            membership = np.zeros((num_active, num_clusters, n))
            membership.reshape(num_active * num_clusters, n)[
                flat, point_columns[: num_active * n]
            ] = 1.0
            sums = membership @ data  # (A, K, d)
            counts = counts.reshape(num_active, num_clusters)
            # Empty clusters divide by 1 and are overwritten just below.
            sums /= np.maximum(counts, 1)[:, :, None]
            new_centers = sums
            empty = counts == 0
            if np.any(empty):
                # Re-seed empty clusters at the restart's farthest point
                # (distance to the restart's previous centres); only the
                # restarts that actually have an empty cluster pay for the
                # min-distance pass.
                with_empty = np.flatnonzero(empty.any(axis=1))
                nearest = np.maximum(
                    partial[:, with_empty, :].min(axis=2) + data_sq[:, None], 0.0
                )
                farthest = np.argmax(nearest, axis=0)  # (len(with_empty),)
                restart_index, _ = np.nonzero(empty[with_empty])
                new_centers[empty] = data[farthest][restart_index]
            subset -= new_centers
            shifts = np.sqrt(np.einsum("rkd,rkd->r", subset, subset))
            centers[active] = new_centers
            active = active[shifts >= self.tol]
            if active.size == 0:
                break

        partial = _partial_distance_block(augmented, centers)  # (N, R, K)
        labels = np.argmin(partial, axis=2)  # (N, R)
        point_costs = np.take_along_axis(partial, labels[:, :, None], axis=2)[:, :, 0]
        point_costs += data_sq[:, None]
        np.maximum(point_costs, 0.0, out=point_costs)
        inertias = point_costs.sum(axis=0)
        best = int(np.argmin(inertias))
        self.cluster_centers_ = centers[best]
        self.labels_ = np.ascontiguousarray(labels[:, best])
        self.inertia_ = float(inertias[best])
        return self

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit and return hard cluster labels."""
        return self.fit(data).labels_

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest learned centre."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans must be fitted before predict()")
        distances = _pairwise_sq_distances(np.asarray(data, dtype=np.float64), self.cluster_centers_)
        return np.argmin(distances, axis=1)


def _pairwise_sq_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(N, K) matrix of squared distances between points and centres."""
    data_sq = np.sum(data ** 2, axis=1)[:, None]
    centers_sq = np.sum(centers ** 2, axis=1)[None, :]
    d2 = data_sq + centers_sq - 2.0 * data @ centers.T
    np.maximum(d2, 0.0, out=d2)
    return d2


def _sq_distances_to_centers(
    data: np.ndarray, centers: np.ndarray, data_sq: np.ndarray
) -> np.ndarray:
    """(R, N) squared distances from every point to one centre per restart."""
    centers_sq = np.einsum("rd,rd->r", centers, centers)
    d2 = data_sq[None, :] + centers_sq[:, None] - 2.0 * centers @ data.T
    np.maximum(d2, 0.0, out=d2)
    return d2


def _partial_distance_block(augmented: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(N, R, K) squared distances minus the per-point ``|x|²`` constant.

    ``augmented`` is the data with a trailing ones column; stacking
    ``-2 cᵀ`` over ``|c|²`` makes ``|c|² - 2 x·c`` a single GEMM across all
    restarts at once.  Dropping the ``|x|²`` term (constant across centres)
    keeps the argmin over centres intact while saving a full pass over the
    (N, R, K) block; callers add ``data_sq`` back wherever true distances
    are needed.
    """
    num_restarts, num_clusters, dim = centers.shape
    weights = np.empty((dim + 1, num_restarts * num_clusters))
    weights[:dim] = -2.0 * centers.reshape(num_restarts * num_clusters, dim).T
    weights[dim] = np.einsum("rkd,rkd->rk", centers, centers).ravel()
    block = augmented @ weights
    return block.reshape(augmented.shape[0], num_restarts, num_clusters)
