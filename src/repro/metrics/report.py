"""Bundled ACC/NMI/ARI evaluation, the triple reported in every paper table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.metrics.accuracy import clustering_accuracy
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.nmi import normalized_mutual_information


@dataclass(frozen=True)
class ClusteringReport:
    """ACC / NMI / ARI triple, stored as fractions in [0, 1] (ARI in [-1, 1])."""

    accuracy: float
    nmi: float
    ari: float

    def as_dict(self) -> Dict[str, float]:
        return {"acc": self.accuracy, "nmi": self.nmi, "ari": self.ari}

    def as_percentages(self) -> Dict[str, float]:
        """Values scaled to percentages, matching the paper's tables."""
        return {key: 100.0 * value for key, value in self.as_dict().items()}

    def __str__(self) -> str:
        values = self.as_percentages()
        return f"ACC={values['acc']:.1f} NMI={values['nmi']:.1f} ARI={values['ari']:.1f}"


def evaluate_clustering(true_labels: np.ndarray, predicted_labels: np.ndarray) -> ClusteringReport:
    """Compute the ACC/NMI/ARI triple for a predicted partition."""
    return ClusteringReport(
        accuracy=clustering_accuracy(true_labels, predicted_labels),
        nmi=normalized_mutual_information(true_labels, predicted_labels),
        ari=adjusted_rand_index(true_labels, predicted_labels),
    )
