"""Hungarian (Kuhn-Munkres) assignment and label alignment.

The paper uses the Hungarian algorithm ``AH`` to map predicted cluster ids to
ground-truth classes both for the ACC metric and for building the supervised
counterpart ``Q' = AH(Q, P)`` used by the Λ_FR / Λ_FD diagnostics.

A self-contained O(n³) implementation is provided; when scipy is available
its ``linear_sum_assignment`` is used as the fast path and the pure-Python
version acts as a cross-check in tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

try:  # pragma: no cover - import guard
    from scipy.optimize import linear_sum_assignment as _scipy_lsa
except ImportError:  # pragma: no cover
    _scipy_lsa = None


def hungarian_algorithm(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Minimum-cost assignment on a square or rectangular cost matrix.

    Pure numpy/python Jonker-style shortest augmenting path implementation.
    Returns ``(row_indices, col_indices)`` like scipy's
    ``linear_sum_assignment``.
    """
    cost = np.asarray(cost, dtype=np.float64)
    transposed = False
    if cost.shape[0] > cost.shape[1]:
        cost = cost.T
        transposed = True
    n, m = cost.shape
    # Potentials and matching arrays (1-indexed internally).
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    p = np.zeros(m + 1, dtype=int)  # p[j] = row matched to column j
    way = np.zeros(m + 1, dtype=int)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(m + 1, np.inf)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = np.inf
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while True:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
            if j0 == 0:
                break
    rows: List[int] = []
    cols: List[int] = []
    for j in range(1, m + 1):
        if p[j] != 0:
            rows.append(p[j] - 1)
            cols.append(j - 1)
    rows_arr = np.array(rows, dtype=int)
    cols_arr = np.array(cols, dtype=int)
    order = np.argsort(rows_arr)
    rows_arr, cols_arr = rows_arr[order], cols_arr[order]
    if transposed:
        return cols_arr, rows_arr
    return rows_arr, cols_arr


def hungarian_matching(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> Dict[int, int]:
    """Best mapping from predicted cluster ids to ground-truth class ids.

    Maximises the number of correctly matched samples.  Returns a dictionary
    ``{predicted_id: true_id}`` covering every predicted id.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays must have the same shape")
    num_classes = int(max(true_labels.max(), predicted_labels.max())) + 1
    contingency = np.zeros((num_classes, num_classes))
    np.add.at(contingency, (predicted_labels, true_labels), 1.0)
    cost = contingency.max() - contingency
    if _scipy_lsa is not None:
        rows, cols = _scipy_lsa(cost)
    else:  # pragma: no cover - exercised only without scipy
        rows, cols = hungarian_algorithm(cost)
    return {int(r): int(c) for r, c in zip(rows, cols)}


def align_labels(true_labels: np.ndarray, predicted_labels: np.ndarray) -> np.ndarray:
    """Relabel predictions with the Hungarian-optimal mapping to true classes.

    This is the paper's ``Q' = AH(Q, P)`` operation expressed on hard labels:
    the returned array lives in the ground-truth label space.
    """
    mapping = hungarian_matching(true_labels, predicted_labels)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    lookup = np.zeros(max(mapping) + 1, dtype=np.int64)
    lookup[list(mapping.keys())] = list(mapping.values())
    return np.asarray(np.take(lookup, predicted_labels))
