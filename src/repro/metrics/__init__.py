"""Clustering evaluation metrics: ACC (Hungarian-matched), NMI, ARI."""

from repro.metrics.hungarian import hungarian_matching, align_labels
from repro.metrics.accuracy import clustering_accuracy
from repro.metrics.nmi import normalized_mutual_information
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.report import ClusteringReport, evaluate_clustering

__all__ = [
    "hungarian_matching",
    "align_labels",
    "clustering_accuracy",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "ClusteringReport",
    "evaluate_clustering",
]
