"""Normalized Mutual Information (NMI) between two partitions."""

from __future__ import annotations

import numpy as np


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-np.sum(probs * np.log(probs)))


def contingency_matrix(true_labels: np.ndarray, predicted_labels: np.ndarray) -> np.ndarray:
    """(num_true, num_pred) matrix of co-occurrence counts."""
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    true_ids, true_inv = np.unique(true_labels, return_inverse=True)
    pred_ids, pred_inv = np.unique(predicted_labels, return_inverse=True)
    matrix = np.zeros((true_ids.shape[0], pred_ids.shape[0]))
    np.add.at(matrix, (true_inv, pred_inv), 1.0)
    return matrix


def normalized_mutual_information(
    true_labels: np.ndarray, predicted_labels: np.ndarray, average: str = "arithmetic"
) -> float:
    """NMI with arithmetic-mean normalisation (sklearn's default).

    ``NMI = 2 I(T; P) / (H(T) + H(P))`` for ``average="arithmetic"`` or
    ``I / sqrt(H(T) H(P))`` for ``average="geometric"``.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays must have the same shape")
    contingency = contingency_matrix(true_labels, predicted_labels)
    n = contingency.sum()
    if n == 0:
        raise ValueError("cannot compute NMI of empty label arrays")
    joint = contingency / n
    marginal_true = joint.sum(axis=1)
    marginal_pred = joint.sum(axis=0)
    outer = np.outer(marginal_true, marginal_pred)
    nonzero = joint > 0
    mutual_information = float(
        np.sum(joint[nonzero] * (np.log(joint[nonzero]) - np.log(outer[nonzero])))
    )
    h_true = _entropy(contingency.sum(axis=1))
    h_pred = _entropy(contingency.sum(axis=0))
    if h_true == 0.0 and h_pred == 0.0:
        return 1.0
    if average == "arithmetic":
        denom = 0.5 * (h_true + h_pred)
    elif average == "geometric":
        denom = float(np.sqrt(h_true * h_pred))
    else:
        raise ValueError(f"unknown average: {average!r}")
    if denom == 0.0:
        return 0.0
    return float(np.clip(mutual_information / denom, 0.0, 1.0))
