"""Clustering accuracy (ACC) with optimal label matching."""

from __future__ import annotations

import numpy as np

from repro.metrics.hungarian import align_labels


def clustering_accuracy(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Fraction of samples correctly clustered under the best label permutation.

    ``ACC = max_perm (1/N) Σ 1[y_i == perm(p_i)]`` — the permutation is found
    with the Hungarian algorithm, exactly as in the paper's evaluation.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    if true_labels.size == 0:
        raise ValueError("cannot compute accuracy of empty label arrays")
    aligned = align_labels(true_labels, predicted_labels)
    return float(np.mean(aligned == true_labels))
