"""Adjusted Rand Index (ARI) between two partitions."""

from __future__ import annotations

import numpy as np

from repro.metrics.nmi import contingency_matrix


def _comb2(values: np.ndarray) -> np.ndarray:
    """Vectorised "n choose 2"."""
    values = np.asarray(values, dtype=np.float64)
    return values * (values - 1.0) / 2.0


def adjusted_rand_index(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """ARI (Hubert & Arabie, 1985): chance-corrected pair-counting agreement.

    Returns 1.0 for identical partitions, ~0 for random partitions and can be
    negative for partitions that disagree more than chance.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays must have the same shape")
    if true_labels.size == 0:
        raise ValueError("cannot compute ARI of empty label arrays")
    contingency = contingency_matrix(true_labels, predicted_labels)
    sum_comb_cells = float(_comb2(contingency).sum())
    sum_comb_rows = float(_comb2(contingency.sum(axis=1)).sum())
    sum_comb_cols = float(_comb2(contingency.sum(axis=0)).sum())
    total_pairs = float(_comb2(np.array([true_labels.size])).sum())
    if total_pairs == 0:
        return 1.0
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    max_index = 0.5 * (sum_comb_rows + sum_comb_cols)
    denom = max_index - expected
    if denom == 0.0:
        return 1.0 if sum_comb_cells == expected else 0.0
    return float((sum_comb_cells - expected) / denom)
