"""Clustering / supervision graphs and the Hungarian-aligned oracle Q'.

The theoretical analysis (Section 3) defines three weighted graphs:

* the self-supervision graph ``A_self`` (the input adjacency),
* the clustering graph ``A_clus`` with ``1/|C_k|`` weights inside each
  *predicted* cluster,
* the supervision graph ``A_sup`` with ``1/|C_k|`` weights inside each
  *ground-truth* cluster.

The Λ_FR / Λ_FD diagnostics additionally need ``Q' = AH(Q, P)`` — the
ground-truth assignment matrix expressed in the predicted-cluster index
space via the Hungarian algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.hungarian import hungarian_matching


def membership_graph(labels: np.ndarray, num_clusters: Optional[int] = None) -> np.ndarray:
    """Weighted block graph with ``1/|C_k|`` entries inside each cluster.

    This is the common construction behind ``A_clus`` and ``A_sup``; the
    diagonal is included, matching the paper's definition.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    if num_clusters is None:
        num_clusters = int(labels.max()) + 1
    graph = np.zeros((n, n))
    for cluster in range(num_clusters):
        members = np.flatnonzero(labels == cluster)
        if members.size == 0:
            continue
        weight = 1.0 / members.size
        graph[np.ix_(members, members)] = weight
    return graph


def clustering_graph(assignments: np.ndarray) -> np.ndarray:
    """``A_clus`` built from a (N, K) assignment matrix (soft or hard)."""
    assignments = np.asarray(assignments)
    hard = np.argmax(assignments, axis=1)
    return membership_graph(hard, num_clusters=assignments.shape[1])


def supervision_graph(labels: np.ndarray) -> np.ndarray:
    """``A_sup`` built from ground-truth labels."""
    return membership_graph(labels)


def aligned_oracle_assignments(
    true_labels: np.ndarray, predicted_assignments: np.ndarray
) -> np.ndarray:
    """The oracle assignment matrix ``Q' = AH(Q, P)``.

    Returns an (N, K) one-hot matrix in the *predicted* cluster index space:
    each node is assigned to the predicted cluster that the Hungarian
    matching pairs with its ground-truth class.  Ground-truth classes that
    receive no predicted cluster (possible when K_pred < K_true) keep their
    own index modulo K.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_assignments = np.asarray(predicted_assignments)
    num_clusters = predicted_assignments.shape[1]
    predicted_hard = np.argmax(predicted_assignments, axis=1)
    mapping = hungarian_matching(true_labels, predicted_hard)
    # Invert: ground-truth class -> predicted cluster index.
    inverse = {true: pred for pred, true in mapping.items()}
    oracle = np.zeros((true_labels.shape[0], num_clusters))
    for node, label in enumerate(true_labels):
        column = inverse.get(int(label), int(label) % num_clusters)
        if column >= num_clusters:
            # The Hungarian matching may pair a ground-truth class with a
            # predicted id that never occurs (K_pred < K_true); fold it back.
            column = int(label) % num_clusters
        oracle[node, column] = 1.0
    return oracle
