"""Feature Randomness and Feature Drift diagnostics.

Two families of metrics from the paper:

* the *training* metrics Λ_FR (Eq. 4) and Λ_FD (Eq. 7) — cosine similarity
  between parameter gradients of the pseudo-supervised loss and of its
  supervised (oracle) counterpart; computed on a live model with the autodiff
  engine;
* the *elementary* per-node metrics Λ'_FR and Λ'_FD (Definitions 1-2) — inner
  products between gradients of the graph-Laplacian losses with respect to a
  single embedded point; used by the theory experiments around Theorems 2-5.

Also provides :func:`graph_filter_impact`, the function ``P(x_i)`` of
Eq. (12) that quantifies whether the graph convolution helps clustering a
node.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.graph.laplacian import normalize_adjacency
from repro.models.base import GAEClusteringModel
from repro.nn.tensor import Tensor


def gradient_cosine(
    model: GAEClusteringModel,
    loss_fn_a: Callable[[], Tensor],
    loss_fn_b: Callable[[], Tensor],
    eps: float = 1e-12,
) -> float:
    """Cosine similarity between the parameter gradients of two scalar losses.

    Each loss function is evaluated and back-propagated independently; the
    model's gradients are cleared before and after so the measurement never
    leaks into training.
    """

    def grad_of(loss_fn: Callable[[], Tensor]) -> np.ndarray:
        model.zero_grad()
        loss = loss_fn()
        loss.backward()
        gradient = model.gradient_vector()
        model.zero_grad()
        # The measurement graph would otherwise linger as cyclic garbage
        # until the GC runs (REP003); diagnostics fire every few epochs, so
        # the piles add up.
        loss.release_graph()
        return gradient

    grad_a = grad_of(loss_fn_a)
    grad_b = grad_of(loss_fn_b)
    norm = np.linalg.norm(grad_a) * np.linalg.norm(grad_b)
    if norm < eps:
        return 0.0
    return float(np.clip(np.dot(grad_a, grad_b) / norm, -1.0, 1.0))


def feature_randomness_metric(
    model: GAEClusteringModel,
    features: np.ndarray,
    adj_norm: np.ndarray,
    oracle_target: np.ndarray,
    reliable_nodes: Optional[np.ndarray] = None,
) -> float:
    """Λ_FR (Eq. 4) for a second-group model.

    Compares the gradient of the model's clustering loss evaluated with its
    own (pseudo-supervised) target — restricted to the decidable set Ω when
    ``reliable_nodes`` is given — against the gradient of the same loss with
    the Hungarian-aligned oracle assignments ``Q'`` on all nodes.  Values lie
    in [-1, 1]; higher means less Feature Randomness.
    """
    if getattr(model, "group", None) != "second":
        raise TypeError(
            "feature_randomness_metric requires a second-group model (one "
            "with a differentiable clustering loss and soft assignment)"
        )

    def pseudo_loss() -> Tensor:
        z = model.encode(features, adj_norm, sample=False)
        return model.clustering_loss(z, reliable_nodes)

    def oracle_loss() -> Tensor:
        z = model.encode(features, adj_norm, sample=False)
        return model.clustering_loss_with_target(z, oracle_target, None)

    return gradient_cosine(model, pseudo_loss, oracle_loss)


def feature_drift_metric(
    model: GAEClusteringModel,
    features: np.ndarray,
    adj_norm: np.ndarray,
    self_supervision_graph: np.ndarray,
    oracle_graph: np.ndarray,
) -> float:
    """Λ_FD (Eq. 7).

    Compares the gradient of the reconstruction loss against the current
    (operator-built) self-supervision graph with the gradient of the same
    loss against the oracle clustering-oriented graph ``Υ(A, Q', V)``.
    Values lie in [-1, 1]; higher means less Feature Drift.
    """

    def pseudo_loss() -> Tensor:
        z = model.encode(features, adj_norm, sample=False)
        return model.reconstruction_loss(z, self_supervision_graph)

    def oracle_loss() -> Tensor:
        z = model.encode(features, adj_norm, sample=False)
        return model.reconstruction_loss(z, oracle_graph)

    return gradient_cosine(model, pseudo_loss, oracle_loss)


# ----------------------------------------------------------------------
# elementary per-node metrics (Definitions 1-2)
# ----------------------------------------------------------------------
def _laplacian_gradient(embeddings: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-node gradient of ``L_C(Z, A')``: ``∂L/∂z_i = Σ_j a'_ij (z_i - z_j)``.

    Valid for symmetric weight matrices (A_clus, A_sup, normalised A_self).
    """
    z = np.asarray(embeddings, dtype=np.float64)
    a = np.asarray(weights, dtype=np.float64)
    degrees = a.sum(axis=1)
    return degrees[:, None] * z - a @ z


def elementary_fr(
    embeddings: np.ndarray, clustering_weights: np.ndarray, supervision_weights: np.ndarray
) -> np.ndarray:
    """Λ'_FR per node (Definition 1): ``⟨∂L_C(Z,A_clus)/∂z_i, ∂L_C(Z,A_sup)/∂z_i⟩``."""
    grad_clus = _laplacian_gradient(embeddings, clustering_weights)
    grad_sup = _laplacian_gradient(embeddings, supervision_weights)
    return np.sum(grad_clus * grad_sup, axis=1)


def elementary_fd(
    embeddings: np.ndarray, self_supervision: np.ndarray, supervision_weights: np.ndarray
) -> np.ndarray:
    """Λ'_FD per node (Definition 2): ``⟨∂L_C(Z,~A_self)/∂z_i, ∂L_C(Z,A_sup)/∂z_i⟩``.

    ``self_supervision`` is normalised internally (``D^{-1/2} A D^{-1/2}``
    without self loops) as prescribed by the paper's simplifications.
    """
    normalized = normalize_adjacency(self_supervision, self_loops=False)
    grad_self = _laplacian_gradient(embeddings, normalized)
    grad_sup = _laplacian_gradient(embeddings, supervision_weights)
    return np.sum(grad_self * grad_sup, axis=1)


def graph_filter_impact(
    features: np.ndarray, adjacency: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """The function ``P(x_i)`` of Eq. (12).

    ``P(x_i) = ||x_i - h_sup(x_i)|| - ||h_self(x_i) - h_sup(x_i)||`` where
    ``h_sup`` averages over the node's ground-truth cluster and ``h_self``
    over its immediate (normalised) neighbourhood.  ``P(x_i) ≥ 0`` means the
    graph filtering operation moves the node towards its true cluster centre,
    i.e. has a positive impact on clustering that node.
    """
    x = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    norm_self = normalize_adjacency(adjacency, self_loops=False)
    # Row-normalise so h_self is an average rather than a weighted sum.
    row_sums = norm_self.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0.0] = 1.0
    h_self = (norm_self / row_sums) @ x
    h_sup = np.zeros_like(x)
    for cluster in np.unique(labels):
        members = labels == cluster
        h_sup[members] = x[members].mean(axis=0)
    direct = np.linalg.norm(x - h_sup, axis=1)
    filtered = np.linalg.norm(h_self - h_sup, axis=1)
    return direct - filtered
