"""The R- training procedure (Eq. 6): wrap any GAE model with Ξ and Υ.

:class:`RethinkTrainer` takes a pretrained (or to-be-pretrained) model from
:mod:`repro.models` and runs the paper's clustering phase:

* every ``M1`` epochs the sampling operator Ξ recomputes the decidable set Ω
  from the current assignments;
* every ``M2`` epochs the operator Υ rebuilds the clustering-oriented
  self-supervision graph ``A_self_clus`` from the original graph A;
* each epoch minimises ``L_clus(P(Ξ(Z))) + γ L_bce(Â(Z), A_self_clus)`` for
  second-group models, or just the reconstruction against ``A_self_clus``
  for first-group models (whose clustering is post-hoc k-means);
* training stops when ``|Ω| ≥ convergence_fraction · N`` (paper: 0.9).

The loop itself is deliberately minimal: everything observational — the
Λ_FR / Λ_FD traces, learning-dynamics curves, graph snapshots, verbosity,
and the convergence-based early stop — is implemented as callbacks (see
:mod:`repro.api.callbacks`) listening on the loop's events
(``on_omega_update``, ``on_graph_transform``, ``on_evaluate``,
``on_epoch_end``).  The ``track_*`` switches on :class:`RethinkConfig` are
kept for backward compatibility and are translated into the equivalent
callbacks; new code should pass callbacks explicitly or use
:class:`repro.api.Pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.graph_transform import GraphTransformOperator
from repro.core.sampling import SamplingOperator, SamplingResult
from repro.errors import ConfigError
from repro.graph.graph import AttributedGraph
from repro.metrics.report import ClusteringReport, evaluate_clustering
from repro.models.base import GAEClusteringModel
from repro.nn.optim import Adam
from repro.observability import span as _span


@dataclass
class RethinkConfig:
    """Hyper-parameters of the R- clustering phase.

    The defaults follow the paper's Cora settings (Table 11): α1 = 0.3,
    α2 = α1/2, M1 = 20, M2 = 10, convergence at |Ω| ≥ 0.9 N.
    """

    alpha1: float = 0.3
    alpha2: Optional[float] = None
    update_omega_every: int = 20
    update_graph_every: int = 10
    gamma: Optional[float] = None
    epochs: int = 200
    pretrain_epochs: int = 200
    convergence_fraction: float = 0.9
    stop_at_convergence: bool = True
    # Minibatch training (repro.minibatch) -------------------------------
    #: None runs the legacy full-graph loop; "full" / "neighbor" / "cluster"
    #: run the minibatch path with the corresponding loader ("full" is the
    #: 1e-10 equivalence anchor: one batch covering the whole graph).
    sampler: Optional[str] = None
    #: nodes per batch (seed nodes for "neighbor", target part size for
    #: "cluster"); None uses the loader default of min(N, 256).
    batch_size: Optional[int] = None
    #: neighbours sampled per frontier node and hop ("neighbor" only).
    fanout: int = 10
    #: neighbourhood expansion rounds ("neighbor" only).
    num_hops: int = 2
    #: seed of the batch shuffles / neighbour sampling; None derives it from
    #: the model seed so equal specs give identical minibatch sequences.
    sampler_seed: Optional[int] = None
    # Sparse-backend auto-promotion thresholds ---------------------------
    #: override the ≥256-node / ≤25%-density CSR promotion thresholds for
    #: every propagation_matrix call made during this fit (None keeps the
    #: REPRO_SPARSE_* environment variables / module defaults).
    sparse_node_threshold: Optional[int] = None
    sparse_density_threshold: Optional[float] = None
    # Ablation switches -------------------------------------------------
    protection_delay: int = 0
    single_step_transform: bool = False
    add_edges: bool = True
    drop_edges: bool = True
    use_confidence_criterion: bool = True
    use_margin_criterion: bool = True
    use_sampling: bool = True
    use_graph_transform: bool = True
    # Tracking (legacy switches, translated into callbacks) --------------
    track_fr: bool = False
    track_fd: bool = False
    track_dynamics: bool = False
    evaluate_every: int = 10
    snapshot_graph_every: Optional[int] = None
    verbose: bool = False

    @property
    def resolved_alpha2(self) -> float:
        """The effective margin threshold: ``alpha2`` or the paper's α1/2 default.

        This is the single place where the default is applied; the sampling
        operator and the serialised run specs both go through it.
        """
        return self.alpha1 / 2.0 if self.alpha2 is None else self.alpha2

    def validate(
        self,
        model_group: Optional[str] = None,
        model_gamma: Optional[float] = None,
    ) -> "RethinkConfig":
        """Check every field, raising :class:`~repro.errors.ConfigError` early.

        ``model_group`` ("first"/"second") and ``model_gamma`` describe the
        model the config will drive, enabling the cross-checks that cannot
        be done on the config alone (γ is required for second-group models,
        either explicitly or through the model's own default).  Returns
        ``self`` so it can be chained.
        """
        if not 0.0 <= self.alpha1 <= 1.0:
            raise ConfigError(f"alpha1 must lie in [0, 1], got {self.alpha1!r}")
        if self.alpha2 is not None and not 0.0 <= self.alpha2 <= 1.0:
            raise ConfigError(
                f"alpha2 must lie in [0, 1] (or be None for the α1/2 default), "
                f"got {self.alpha2!r}"
            )
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs!r}")
        if self.pretrain_epochs < 0:
            raise ConfigError(f"pretrain_epochs must be >= 0, got {self.pretrain_epochs!r}")
        for name in ("update_omega_every", "update_graph_every", "evaluate_every"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
        if self.snapshot_graph_every is not None and self.snapshot_graph_every < 1:
            raise ConfigError(
                f"snapshot_graph_every must be >= 1 or None, got {self.snapshot_graph_every!r}"
            )
        if not 0.0 < self.convergence_fraction <= 1.0:
            raise ConfigError(
                f"convergence_fraction must lie in (0, 1], got {self.convergence_fraction!r}"
            )
        if self.protection_delay < 0:
            raise ConfigError(f"protection_delay must be >= 0, got {self.protection_delay!r}")
        if self.sampler is not None:
            from repro.minibatch.loaders import SAMPLERS

            if self.sampler not in SAMPLERS:
                raise ConfigError(
                    f"sampler must be one of {', '.join(SAMPLERS)} (or None for "
                    f"the full-graph loop), got {self.sampler!r}"
                )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size!r}")
        for name in ("fanout", "num_hops"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value!r}")
        if self.sparse_node_threshold is not None and self.sparse_node_threshold < 0:
            raise ConfigError(
                f"sparse_node_threshold must be >= 0, got {self.sparse_node_threshold!r}"
            )
        if self.sparse_density_threshold is not None and not (
            0.0 <= self.sparse_density_threshold <= 1.0
        ):
            raise ConfigError(
                f"sparse_density_threshold must lie in [0, 1], "
                f"got {self.sparse_density_threshold!r}"
            )
        if self.gamma is not None and self.gamma < 0.0:
            raise ConfigError(f"gamma must be >= 0, got {self.gamma!r}")
        if model_group == "second" and self.gamma is None and model_gamma is None:
            raise ConfigError(
                "gamma is required for second-group models (joint objective, Eq. 5): "
                "set RethinkConfig.gamma or give the model a gamma"
            )
        return self


@dataclass
class RethinkHistory:
    """Everything recorded during an R- clustering phase."""

    losses: List[float] = field(default_factory=list)
    clustering_losses: List[float] = field(default_factory=list)
    reconstruction_losses: List[float] = field(default_factory=list)
    omega_sizes: List[int] = field(default_factory=list)
    omega_coverage: List[float] = field(default_factory=list)
    accuracy_all: List[float] = field(default_factory=list)
    accuracy_decidable: List[float] = field(default_factory=list)
    accuracy_undecidable: List[float] = field(default_factory=list)
    evaluation_epochs: List[int] = field(default_factory=list)
    fr_rethought: List[float] = field(default_factory=list)
    fr_baseline: List[float] = field(default_factory=list)
    fd_rethought: List[float] = field(default_factory=list)
    fd_baseline: List[float] = field(default_factory=list)
    link_stats: List[Dict[str, int]] = field(default_factory=list)
    graph_snapshots: Dict[int, np.ndarray] = field(default_factory=dict)
    epochs_run: int = 0
    converged: bool = False
    final_report: Optional[ClusteringReport] = None
    #: structured per-epoch telemetry (losses, coverage, memory peaks,
    #: FR/FD series) filled in by the ``telemetry`` callback.
    telemetry: Optional[Dict[str, Any]] = None

    def summary(self) -> Dict[str, float]:
        """Compact summary used by the experiment tables."""
        out = {
            "epochs_run": float(self.epochs_run),
            "converged": float(self.converged),
            "final_coverage": self.omega_coverage[-1] if self.omega_coverage else 0.0,
        }
        if self.final_report is not None:
            out.update(self.final_report.as_dict())
        return out


class RethinkTrainer:
    """Train the R- version of any GAE clustering model.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.GAEClusteringModel`.
    config:
        The R- hyper-parameters; validated eagerly against the model.
    callbacks:
        Extra :class:`~repro.api.callbacks.RethinkCallback` instances (or
        registered callback names / spec dicts) appended after the
        callbacks derived from the config's legacy ``track_*`` switches.
    """

    def __init__(
        self,
        model: GAEClusteringModel,
        config: Optional[RethinkConfig] = None,
        callbacks: Optional[Sequence] = None,
    ) -> None:
        self.model = model
        self.config = (config or RethinkConfig()).validate(
            model_group=getattr(model, "group", None),
            model_gamma=getattr(model, "gamma", None),
        )
        self.callbacks = list(callbacks or [])
        self.sampling = SamplingOperator(
            alpha1=self.config.alpha1,
            alpha2=self.config.resolved_alpha2,
            use_confidence_criterion=self.config.use_confidence_criterion,
            use_margin_criterion=self.config.use_margin_criterion,
        )
        self.transform = GraphTransformOperator(
            add_edges=self.config.add_edges, drop_edges=self.config.drop_edges
        )
        #: latest clustering-oriented self-supervision graph built by Υ.
        self.self_supervision_graph_: Optional[np.ndarray] = None
        #: latest sampling result produced by Ξ.
        self.last_sampling_: Optional[SamplingResult] = None
        #: history of the current / most recent fit (visible to callbacks).
        self.history_: Optional[RethinkHistory] = None
        #: minibatch loader of the current fit (None on the full-graph path).
        self.loader_ = None
        #: model inputs of the current fit (visible to callbacks).
        self.features_: Optional[np.ndarray] = None
        self.adj_norm_: Optional[np.ndarray] = None
        #: set by callbacks (e.g. ConvergenceStopping) to end training early.
        self.stop_training: bool = False
        #: pretraining-cache stats of the last fit (repro.store.warm_pretrain).
        self.pretrain_cache_: Optional[dict] = None

    # ------------------------------------------------------------------
    # operator applications
    # ------------------------------------------------------------------
    def _apply_sampling(
        self, embeddings: np.ndarray, epoch: int, num_nodes: int
    ) -> SamplingResult:
        """Run Ξ, honouring the protection-delay and use_sampling ablations."""
        assignments = self.model.predict_assignments(embeddings)
        sampling_disabled = not self.config.use_sampling
        in_delay_window = epoch < self.config.protection_delay
        if sampling_disabled or in_delay_window:
            all_nodes = np.arange(num_nodes)
            return SamplingResult(
                reliable_nodes=all_nodes,
                soft_assignments=assignments,
                first_scores=np.ones(num_nodes),
                second_scores=np.zeros(num_nodes),
            )
        return self.sampling(embeddings, assignments)

    def _apply_transform(
        self,
        adjacency,
        num_nodes: int,
        embeddings: np.ndarray,
        sampling: SamplingResult,
    ):
        """Run Υ, honouring the single-step and use_graph_transform ablations.

        ``adjacency`` is the original input graph A in either backend — the
        legacy loop passes the dense ``graph.adjacency``, the minibatch loop
        passes whatever :func:`~repro.graph.sparse.adjacency_backend` picked
        (Υ produces the matching backend).
        """
        if not self.config.use_graph_transform:
            return adjacency.copy()
        nodes = sampling.reliable_nodes
        if self.config.single_step_transform:
            nodes = np.arange(num_nodes)
        return self.transform(
            adjacency, sampling.soft_assignments, nodes, embeddings
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _build_callbacks(self):
        """Config-derived callbacks plus the explicitly passed ones."""
        from repro.api.callbacks import CallbackList, callbacks_from_config, resolve_callbacks

        callbacks = CallbackList(
            callbacks_from_config(self.config) + resolve_callbacks(self.callbacks)
        )
        callbacks.set_trainer(self)
        return callbacks

    def fit(self, graph: AttributedGraph, pretrained: bool = False) -> RethinkHistory:
        """Run (optionally) pretraining then the R- clustering phase.

        With ``config.sampler`` unset the legacy full-graph loop runs; with a
        sampler name ("full" / "neighbor" / "cluster") the epoch is a stream
        of :class:`~repro.minibatch.loaders.Minibatch` blocks while Ξ and Υ
        keep operating on full-graph state refreshed at epoch boundaries.
        Any configured sparse-backend thresholds apply to every
        ``propagation_matrix`` call made inside the fit.
        """
        from repro.analysis.sanitizers import autograd_leak_check
        from repro.graph.sparse import sparse_threshold_overrides
        from repro.observability import span

        with sparse_threshold_overrides(
            self.config.sparse_node_threshold, self.config.sparse_density_threshold
        ), autograd_leak_check("RethinkTrainer.fit"), span(
            "trainer.fit",
            sampler=self.config.sampler or "legacy",
            epochs=self.config.epochs,
        ):
            if self.config.sampler is None:
                return self._fit_full_graph(graph, pretrained)
            return self._fit_minibatch(graph, pretrained)

    def _run_pretraining(self, graph: AttributedGraph) -> None:
        """Pretrain via the warm-start store when one is active.

        Direct trainer users get the same caching as pipelines: with
        ``REPRO_STORE_DIR`` set the pretraining snapshot is served from (or
        written to) the artifact store, keyed by a content fingerprint of
        the graph; without it this is exactly ``model.pretrain``.  The
        hit/miss stats land on :attr:`pretrain_cache_`.
        """
        from repro.observability import span
        from repro.store import warm_pretrain

        with span("trainer.pretrain", epochs=self.config.pretrain_epochs):
            self.pretrain_cache_ = warm_pretrain(
                self.model,
                graph,
                self.config.pretrain_epochs,
                config={
                    "sparse": [
                        self.config.sparse_node_threshold,
                        self.config.sparse_density_threshold,
                    ]
                },
                verbose=self.config.verbose,
            )

    def _fit_full_graph(self, graph: AttributedGraph, pretrained: bool) -> RethinkHistory:
        """The legacy loop: one forward/backward over the whole adjacency."""
        config = self.config
        model = self.model
        if not pretrained:
            self._run_pretraining(graph)
        features, adj_norm = model.prepare_inputs(graph)
        self.features_, self.adj_norm_ = features, adj_norm
        embeddings = model.embed(graph)
        model.init_clustering(embeddings)

        optimizer = Adam(model.parameters(), lr=model.learning_rate)
        gamma = model.gamma if config.gamma is None else config.gamma
        history = RethinkHistory()
        self.history_ = history
        self.stop_training = False
        callbacks = self._build_callbacks()

        sampling = self._apply_sampling(embeddings, epoch=0, num_nodes=graph.num_nodes)
        self.last_sampling_ = sampling
        self.self_supervision_graph_ = self._apply_transform(
            graph.adjacency, graph.num_nodes, embeddings, sampling
        )
        callbacks.on_train_begin(graph, history)

        for epoch in range(config.epochs):
            callbacks.on_epoch_begin(epoch)
            epoch_span = _span("trainer.epoch", epoch=epoch)
            epoch_span.__enter__()
            refresh_omega = epoch % config.update_omega_every == 0
            refresh_graph = epoch % config.update_graph_every == 0
            optimizer.zero_grad()
            z = model.encode(features, adj_norm)
            if refresh_omega or refresh_graph:
                # Reuse the forward pass above: the posterior mean cached by
                # encode() is exactly what model.embed(graph) would recompute
                # with the same (not yet updated) weights.
                embeddings = model.last_embeddings()
                # Keep the model's own clustering parameters (targets, mixture
                # moments, centres) in sync with the current embeddings.
                with _span("trainer.clustering_refresh", epoch=epoch):
                    model.refresh_clustering(embeddings)
            if refresh_omega:
                with _span("trainer.omega_update", epoch=epoch):
                    sampling = self._apply_sampling(embeddings, epoch, graph.num_nodes)
                self.last_sampling_ = sampling
                callbacks.on_omega_update(epoch, sampling)
            if refresh_graph:
                with _span("trainer.graph_transform", epoch=epoch):
                    self.self_supervision_graph_ = self._apply_transform(
                        graph.adjacency, graph.num_nodes, embeddings, sampling
                    )
                callbacks.on_graph_transform(epoch, self.self_supervision_graph_)

            reconstruction = model.reconstruction_loss(z, self.self_supervision_graph_)
            regularization = model.regularization_loss(z)
            if regularization is not None:
                reconstruction = reconstruction + regularization
            clustering = model.clustering_loss(z, sampling.reliable_nodes)
            if clustering is not None:
                loss = clustering + reconstruction * gamma
                history.clustering_losses.append(clustering.item())
            else:
                loss = reconstruction
            loss.backward()
            optimizer.step()
            loss.release_graph()

            history.losses.append(loss.item())
            history.reconstruction_losses.append(reconstruction.item())
            history.omega_sizes.append(sampling.num_reliable)
            history.omega_coverage.append(sampling.coverage())
            history.epochs_run = epoch + 1

            should_evaluate = (
                epoch % config.evaluate_every == 0 or epoch == config.epochs - 1
            )
            if should_evaluate:
                from repro.api.callbacks import EvaluationContext

                with _span("trainer.evaluate", epoch=epoch):
                    callbacks.on_evaluate(epoch, EvaluationContext(self, graph, epoch))

            callbacks.on_epoch_end(
                epoch,
                {
                    "loss": loss.item(),
                    "reconstruction_loss": reconstruction.item(),
                    "num_reliable": sampling.num_reliable,
                    "coverage": sampling.coverage(),
                },
            )
            epoch_span.__exit__(None, None, None)
            if self.stop_training:
                break

        if graph.labels is not None:
            history.final_report = evaluate_clustering(
                graph.labels, self.predict_labels(graph)
            )
        callbacks.on_train_end(history)
        return history

    # ------------------------------------------------------------------
    # minibatch loop
    # ------------------------------------------------------------------
    def _supervision_block(self, node_ids: np.ndarray) -> np.ndarray:
        """Dense (B, B) block of the self-supervision graph for a batch."""
        from repro.graph.sparse import SparseAdjacency

        graph_matrix = self.self_supervision_graph_
        if isinstance(graph_matrix, SparseAdjacency):
            return graph_matrix.induced_subgraph(node_ids).to_dense()  # repro: noqa[REP002] densifies the induced (B, B) batch block, O(B²) not O(N²) — the supervision loss consumes dense per-batch blocks by design
        n = graph_matrix.shape[0]
        if node_ids.shape[0] == n and np.array_equal(node_ids, np.arange(n)):
            # Full batch in original order: skip the O(N²) fancy-indexed copy.
            return graph_matrix
        return graph_matrix[np.ix_(node_ids, node_ids)]

    def _fit_minibatch(self, graph: AttributedGraph, pretrained: bool) -> RethinkHistory:
        """Per-batch R- training over a :mod:`repro.minibatch` loader.

        The operators stay on full-graph state: every ``M1`` / ``M2``
        boundary recomputes full-graph embeddings (``model.embed``), which
        yields exactly the posterior mean the legacy loop reuses from its
        in-epoch forward pass — and consumes no RNG — so driving this path
        with the full-batch loader reproduces `_fit_full_graph` to 1e-10.
        Gradient steps then run per batch: encode on the batch's own
        propagation block, reconstruct against the induced block of
        ``A_self_clus``, and restrict the clustering loss to the decidable
        nodes Ω that fall inside the batch.
        """
        from repro.graph.sparse import adjacency_backend
        from repro.minibatch.loaders import build_loader

        config = self.config
        model = self.model
        if not pretrained:
            self._run_pretraining(graph)
        features, adj_norm = model.prepare_inputs(graph)
        self.features_, self.adj_norm_ = features, adj_norm
        embeddings = model.embed(graph)
        model.init_clustering(embeddings)
        if getattr(model, "group", None) == "second" and model.clustering_target() is None:
            raise ConfigError(
                f"{type(model).__name__} is a second-group model without a "
                "per-node clustering target (clustering_target() is None); "
                "its clustering loss cannot be restricted to a minibatch"
            )

        sampler_seed = model.seed if config.sampler_seed is None else config.sampler_seed
        loader = build_loader(
            config.sampler,
            graph,
            batch_size=config.batch_size,
            fanout=config.fanout,
            num_hops=config.num_hops,
            seed=sampler_seed,
        )
        self.loader_ = loader
        # Υ reads the original graph A in whichever backend the thresholds
        # pick; batch targets are sliced from the result, so a promoted
        # graph never materialises the dense (N, N) self-supervision matrix.
        base_adjacency = adjacency_backend(graph.adjacency)

        optimizer = Adam(model.parameters(), lr=model.learning_rate)
        gamma = model.gamma if config.gamma is None else config.gamma
        history = RethinkHistory()
        self.history_ = history
        self.stop_training = False
        callbacks = self._build_callbacks()

        sampling = self._apply_sampling(embeddings, epoch=0, num_nodes=graph.num_nodes)
        self.last_sampling_ = sampling
        self.self_supervision_graph_ = self._apply_transform(
            base_adjacency, graph.num_nodes, embeddings, sampling
        )
        callbacks.on_train_begin(graph, history)

        for epoch in range(config.epochs):
            callbacks.on_epoch_begin(epoch)
            epoch_span = _span("trainer.epoch", epoch=epoch)
            epoch_span.__enter__()
            refresh_omega = epoch % config.update_omega_every == 0
            refresh_graph = epoch % config.update_graph_every == 0
            if refresh_omega or refresh_graph:
                with _span("trainer.clustering_refresh", epoch=epoch):
                    embeddings = model.embed(graph)
                    model.refresh_clustering(embeddings)
            if refresh_omega:
                with _span("trainer.omega_update", epoch=epoch):
                    sampling = self._apply_sampling(embeddings, epoch, graph.num_nodes)
                self.last_sampling_ = sampling
                callbacks.on_omega_update(epoch, sampling)
            if refresh_graph:
                with _span("trainer.graph_transform", epoch=epoch):
                    self.self_supervision_graph_ = self._apply_transform(
                        base_adjacency, graph.num_nodes, embeddings, sampling
                    )
                callbacks.on_graph_transform(epoch, self.self_supervision_graph_)

            reliable_mask = sampling.mask()
            target = model.clustering_target()
            batch_losses: List[float] = []
            batch_reconstructions: List[float] = []
            batch_clusterings: List[float] = []
            for batch in loader.epoch_batches(epoch):
                optimizer.zero_grad()
                z = model.encode(batch.features, batch.adj_norm)
                reconstruction = model.reconstruction_loss(
                    z, self._supervision_block(batch.node_ids)
                )
                regularization = model.regularization_loss(z)
                if regularization is not None:
                    reconstruction = reconstruction + regularization
                if target is not None:
                    clustering = model.clustering_loss_with_target(
                        z,
                        target[batch.node_ids],
                        batch.local_indices_of(reliable_mask),
                    )
                    loss = clustering + reconstruction * gamma
                    batch_clusterings.append(clustering.item())
                else:
                    loss = reconstruction
                loss.backward()
                optimizer.step()
                batch_losses.append(loss.item())
                batch_reconstructions.append(reconstruction.item())
                # Free this step's graph now: its closures form reference
                # cycles that would otherwise accumulate across batches
                # until the cyclic GC runs, inflating peak memory.
                loss.release_graph()

            mean_loss = float(np.mean(batch_losses))
            mean_reconstruction = float(np.mean(batch_reconstructions))
            history.losses.append(mean_loss)
            history.reconstruction_losses.append(mean_reconstruction)
            if batch_clusterings:
                history.clustering_losses.append(float(np.mean(batch_clusterings)))
            history.omega_sizes.append(sampling.num_reliable)
            history.omega_coverage.append(sampling.coverage())
            history.epochs_run = epoch + 1

            should_evaluate = (
                epoch % config.evaluate_every == 0 or epoch == config.epochs - 1
            )
            if should_evaluate:
                from repro.api.callbacks import EvaluationContext

                with _span("trainer.evaluate", epoch=epoch):
                    callbacks.on_evaluate(epoch, EvaluationContext(self, graph, epoch))

            callbacks.on_epoch_end(
                epoch,
                {
                    "loss": mean_loss,
                    "reconstruction_loss": mean_reconstruction,
                    "num_reliable": sampling.num_reliable,
                    "coverage": sampling.coverage(),
                    "num_batches": float(len(batch_losses)),
                },
            )
            epoch_span.count("batches", len(batch_losses))
            epoch_span.__exit__(None, None, None)
            if self.stop_training:
                break

        if graph.labels is not None:
            history.final_report = evaluate_clustering(
                graph.labels, self.predict_labels(graph)
            )
        callbacks.on_train_end(history)
        return history

    def predict_labels(self, graph: AttributedGraph) -> np.ndarray:
        """Hard cluster labels from the trained model."""
        return self.model.predict_labels(graph)
