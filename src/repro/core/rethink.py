"""The R- training procedure (Eq. 6): wrap any GAE model with Ξ and Υ.

:class:`RethinkTrainer` takes a pretrained (or to-be-pretrained) model from
:mod:`repro.models` and runs the paper's clustering phase:

* every ``M1`` epochs the sampling operator Ξ recomputes the decidable set Ω
  from the current assignments;
* every ``M2`` epochs the operator Υ rebuilds the clustering-oriented
  self-supervision graph ``A_self_clus`` from the original graph A;
* each epoch minimises ``L_clus(P(Ξ(Z))) + γ L_bce(Â(Z), A_self_clus)`` for
  second-group models, or just the reconstruction against ``A_self_clus``
  for first-group models (whose clustering is post-hoc k-means);
* training stops when ``|Ω| ≥ convergence_fraction · N`` (paper: 0.9).

The configuration exposes every knob needed by the paper's ablations:
protection-vs-correction delays (Table 6), single-step Υ (Table 7),
confidence-threshold ablations (Table 8) and add/drop edge ablations
(Table 9), plus optional tracking of Λ_FR / Λ_FD and of the learning
dynamics (Figures 4-6, 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.fr_fd import feature_drift_metric, feature_randomness_metric
from repro.core.graph_transform import GraphTransformOperator, build_clustering_oriented_graph
from repro.core.sampling import SamplingOperator, SamplingResult
from repro.core.supervision import aligned_oracle_assignments
from repro.graph.graph import AttributedGraph
from repro.graph.ops import edge_difference
from repro.metrics.report import ClusteringReport, evaluate_clustering
from repro.models.base import GAEClusteringModel
from repro.nn.optim import Adam


@dataclass
class RethinkConfig:
    """Hyper-parameters of the R- clustering phase.

    The defaults follow the paper's Cora settings (Table 11): α1 = 0.3,
    α2 = α1/2, M1 = 20, M2 = 10, convergence at |Ω| ≥ 0.9 N.
    """

    alpha1: float = 0.3
    alpha2: Optional[float] = None
    update_omega_every: int = 20
    update_graph_every: int = 10
    gamma: Optional[float] = None
    epochs: int = 200
    pretrain_epochs: int = 200
    convergence_fraction: float = 0.9
    stop_at_convergence: bool = True
    # Ablation switches -------------------------------------------------
    protection_delay: int = 0
    single_step_transform: bool = False
    add_edges: bool = True
    drop_edges: bool = True
    use_confidence_criterion: bool = True
    use_margin_criterion: bool = True
    use_sampling: bool = True
    use_graph_transform: bool = True
    # Tracking ----------------------------------------------------------
    track_fr: bool = False
    track_fd: bool = False
    track_dynamics: bool = False
    evaluate_every: int = 10
    snapshot_graph_every: Optional[int] = None
    verbose: bool = False


@dataclass
class RethinkHistory:
    """Everything recorded during an R- clustering phase."""

    losses: List[float] = field(default_factory=list)
    clustering_losses: List[float] = field(default_factory=list)
    reconstruction_losses: List[float] = field(default_factory=list)
    omega_sizes: List[int] = field(default_factory=list)
    omega_coverage: List[float] = field(default_factory=list)
    accuracy_all: List[float] = field(default_factory=list)
    accuracy_decidable: List[float] = field(default_factory=list)
    accuracy_undecidable: List[float] = field(default_factory=list)
    evaluation_epochs: List[int] = field(default_factory=list)
    fr_rethought: List[float] = field(default_factory=list)
    fr_baseline: List[float] = field(default_factory=list)
    fd_rethought: List[float] = field(default_factory=list)
    fd_baseline: List[float] = field(default_factory=list)
    link_stats: List[Dict[str, int]] = field(default_factory=list)
    graph_snapshots: Dict[int, np.ndarray] = field(default_factory=dict)
    epochs_run: int = 0
    converged: bool = False
    final_report: Optional[ClusteringReport] = None

    def summary(self) -> Dict[str, float]:
        """Compact summary used by the experiment tables."""
        out = {
            "epochs_run": float(self.epochs_run),
            "converged": float(self.converged),
            "final_coverage": self.omega_coverage[-1] if self.omega_coverage else 0.0,
        }
        if self.final_report is not None:
            out.update(self.final_report.as_dict())
        return out


class RethinkTrainer:
    """Train the R- version of any GAE clustering model."""

    def __init__(
        self,
        model: GAEClusteringModel,
        config: Optional[RethinkConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or RethinkConfig()
        alpha2 = self.config.alpha2
        self.sampling = SamplingOperator(
            alpha1=self.config.alpha1,
            alpha2=alpha2,
            use_confidence_criterion=self.config.use_confidence_criterion,
            use_margin_criterion=self.config.use_margin_criterion,
        )
        self.transform = GraphTransformOperator(
            add_edges=self.config.add_edges, drop_edges=self.config.drop_edges
        )
        #: latest clustering-oriented self-supervision graph built by Υ.
        self.self_supervision_graph_: Optional[np.ndarray] = None
        #: latest sampling result produced by Ξ.
        self.last_sampling_: Optional[SamplingResult] = None

    # ------------------------------------------------------------------
    # operator applications
    # ------------------------------------------------------------------
    def _apply_sampling(
        self, embeddings: np.ndarray, epoch: int, num_nodes: int
    ) -> SamplingResult:
        """Run Ξ, honouring the protection-delay and use_sampling ablations."""
        assignments = self.model.predict_assignments(embeddings)
        sampling_disabled = not self.config.use_sampling
        in_delay_window = epoch < self.config.protection_delay
        if sampling_disabled or in_delay_window:
            all_nodes = np.arange(num_nodes)
            return SamplingResult(
                reliable_nodes=all_nodes,
                soft_assignments=assignments,
                first_scores=np.ones(num_nodes),
                second_scores=np.zeros(num_nodes),
            )
        return self.sampling(embeddings, assignments)

    def _apply_transform(
        self,
        graph: AttributedGraph,
        embeddings: np.ndarray,
        sampling: SamplingResult,
    ) -> np.ndarray:
        """Run Υ, honouring the single-step and use_graph_transform ablations."""
        if not self.config.use_graph_transform:
            return graph.adjacency.copy()
        nodes = sampling.reliable_nodes
        if self.config.single_step_transform:
            nodes = np.arange(graph.num_nodes)
        return self.transform(
            graph.adjacency, sampling.soft_assignments, nodes, embeddings
        )

    # ------------------------------------------------------------------
    # tracking helpers
    # ------------------------------------------------------------------
    def _track_fr_fd(
        self,
        graph: AttributedGraph,
        features: np.ndarray,
        adj_norm: np.ndarray,
        embeddings: np.ndarray,
        sampling: SamplingResult,
        history: RethinkHistory,
    ) -> None:
        if graph.labels is None:
            return
        assignments = self.model.predict_assignments(embeddings)
        oracle = aligned_oracle_assignments(graph.labels, assignments)
        if self.config.track_fr and hasattr(self.model, "clustering_loss_with_target"):
            history.fr_rethought.append(
                feature_randomness_metric(
                    self.model, features, adj_norm, oracle, sampling.reliable_nodes
                )
            )
            history.fr_baseline.append(
                feature_randomness_metric(self.model, features, adj_norm, oracle, None)
            )
        if self.config.track_fd:
            oracle_graph = build_clustering_oriented_graph(
                graph.adjacency, oracle, np.arange(graph.num_nodes), embeddings
            )
            history.fd_rethought.append(
                feature_drift_metric(
                    self.model, features, adj_norm, self.self_supervision_graph_, oracle_graph
                )
            )
            history.fd_baseline.append(
                feature_drift_metric(
                    self.model, features, adj_norm, graph.adjacency, oracle_graph
                )
            )

    def _track_accuracy(
        self,
        graph: AttributedGraph,
        embeddings: np.ndarray,
        sampling: SamplingResult,
        history: RethinkHistory,
        epoch: int,
    ) -> None:
        if graph.labels is None:
            return
        assignments = self.model.predict_assignments(embeddings)
        predictions = np.argmax(assignments, axis=1)
        history.evaluation_epochs.append(epoch)
        history.accuracy_all.append(
            evaluate_clustering(graph.labels, predictions).accuracy
        )
        mask = sampling.mask()
        if mask.any():
            history.accuracy_decidable.append(
                float(
                    np.mean(
                        _aligned_correct(graph.labels, predictions)[mask]
                    )
                )
            )
        else:
            history.accuracy_decidable.append(0.0)
        if (~mask).any():
            history.accuracy_undecidable.append(
                float(np.mean(_aligned_correct(graph.labels, predictions)[~mask]))
            )
        else:
            history.accuracy_undecidable.append(0.0)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def fit(self, graph: AttributedGraph, pretrained: bool = False) -> RethinkHistory:
        """Run (optionally) pretraining then the R- clustering phase."""
        config = self.config
        model = self.model
        if not pretrained:
            model.pretrain(graph, epochs=config.pretrain_epochs, verbose=config.verbose)
        features, adj_norm = model.prepare_inputs(graph)
        embeddings = model.embed(graph)
        model.init_clustering(embeddings)

        optimizer = Adam(model.parameters(), lr=model.learning_rate)
        gamma = model.gamma if config.gamma is None else config.gamma
        history = RethinkHistory()

        sampling = self._apply_sampling(embeddings, epoch=0, num_nodes=graph.num_nodes)
        self.last_sampling_ = sampling
        self.self_supervision_graph_ = self._apply_transform(graph, embeddings, sampling)

        for epoch in range(config.epochs):
            refresh_omega = epoch % config.update_omega_every == 0
            refresh_graph = epoch % config.update_graph_every == 0
            if refresh_omega or refresh_graph:
                embeddings = model.embed(graph)
                # Keep the model's own clustering parameters (targets, mixture
                # moments, centres) in sync with the current embeddings.
                model.refresh_clustering(embeddings)
            if refresh_omega:
                sampling = self._apply_sampling(embeddings, epoch, graph.num_nodes)
                self.last_sampling_ = sampling
            if refresh_graph:
                self.self_supervision_graph_ = self._apply_transform(
                    graph, embeddings, sampling
                )

            optimizer.zero_grad()
            z = model.encode(features, adj_norm)
            reconstruction = model.reconstruction_loss(z, self.self_supervision_graph_)
            regularization = model.regularization_loss(z)
            if regularization is not None:
                reconstruction = reconstruction + regularization
            clustering = model.clustering_loss(z, sampling.reliable_nodes)
            if clustering is not None:
                loss = clustering + reconstruction * gamma
                history.clustering_losses.append(clustering.item())
            else:
                loss = reconstruction
            loss.backward()
            optimizer.step()

            history.losses.append(loss.item())
            history.reconstruction_losses.append(reconstruction.item())
            history.omega_sizes.append(sampling.num_reliable)
            history.omega_coverage.append(sampling.coverage())
            history.epochs_run = epoch + 1

            should_evaluate = (
                epoch % config.evaluate_every == 0 or epoch == config.epochs - 1
            )
            if should_evaluate:
                eval_embeddings = model.embed(graph)
                if config.track_dynamics:
                    self._track_accuracy(graph, eval_embeddings, sampling, history, epoch)
                    if graph.labels is not None:
                        history.link_stats.append(
                            edge_difference(
                                graph.adjacency,
                                self.self_supervision_graph_,
                                graph.labels,
                            )
                        )
                if config.track_fr or config.track_fd:
                    self._track_fr_fd(
                        graph, features, adj_norm, eval_embeddings, sampling, history
                    )
            if (
                config.snapshot_graph_every is not None
                and epoch % config.snapshot_graph_every == 0
            ):
                history.graph_snapshots[epoch] = self.self_supervision_graph_.copy()

            if config.verbose and epoch % 20 == 0:
                print(
                    f"[R-{model.__class__.__name__}] epoch {epoch} "
                    f"loss {loss.item():.4f} |Omega| {sampling.num_reliable}"
                )

            coverage = sampling.coverage()
            if (
                config.stop_at_convergence
                and coverage >= config.convergence_fraction
                and epoch >= config.update_omega_every
            ):
                history.converged = True
                break

        if graph.labels is not None:
            history.final_report = evaluate_clustering(
                graph.labels, self.predict_labels(graph)
            )
        return history

    def predict_labels(self, graph: AttributedGraph) -> np.ndarray:
        """Hard cluster labels from the trained model."""
        return self.model.predict_labels(graph)


def _aligned_correct(true_labels: np.ndarray, predictions: np.ndarray) -> np.ndarray:
    """Boolean per-node correctness after Hungarian alignment."""
    from repro.metrics.hungarian import align_labels

    aligned = align_labels(true_labels, predictions)
    return aligned == np.asarray(true_labels)
