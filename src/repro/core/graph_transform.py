"""The graph operator Υ (Algorithm 2) — correction against Feature Drift.

Υ rewrites the self-supervision graph used by the reconstruction loss into a
clustering-oriented one:

1. for each cluster, the *centroid node* is the decidable node closest to
   the mean embedding of the cluster's decidable members (set Π),
2. **add_edge** — every decidable node is connected to the centroid node of
   its own cluster (if both agree on that cluster),
3. **drop_edge** — edges between decidable nodes assigned to different
   clusters are removed.

At convergence the resulting graph consists of K star-shaped sub-graphs, as
visualised in Figure 4 of the paper.  The worst-case complexity is
O(N (d + K) + |E| (N + K)).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.graph.sparse import SparseAdjacency
from repro.observability.tracer import span as _span

AdjacencyLike = Union[np.ndarray, SparseAdjacency]


def _cluster_centroid_nodes(
    embeddings: np.ndarray,
    hard_assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    num_clusters: int,
) -> Dict[int, int]:
    """The set Π: for each cluster, the reliable node nearest to its mean embedding.

    Clusters without any reliable member are omitted from the mapping.  All
    clusters are resolved at once: mean embeddings by a scatter-add over the
    reliable members, then one lexsort picks each cluster's closest member
    (ties resolved towards the earlier member, like a per-cluster argmin).
    """
    reliable_nodes = np.asarray(reliable_nodes, dtype=np.int64)
    if reliable_nodes.size == 0:
        return {}
    reliable_labels = hard_assignments[reliable_nodes]
    member_embeddings = embeddings[reliable_nodes]
    counts = np.bincount(reliable_labels, minlength=num_clusters)
    sums = np.zeros((num_clusters, embeddings.shape[1]))
    np.add.at(sums, reliable_labels, member_embeddings)
    means = sums / np.maximum(counts, 1)[:, None]
    distances = np.linalg.norm(member_embeddings - means[reliable_labels], axis=1)
    order = np.lexsort((np.arange(reliable_labels.size), distances, reliable_labels))
    sorted_labels = reliable_labels[order]
    present = np.flatnonzero(counts > 0)
    first_of_cluster = np.searchsorted(sorted_labels, present, side="left")
    winners = reliable_nodes[order[first_of_cluster]]
    return {int(cluster): int(node) for cluster, node in zip(present, winners)}


def build_clustering_oriented_graph(
    adjacency: AdjacencyLike,
    assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    embeddings: np.ndarray,
    add_edges: bool = True,
    drop_edges: bool = True,
) -> AdjacencyLike:
    """Apply Υ once and return the clustering-oriented graph ``A_self_clus``.

    Parameters
    ----------
    adjacency:
        The *original* sparse input graph A (Algorithm 2 always starts from
        it).  Dense arrays and :class:`~repro.graph.sparse.SparseAdjacency`
        are both accepted; the result matches the input backend, and the
        sparse path runs in O(|E| + |Ω|) without materialising (N, N).
    assignments:
        (N, K) clustering assignment matrix P (soft or hard).
    reliable_nodes:
        Indices of the decidable set Ω produced by the operator Ξ.
    embeddings:
        (N, d) embedded representations, used to locate centroid nodes.
    add_edges, drop_edges:
        Toggles for the two edit operations (ablations of Table 9).
    """
    with _span("kernel.upsilon"):
        return _apply_upsilon(
            adjacency,
            assignments,
            reliable_nodes,
            embeddings,
            add_edges=add_edges,
            drop_edges=drop_edges,
        )


def _apply_upsilon(
    adjacency: AdjacencyLike,
    assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    embeddings: np.ndarray,
    add_edges: bool = True,
    drop_edges: bool = True,
) -> AdjacencyLike:
    if isinstance(adjacency, SparseAdjacency):
        return _build_clustering_oriented_graph_sparse(
            adjacency,
            assignments,
            reliable_nodes,
            embeddings,
            add_edges=add_edges,
            drop_edges=drop_edges,
        )
    adjacency = np.asarray(adjacency, dtype=np.float64)  # repro: noqa[REP002] dense half of the dual-path dispatch; the SparseAdjacency branch above handles CSR inputs, this only normalises already-dense arrays
    assignments = np.asarray(assignments, dtype=np.float64)
    reliable_nodes = np.asarray(reliable_nodes, dtype=np.int64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    num_clusters = assignments.shape[1]
    hard = np.argmax(assignments, axis=1)

    result = adjacency.copy()
    if reliable_nodes.size == 0:
        return result

    # Both edit operations are applied as vectorised edge-set operations on
    # the COO view of the dense matrix (the same scheme as the sparse path
    # below).  They commute: drop_edge only removes edges whose reliable
    # endpoints disagree on the cluster, add_edge only inserts same-cluster
    # (node, centroid) edges, so neither can affect the other.
    reliable_mask = np.zeros(adjacency.shape[0], dtype=bool)
    reliable_mask[reliable_nodes] = True

    if drop_edges:
        # The bool view makes the edge scan one pass over N²/8 bytes
        # instead of the 8-byte floats.
        rows, cols = np.nonzero(adjacency != 0)
        disagree = (
            reliable_mask[rows] & reliable_mask[cols] & (hard[rows] != hard[cols])
        )
        # Zero both directions, like the historical per-neighbour loop did
        # (a no-op for the reverse entry when the input is symmetric).
        result[rows[disagree], cols[disagree]] = 0.0
        result[cols[disagree], rows[disagree]] = 0.0

    if add_edges:
        centroid_nodes = _cluster_centroid_nodes(
            embeddings, hard, reliable_nodes, num_clusters
        )
        centroid_of = np.full(num_clusters, -1, dtype=np.int64)
        for cluster, node in centroid_nodes.items():
            centroid_of[cluster] = node
        clusters = hard[reliable_nodes]
        centroids = centroid_of[clusters]
        valid = (centroids >= 0) & (centroids != reliable_nodes)
        # Centroid nodes are reliable members of their own cluster, so the
        # agreement check (hard[centroid] == cluster) always holds; it is
        # kept to mirror Algorithm 2 line by line.
        valid &= hard[np.where(valid, centroids, 0)] == clusters
        sources = reliable_nodes[valid]
        targets = centroids[valid]
        # Same-cluster entries are untouched by the drops above, so checking
        # ``result`` here is identical to the historical check against the
        # partially edited matrix.
        absent = result[sources, targets] == 0.0
        sources, targets = sources[absent], targets[absent]
        result[sources, targets] = 1.0
        result[targets, sources] = 1.0
    return result


def _build_clustering_oriented_graph_sparse(
    adjacency: SparseAdjacency,
    assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    embeddings: np.ndarray,
    add_edges: bool = True,
    drop_edges: bool = True,
) -> SparseAdjacency:
    """Edge-wise Υ over a CSR adjacency.

    The dense loop above is order-independent: drop_edge only removes edges
    whose reliable endpoints disagree on the cluster, and add_edge only
    inserts same-cluster (node, centroid) edges, so neither operation can
    affect the other.  That lets the sparse path apply both as vectorised
    set operations on the COO triples.
    """
    assignments = np.asarray(assignments, dtype=np.float64)
    reliable_nodes = np.asarray(reliable_nodes, dtype=np.int64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    num_nodes = adjacency.num_nodes
    num_clusters = assignments.shape[1]
    hard = np.argmax(assignments, axis=1)

    if reliable_nodes.size == 0:
        return adjacency.copy()

    rows, cols, values = adjacency.coo()
    reliable_mask = np.zeros(num_nodes, dtype=bool)
    reliable_mask[reliable_nodes] = True

    if drop_edges:
        keep = ~(
            reliable_mask[rows] & reliable_mask[cols] & (hard[rows] != hard[cols])
        )
        rows, cols, values = rows[keep], cols[keep], values[keep]

    if add_edges:
        centroid_nodes = _cluster_centroid_nodes(
            embeddings, hard, reliable_nodes, num_clusters
        )
        # Cluster → centroid-node lookup (-1 for clusters without one).
        centroid_of = np.full(num_clusters, -1, dtype=np.int64)
        for cluster, node in centroid_nodes.items():
            centroid_of[cluster] = node
        centroids = centroid_of[hard[reliable_nodes]]
        valid = (centroids >= 0) & (centroids != reliable_nodes)
        # Centroid nodes are reliable members of their own cluster, so the
        # dense path's agreement check (hard[centroid] == cluster) always
        # holds; it is re-checked here to stay byte-for-byte equivalent.
        valid &= hard[np.where(valid, centroids, 0)] == hard[reliable_nodes]
        sources = reliable_nodes[valid]
        targets = centroids[valid]
        # The dense path only fires an add when (node, centroid) is absent
        # after the drops, and a fired add writes *both* directions with 1.0
        # (overwriting any existing reverse entry).  Reproduce that exactly:
        fired = ~np.isin(sources * num_nodes + targets, rows * num_nodes + cols)
        sources, targets = sources[fired], targets[fired]
        added_rows = np.concatenate([sources, targets])
        added_cols = np.concatenate([targets, sources])
        # Added edges listed first so they win the dedup below, matching the
        # dense path's overwrite semantics.
        rows = np.concatenate([added_rows, rows])
        cols = np.concatenate([added_cols, cols])
        values = np.concatenate([np.ones(added_rows.shape[0]), values])

    keys = rows * num_nodes + cols
    _, first_occurrence = np.unique(keys, return_index=True)
    return SparseAdjacency.from_coo(
        rows[first_occurrence],
        cols[first_occurrence],
        values[first_occurrence],
        num_nodes,
    )


class GraphTransformOperator:
    """Object-style wrapper around :func:`build_clustering_oriented_graph`.

    Stores the add/drop toggles so the trainer can re-apply Υ every ``M2``
    epochs; the ablations of Table 9 are obtained by switching the toggles.
    """

    def __init__(self, add_edges: bool = True, drop_edges: bool = True) -> None:
        self.add_edges = bool(add_edges)
        self.drop_edges = bool(drop_edges)

    def __call__(
        self,
        adjacency: np.ndarray,
        assignments: np.ndarray,
        reliable_nodes: np.ndarray,
        embeddings: np.ndarray,
    ) -> np.ndarray:
        return build_clustering_oriented_graph(
            adjacency,
            assignments,
            reliable_nodes,
            embeddings,
            add_edges=self.add_edges,
            drop_edges=self.drop_edges,
        )
