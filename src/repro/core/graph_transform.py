"""The graph operator Υ (Algorithm 2) — correction against Feature Drift.

Υ rewrites the self-supervision graph used by the reconstruction loss into a
clustering-oriented one:

1. for each cluster, the *centroid node* is the decidable node closest to
   the mean embedding of the cluster's decidable members (set Π),
2. **add_edge** — every decidable node is connected to the centroid node of
   its own cluster (if both agree on that cluster),
3. **drop_edge** — edges between decidable nodes assigned to different
   clusters are removed.

At convergence the resulting graph consists of K star-shaped sub-graphs, as
visualised in Figure 4 of the paper.  The worst-case complexity is
O(N (d + K) + |E| (N + K)).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.graph.sparse import SparseAdjacency

AdjacencyLike = Union[np.ndarray, SparseAdjacency]


def _cluster_centroid_nodes(
    embeddings: np.ndarray,
    hard_assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    num_clusters: int,
) -> Dict[int, int]:
    """The set Π: for each cluster, the reliable node nearest to its mean embedding.

    Clusters without any reliable member are omitted from the mapping.
    """
    centroid_nodes: Dict[int, int] = {}
    reliable_nodes = np.asarray(reliable_nodes, dtype=np.int64)
    if reliable_nodes.size == 0:
        return centroid_nodes
    reliable_labels = hard_assignments[reliable_nodes]
    for cluster in range(num_clusters):
        members = reliable_nodes[reliable_labels == cluster]
        if members.size == 0:
            continue
        mean_embedding = embeddings[members].mean(axis=0)
        distances = np.linalg.norm(embeddings[members] - mean_embedding, axis=1)
        centroid_nodes[cluster] = int(members[int(np.argmin(distances))])
    return centroid_nodes


def build_clustering_oriented_graph(
    adjacency: AdjacencyLike,
    assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    embeddings: np.ndarray,
    add_edges: bool = True,
    drop_edges: bool = True,
) -> AdjacencyLike:
    """Apply Υ once and return the clustering-oriented graph ``A_self_clus``.

    Parameters
    ----------
    adjacency:
        The *original* sparse input graph A (Algorithm 2 always starts from
        it).  Dense arrays and :class:`~repro.graph.sparse.SparseAdjacency`
        are both accepted; the result matches the input backend, and the
        sparse path runs in O(|E| + |Ω|) without materialising (N, N).
    assignments:
        (N, K) clustering assignment matrix P (soft or hard).
    reliable_nodes:
        Indices of the decidable set Ω produced by the operator Ξ.
    embeddings:
        (N, d) embedded representations, used to locate centroid nodes.
    add_edges, drop_edges:
        Toggles for the two edit operations (ablations of Table 9).
    """
    if isinstance(adjacency, SparseAdjacency):
        return _build_clustering_oriented_graph_sparse(
            adjacency,
            assignments,
            reliable_nodes,
            embeddings,
            add_edges=add_edges,
            drop_edges=drop_edges,
        )
    adjacency = np.asarray(adjacency, dtype=np.float64)
    assignments = np.asarray(assignments, dtype=np.float64)
    reliable_nodes = np.asarray(reliable_nodes, dtype=np.int64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    num_clusters = assignments.shape[1]
    hard = np.argmax(assignments, axis=1)

    result = adjacency.copy()
    if reliable_nodes.size == 0:
        return result

    centroid_nodes = _cluster_centroid_nodes(embeddings, hard, reliable_nodes, num_clusters)
    reliable_mask = np.zeros(adjacency.shape[0], dtype=bool)
    reliable_mask[reliable_nodes] = True

    for node in reliable_nodes:
        node_cluster = int(hard[node])
        # add_edge: connect the node to its cluster's centroid node when both
        # agree on the cluster and the edge does not already exist.
        if add_edges and node_cluster in centroid_nodes:
            centroid = centroid_nodes[node_cluster]
            if centroid != node and result[node, centroid] == 0:
                if int(hard[centroid]) == node_cluster:
                    result[node, centroid] = 1.0
                    result[centroid, node] = 1.0
        # drop_edge: disconnect the node from reliable neighbours assigned to
        # a different cluster.
        if drop_edges:
            neighbors = np.flatnonzero(adjacency[node])
            for neighbor in neighbors:
                if reliable_mask[neighbor] and int(hard[neighbor]) != node_cluster:
                    result[node, neighbor] = 0.0
                    result[neighbor, node] = 0.0
    return result


def _build_clustering_oriented_graph_sparse(
    adjacency: SparseAdjacency,
    assignments: np.ndarray,
    reliable_nodes: np.ndarray,
    embeddings: np.ndarray,
    add_edges: bool = True,
    drop_edges: bool = True,
) -> SparseAdjacency:
    """Edge-wise Υ over a CSR adjacency.

    The dense loop above is order-independent: drop_edge only removes edges
    whose reliable endpoints disagree on the cluster, and add_edge only
    inserts same-cluster (node, centroid) edges, so neither operation can
    affect the other.  That lets the sparse path apply both as vectorised
    set operations on the COO triples.
    """
    assignments = np.asarray(assignments, dtype=np.float64)
    reliable_nodes = np.asarray(reliable_nodes, dtype=np.int64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    num_nodes = adjacency.num_nodes
    num_clusters = assignments.shape[1]
    hard = np.argmax(assignments, axis=1)

    if reliable_nodes.size == 0:
        return adjacency.copy()

    rows, cols, values = adjacency.coo()
    reliable_mask = np.zeros(num_nodes, dtype=bool)
    reliable_mask[reliable_nodes] = True

    if drop_edges:
        keep = ~(
            reliable_mask[rows] & reliable_mask[cols] & (hard[rows] != hard[cols])
        )
        rows, cols, values = rows[keep], cols[keep], values[keep]

    if add_edges:
        centroid_nodes = _cluster_centroid_nodes(
            embeddings, hard, reliable_nodes, num_clusters
        )
        # Cluster → centroid-node lookup (-1 for clusters without one).
        centroid_of = np.full(num_clusters, -1, dtype=np.int64)
        for cluster, node in centroid_nodes.items():
            centroid_of[cluster] = node
        centroids = centroid_of[hard[reliable_nodes]]
        valid = (centroids >= 0) & (centroids != reliable_nodes)
        # Centroid nodes are reliable members of their own cluster, so the
        # dense path's agreement check (hard[centroid] == cluster) always
        # holds; it is re-checked here to stay byte-for-byte equivalent.
        valid &= hard[np.where(valid, centroids, 0)] == hard[reliable_nodes]
        sources = reliable_nodes[valid]
        targets = centroids[valid]
        # The dense path only fires an add when (node, centroid) is absent
        # after the drops, and a fired add writes *both* directions with 1.0
        # (overwriting any existing reverse entry).  Reproduce that exactly:
        fired = ~np.isin(sources * num_nodes + targets, rows * num_nodes + cols)
        sources, targets = sources[fired], targets[fired]
        added_rows = np.concatenate([sources, targets])
        added_cols = np.concatenate([targets, sources])
        # Added edges listed first so they win the dedup below, matching the
        # dense path's overwrite semantics.
        rows = np.concatenate([added_rows, rows])
        cols = np.concatenate([added_cols, cols])
        values = np.concatenate([np.ones(added_rows.shape[0]), values])

    keys = rows * num_nodes + cols
    _, first_occurrence = np.unique(keys, return_index=True)
    return SparseAdjacency.from_coo(
        rows[first_occurrence],
        cols[first_occurrence],
        values[first_occurrence],
        num_nodes,
    )


class GraphTransformOperator:
    """Object-style wrapper around :func:`build_clustering_oriented_graph`.

    Stores the add/drop toggles so the trainer can re-apply Υ every ``M2``
    epochs; the ablations of Table 9 are obtained by switching the toggles.
    """

    def __init__(self, add_edges: bool = True, drop_edges: bool = True) -> None:
        self.add_edges = bool(add_edges)
        self.drop_edges = bool(drop_edges)

    def __call__(
        self,
        adjacency: np.ndarray,
        assignments: np.ndarray,
        reliable_nodes: np.ndarray,
        embeddings: np.ndarray,
    ) -> np.ndarray:
        return build_clustering_oriented_graph(
            adjacency,
            assignments,
            reliable_nodes,
            embeddings,
            add_edges=self.add_edges,
            drop_edges=self.drop_edges,
        )
