"""The paper's primary contribution.

* :mod:`repro.core.sampling` — the sampling operator Ξ (Algorithm 1), a
  protection mechanism against Feature Randomness.
* :mod:`repro.core.graph_transform` — the graph operator Υ (Algorithm 2), a
  correction mechanism against Feature Drift.
* :mod:`repro.core.rethink` — :class:`RethinkTrainer`, which wraps any model
  of :mod:`repro.models` into its R- variant (Eq. 6).
* :mod:`repro.core.fr_fd` — the Λ_FR / Λ_FD diagnostics (Eqs. 4 and 7) and
  the elementary per-node metrics Λ'_FR / Λ'_FD (Definitions 1-2).
* :mod:`repro.core.losses` — the loss decompositions of Propositions 1-2 and
  Theorem 1.
* :mod:`repro.core.supervision` — clustering / supervision graphs and the
  Hungarian-aligned oracle assignment Q'.
"""

from repro.core.sampling import SamplingOperator, SamplingResult, select_reliable_nodes
from repro.core.graph_transform import GraphTransformOperator, build_clustering_oriented_graph
from repro.core.rethink import RethinkTrainer, RethinkConfig, RethinkHistory
from repro.core.fr_fd import (
    gradient_cosine,
    feature_randomness_metric,
    feature_drift_metric,
    elementary_fr,
    elementary_fd,
    graph_filter_impact,
)
from repro.core.losses import (
    reconstruction_bce_sum,
    laplacian_term,
    reconstruction_remainder,
    kmeans_loss,
    combined_objective,
)
from repro.core.supervision import (
    clustering_graph,
    supervision_graph,
    aligned_oracle_assignments,
)

__all__ = [
    "SamplingOperator",
    "SamplingResult",
    "select_reliable_nodes",
    "GraphTransformOperator",
    "build_clustering_oriented_graph",
    "RethinkTrainer",
    "RethinkConfig",
    "RethinkHistory",
    "gradient_cosine",
    "feature_randomness_metric",
    "feature_drift_metric",
    "elementary_fr",
    "elementary_fd",
    "graph_filter_impact",
    "reconstruction_bce_sum",
    "laplacian_term",
    "reconstruction_remainder",
    "kmeans_loss",
    "combined_objective",
    "clustering_graph",
    "supervision_graph",
    "aligned_oracle_assignments",
]
