"""Loss decompositions of Propositions 1-2 and Theorem 1 (numpy, analysis only).

These functions express the GAE reconstruction loss and the embedded k-means
loss in their graph-Laplacian forms so the trade-off between Feature
Randomness and Feature Drift can be inspected numerically:

* Proposition 1:  ``L_bce(Â(Z), A_self) = L_C(Z, A_self) + L_R(Z, A_self)``
* Proposition 2:  ``L_kmeans(Z) = L_C(Z, A_clus)``
* Theorem 1:      ``L_kmeans + γ L_bce = L_C(Z, A_clus + γ A_self) + γ L_R``

All sums run over *ordered* node pairs (i, j), matching the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.supervision import membership_graph
from repro.graph.laplacian import laplacian_quadratic_form


def reconstruction_bce_sum(embeddings: np.ndarray, adjacency: np.ndarray) -> float:
    """Summed binary cross-entropy ``L_bce(Â(Z), A_self)`` over all ordered pairs.

    ``Â = sigmoid(Z Z^T)``; computed from logits for numerical stability:
    ``Σ_ij [softplus(z_i·z_j) - a_ij z_i·z_j]``.
    """
    z = np.asarray(embeddings, dtype=np.float64)
    a = np.asarray(adjacency, dtype=np.float64)  # repro: noqa[REP002] all-pairs BCE is O(N²) by definition (logits = ZZᵀ is already dense); diagnostic-only, never on the training path
    logits = z @ z.T
    return float(np.sum(np.logaddexp(0.0, logits) - a * logits))


def laplacian_term(embeddings: np.ndarray, adjacency: np.ndarray) -> float:
    """``L_C(Z, A') = 1/2 Σ_ij a'_ij ||z_i - z_j||²`` (ordered pairs)."""
    return laplacian_quadratic_form(embeddings, adjacency)


def reconstruction_remainder(embeddings: np.ndarray, adjacency: np.ndarray) -> float:
    """``L_R(Z, A_self) = Σ_ij [log(1+exp(z_i·z_j)) - a_ij (||z_i||²+||z_j||²)/2]``."""
    z = np.asarray(embeddings, dtype=np.float64)
    a = np.asarray(adjacency, dtype=np.float64)  # repro: noqa[REP002] the remainder term sums over all ordered pairs, O(N²) by definition; diagnostic-only, never on the training path
    logits = z @ z.T
    sq_norms = np.sum(z ** 2, axis=1)
    pair_norms = 0.5 * (sq_norms[:, None] + sq_norms[None, :])
    return float(np.sum(np.logaddexp(0.0, logits) - a * pair_norms))


def kmeans_loss(embeddings: np.ndarray, hard_labels: np.ndarray) -> float:
    """Embedded k-means loss ``Σ_k Σ_{i∈C_k} ||z_i - μ_k||²`` with empirical centres."""
    z = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(hard_labels, dtype=np.int64)
    total = 0.0
    for cluster in np.unique(labels):
        members = z[labels == cluster]
        center = members.mean(axis=0)
        total += float(np.sum((members - center) ** 2))
    return total


def kmeans_loss_as_laplacian(embeddings: np.ndarray, hard_labels: np.ndarray) -> float:
    """Right-hand side of Proposition 2: ``L_C(Z, A_clus)``."""
    a_clus = membership_graph(hard_labels)
    return laplacian_term(embeddings, a_clus)


def combined_objective(
    embeddings: np.ndarray,
    adjacency: np.ndarray,
    hard_labels: np.ndarray,
    gamma: float,
) -> dict:
    """Both sides of Theorem 1 for a given embedding, graph and partition.

    Returns a dictionary with the direct evaluation
    ``L_kmeans + γ L_bce`` and the decomposition
    ``L_C(Z, A_clus + γ A_self) + γ L_R(Z, A_self)``; the two should agree to
    numerical precision.
    """
    a_clus = membership_graph(hard_labels)
    direct = kmeans_loss(embeddings, hard_labels) + gamma * reconstruction_bce_sum(
        embeddings, adjacency
    )
    decomposed = laplacian_term(
        embeddings, a_clus + gamma * np.asarray(adjacency, dtype=np.float64)  # repro: noqa[REP002] the decomposition identity adds a dense membership graph to A, O(N²) by construction; verification-only helper
    ) + gamma * reconstruction_remainder(embeddings, adjacency)
    return {"direct": direct, "decomposed": decomposed, "gap": abs(direct - decomposed)}
