"""The sampling operator Ξ (Algorithm 1) — protection against Feature Randomness.

Given embedded representations and a clustering assignment matrix, Ξ selects
the set Ω of *decidable* nodes whose assignments are reliable enough to be
used as pseudo-supervision:

1. hard assignments are softened into Gaussian responsibilities (Eq. 15),
2. the first and second high-confidence scores λ¹ and λ² are extracted
   (Eqs. 16-17),
3. a node enters Ω when ``λ¹ ≥ α1`` and ``λ¹ - λ² ≥ α2`` (Eq. 18), with
   ``α2 = α1 / 2`` by default.

The computational complexity is O(N K² d), as stated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clustering.assignments import soften_assignments
from repro.observability.tracer import span as _span


@dataclass
class SamplingResult:
    """Output of the operator Ξ."""

    #: indices of decidable nodes (the set Ω).
    reliable_nodes: np.ndarray
    #: (N, K) softened assignment matrix p'.
    soft_assignments: np.ndarray
    #: first high-confidence score λ¹ per node.
    first_scores: np.ndarray
    #: second high-confidence score λ² per node.
    second_scores: np.ndarray

    @property
    def num_reliable(self) -> int:
        return int(self.reliable_nodes.shape[0])

    def coverage(self) -> float:
        """|Ω| / N — the fraction driving the convergence criterion."""
        num_nodes = self.soft_assignments.shape[0]
        if num_nodes == 0:
            raise ValueError(
                "coverage() is undefined for an empty graph (0 nodes); "
                "the sampling operator received no assignments"
            )
        return self.num_reliable / num_nodes

    def mask(self) -> np.ndarray:
        """Boolean mask of decidable nodes."""
        mask = np.zeros(self.soft_assignments.shape[0], dtype=bool)
        mask[self.reliable_nodes] = True
        return mask


def confidence_scores(soft_assignments: np.ndarray) -> tuple:
    """First and second high-confidence scores (Eqs. 16-17) per node."""
    soft_assignments = np.asarray(soft_assignments, dtype=np.float64)
    if soft_assignments.shape[1] < 2:
        first = soft_assignments[:, 0]
        return first, np.zeros_like(first)
    sorted_scores = np.sort(soft_assignments, axis=1)
    first = sorted_scores[:, -1]
    second = sorted_scores[:, -2]
    return first, second


def select_reliable_nodes(
    embeddings: np.ndarray,
    assignments: np.ndarray,
    alpha1: float,
    alpha2: Optional[float] = None,
) -> SamplingResult:
    """Apply the operator Ξ and return the decidable set Ω with diagnostics.

    Parameters
    ----------
    embeddings:
        (N, d) embedded representations Z.
    assignments:
        (N, K) clustering assignment matrix P — hard (one-hot) or soft.
    alpha1:
        First confidence threshold in [0, 1].
    alpha2:
        Margin threshold; defaults to ``alpha1 / 2`` as in the paper.
    """
    if not 0.0 <= alpha1 <= 1.0:
        raise ValueError("alpha1 must lie in [0, 1]")
    if alpha2 is None:
        alpha2 = alpha1 / 2.0
    if alpha2 < 0.0:
        raise ValueError("alpha2 must be non-negative")
    soft = soften_assignments(np.asarray(assignments, dtype=np.float64), embeddings)
    first, second = confidence_scores(soft)
    selected = np.flatnonzero((first >= alpha1) & ((first - second) >= alpha2))
    return SamplingResult(
        reliable_nodes=selected,
        soft_assignments=soft,
        first_scores=first,
        second_scores=second,
    )


class SamplingOperator:
    """Object-style wrapper around :func:`select_reliable_nodes`.

    Holds the (α1, α2) configuration so the trainer can re-apply Ξ every
    ``M1`` epochs without re-threading hyper-parameters.  Setting
    ``use_margin_criterion=False`` or ``use_confidence_criterion=False``
    reproduces the ablations of Table 8.
    """

    def __init__(
        self,
        alpha1: float = 0.3,
        alpha2: Optional[float] = None,
        use_confidence_criterion: bool = True,
        use_margin_criterion: bool = True,
    ) -> None:
        if not 0.0 <= alpha1 <= 1.0:
            raise ValueError("alpha1 must lie in [0, 1]")
        self.alpha1 = float(alpha1)
        self.alpha2 = float(alpha1 / 2.0 if alpha2 is None else alpha2)
        self.use_confidence_criterion = bool(use_confidence_criterion)
        self.use_margin_criterion = bool(use_margin_criterion)

    def __call__(self, embeddings: np.ndarray, assignments: np.ndarray) -> SamplingResult:
        """Apply Ξ, honouring any disabled criteria (Table 8 ablations)."""
        effective_alpha1 = self.alpha1 if self.use_confidence_criterion else 0.0
        effective_alpha2 = self.alpha2 if self.use_margin_criterion else 0.0
        with _span("kernel.sampling_xi"):
            return select_reliable_nodes(
                embeddings, assignments, alpha1=effective_alpha1, alpha2=effective_alpha2
            )
