"""Feature construction helpers shared by the dataset builders.

The paper row-normalises every feature matrix with the Euclidean norm and,
for the attribute-free air-traffic networks, uses a one-hot encoding of the
node degree as the feature matrix (Section 5.1).  Both constructions are
reproduced here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def degree_one_hot_features(adjacency: np.ndarray, max_degree: Optional[int] = None) -> np.ndarray:
    """One-hot encoding of the (capped) node degree.

    Parameters
    ----------
    adjacency:
        Binary symmetric adjacency matrix.
    max_degree:
        Degrees above this value are clamped into the last bucket.  When
        ``None`` the maximum observed degree is used.
    """
    degrees = np.asarray(adjacency, dtype=np.float64).sum(axis=1).astype(int)
    if max_degree is None:
        max_degree = int(degrees.max()) if degrees.size else 0
    capped = np.minimum(degrees, max_degree)
    features = np.zeros((degrees.shape[0], max_degree + 1))
    features[np.arange(degrees.shape[0]), capped] = 1.0
    return features


def row_normalize(features: np.ndarray, norm: str = "l2") -> np.ndarray:
    """Row-normalise a feature matrix.

    ``norm`` is ``"l2"`` (Euclidean, the paper's choice) or ``"l1"``.
    All-zero rows are left untouched.
    """
    features = np.asarray(features, dtype=np.float64)
    if norm == "l2":
        scale = np.linalg.norm(features, axis=1, keepdims=True)
    elif norm == "l1":
        scale = np.abs(features).sum(axis=1, keepdims=True)
    else:
        raise ValueError(f"unknown norm: {norm!r}")
    scale[scale == 0.0] = 1.0
    return features / scale
