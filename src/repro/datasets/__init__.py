"""Benchmark dataset registry.

The six named datasets mirror the evaluation of the paper:

* citation-network surrogates — ``cora_sim`` (7 clusters), ``citeseer_sim``
  (6 clusters), ``pubmed_sim`` (3 clusters) with sparse class-correlated
  binary features;
* air-traffic surrogates — ``usa_air_sim``, ``europe_air_sim``,
  ``brazil_air_sim`` (4 clusters each) with one-hot degree features, as in
  the paper.

See DESIGN.md §2 for the substitution rationale.
"""

from repro.datasets.registry import (
    DATASETS,
    DATASET_BUILDERS,
    available_datasets,
    load_dataset,
    citation_datasets,
    air_traffic_datasets,
    dataset_summary,
)
from repro.datasets.features import (
    degree_one_hot_features,
    row_normalize,
)

__all__ = [
    "DATASETS",
    "DATASET_BUILDERS",
    "available_datasets",
    "load_dataset",
    "citation_datasets",
    "air_traffic_datasets",
    "dataset_summary",
    "degree_one_hot_features",
    "row_normalize",
]
