"""Named benchmark datasets.

Each builder returns a deterministic :class:`~repro.graph.graph.AttributedGraph`
for a given seed.  The defaults are scaled-down surrogates of the paper's
datasets (see DESIGN.md §2); the cluster counts, feature style, relative
sparsity and class imbalance follow the originals.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.datasets.features import row_normalize
from repro.graph.generators import attributed_sbm_graph
from repro.graph.graph import AttributedGraph
from repro.graph.stats import describe

DatasetBuilder = Callable[[int], AttributedGraph]


def _finalize(graph: AttributedGraph) -> AttributedGraph:
    """Apply the paper's preprocessing: L2 row-normalised features."""
    return graph.with_features(row_normalize(graph.features, norm="l2"))


def make_cora_sim(seed: int = 0) -> AttributedGraph:
    """Cora surrogate: 7 imbalanced clusters, sparse binary features."""
    graph = attributed_sbm_graph(
        num_nodes=600,
        proportions=[0.30, 0.16, 0.15, 0.12, 0.11, 0.09, 0.07],
        p_intra=0.055,
        p_inter=0.004,
        num_features=500,
        active_per_class=35,
        signal=0.10,
        noise=0.010,
        seed=seed,
        name="cora_sim",
    )
    return _finalize(graph)


def make_citeseer_sim(seed: int = 0) -> AttributedGraph:
    """Citeseer surrogate: 6 clusters, sparser topology, noisier features."""
    graph = attributed_sbm_graph(
        num_nodes=540,
        proportions=[0.25, 0.21, 0.20, 0.14, 0.12, 0.08],
        p_intra=0.045,
        p_inter=0.005,
        num_features=600,
        active_per_class=40,
        signal=0.09,
        noise=0.011,
        seed=seed + 101,
        name="citeseer_sim",
    )
    return _finalize(graph)


def make_pubmed_sim(seed: int = 0) -> AttributedGraph:
    """Pubmed surrogate: larger, only 3 clusters, denser features."""
    graph = attributed_sbm_graph(
        num_nodes=720,
        proportions=[0.40, 0.38, 0.22],
        p_intra=0.030,
        p_inter=0.004,
        num_features=400,
        active_per_class=55,
        signal=0.11,
        noise=0.012,
        seed=seed + 202,
        name="pubmed_sim",
    )
    return _finalize(graph)


def make_usa_air_sim(seed: int = 0) -> AttributedGraph:
    """USA air-traffic surrogate: 4 activity levels, hub structure, degree features."""
    graph = attributed_sbm_graph(
        num_nodes=400,
        proportions=[0.25, 0.25, 0.25, 0.25],
        p_intra=0.10,
        p_inter=0.035,
        num_features=41,
        active_per_class=0,
        signal=0.0,
        noise=0.0,
        seed=seed + 303,
        name="usa_air_sim",
        degree_corrected=True,
        degree_exponent=2.2,
        features="degree_onehot",
    )
    return _finalize(graph)


def make_europe_air_sim(seed: int = 0) -> AttributedGraph:
    """Europe air-traffic surrogate."""
    graph = attributed_sbm_graph(
        num_nodes=350,
        proportions=[0.25, 0.25, 0.25, 0.25],
        p_intra=0.12,
        p_inter=0.045,
        num_features=41,
        active_per_class=0,
        signal=0.0,
        noise=0.0,
        seed=seed + 404,
        name="europe_air_sim",
        degree_corrected=True,
        degree_exponent=2.0,
        features="degree_onehot",
    )
    return _finalize(graph)


def make_brazil_air_sim(seed: int = 0) -> AttributedGraph:
    """Brazil air-traffic surrogate: the smallest network of the suite."""
    graph = attributed_sbm_graph(
        num_nodes=130,
        proportions=[0.25, 0.25, 0.25, 0.25],
        p_intra=0.22,
        p_inter=0.06,
        num_features=31,
        active_per_class=0,
        signal=0.0,
        noise=0.0,
        seed=seed + 505,
        name="brazil_air_sim",
        degree_corrected=True,
        degree_exponent=2.0,
        features="degree_onehot",
    )
    return _finalize(graph)


DATASET_BUILDERS: Dict[str, DatasetBuilder] = {
    "cora_sim": make_cora_sim,
    "citeseer_sim": make_citeseer_sim,
    "pubmed_sim": make_pubmed_sim,
    "usa_air_sim": make_usa_air_sim,
    "europe_air_sim": make_europe_air_sim,
    "brazil_air_sim": make_brazil_air_sim,
}

# Which real dataset each surrogate stands in for (documentation only).
SURROGATE_OF: Dict[str, str] = {
    "cora_sim": "Cora",
    "citeseer_sim": "Citeseer",
    "pubmed_sim": "Pubmed",
    "usa_air_sim": "USA Air-Traffic",
    "europe_air_sim": "Europe Air-Traffic",
    "brazil_air_sim": "Brazil Air-Traffic",
}


def available_datasets() -> List[str]:
    """Names of all registered datasets."""
    return sorted(DATASET_BUILDERS)


def citation_datasets() -> List[str]:
    """The citation-network surrogates (Tables 1-2 of the paper)."""
    return ["cora_sim", "citeseer_sim", "pubmed_sim"]


def air_traffic_datasets() -> List[str]:
    """The air-traffic surrogates (Tables 3-4 of the paper)."""
    return ["usa_air_sim", "europe_air_sim", "brazil_air_sim"]


def load_dataset(name: str, seed: int = 0) -> AttributedGraph:
    """Build the named dataset deterministically for the given seed."""
    if name not in DATASET_BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return DATASET_BUILDERS[name](seed)


def dataset_summary(name: str, seed: int = 0) -> dict:
    """Descriptive statistics of a named dataset (nodes, edges, homophily...)."""
    summary = describe(load_dataset(name, seed))
    summary["surrogate_of"] = SURROGATE_OF.get(name, "")
    return summary
