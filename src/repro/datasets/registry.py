"""Named benchmark datasets.

Each builder returns a deterministic :class:`~repro.graph.graph.AttributedGraph`
for a given seed.  The defaults are scaled-down surrogates of the paper's
datasets (see DESIGN.md §2); the cluster counts, feature style, relative
sparsity and class imbalance follow the originals.

The builders register themselves on :data:`DATASETS` — an instance of the
generic :class:`repro.api.registry.Registry` — with their family
("citation" / "air_traffic") and the real dataset they stand in for as
queryable metadata.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.registry import Registry
from repro.datasets.features import row_normalize
from repro.graph.generators import attributed_sbm_graph
from repro.graph.graph import AttributedGraph
from repro.graph.stats import describe

#: the unified dataset registry (name → builder, with family metadata).
DATASETS = Registry("dataset")

#: deprecated alias — a Mapping view over :data:`DATASETS`.
DATASET_BUILDERS = DATASETS


def _finalize(graph: AttributedGraph) -> AttributedGraph:
    """Apply the paper's preprocessing: L2 row-normalised features."""
    return graph.with_features(row_normalize(graph.features, norm="l2"))


@DATASETS.register("cora_sim", family="citation", surrogate_of="Cora")
def make_cora_sim(seed: int = 0) -> AttributedGraph:
    """Cora surrogate: 7 imbalanced clusters, sparse binary features."""
    graph = attributed_sbm_graph(
        num_nodes=600,
        proportions=[0.30, 0.16, 0.15, 0.12, 0.11, 0.09, 0.07],
        p_intra=0.055,
        p_inter=0.004,
        num_features=500,
        active_per_class=35,
        signal=0.10,
        noise=0.010,
        seed=seed,
        name="cora_sim",
    )
    return _finalize(graph)


@DATASETS.register("citeseer_sim", family="citation", surrogate_of="Citeseer")
def make_citeseer_sim(seed: int = 0) -> AttributedGraph:
    """Citeseer surrogate: 6 clusters, sparser topology, noisier features."""
    graph = attributed_sbm_graph(
        num_nodes=540,
        proportions=[0.25, 0.21, 0.20, 0.14, 0.12, 0.08],
        p_intra=0.045,
        p_inter=0.005,
        num_features=600,
        active_per_class=40,
        signal=0.09,
        noise=0.011,
        seed=seed + 101,
        name="citeseer_sim",
    )
    return _finalize(graph)


@DATASETS.register("pubmed_sim", family="citation", surrogate_of="Pubmed")
def make_pubmed_sim(seed: int = 0) -> AttributedGraph:
    """Pubmed surrogate: larger, only 3 clusters, denser features."""
    graph = attributed_sbm_graph(
        num_nodes=720,
        proportions=[0.40, 0.38, 0.22],
        p_intra=0.030,
        p_inter=0.004,
        num_features=400,
        active_per_class=55,
        signal=0.11,
        noise=0.012,
        seed=seed + 202,
        name="pubmed_sim",
    )
    return _finalize(graph)


@DATASETS.register("usa_air_sim", family="air_traffic", surrogate_of="USA Air-Traffic")
def make_usa_air_sim(seed: int = 0) -> AttributedGraph:
    """USA air-traffic surrogate: 4 activity levels, hub structure, degree features."""
    graph = attributed_sbm_graph(
        num_nodes=400,
        proportions=[0.25, 0.25, 0.25, 0.25],
        p_intra=0.10,
        p_inter=0.035,
        num_features=41,
        active_per_class=0,
        signal=0.0,
        noise=0.0,
        seed=seed + 303,
        name="usa_air_sim",
        degree_corrected=True,
        degree_exponent=2.2,
        features="degree_onehot",
    )
    return _finalize(graph)


@DATASETS.register("europe_air_sim", family="air_traffic", surrogate_of="Europe Air-Traffic")
def make_europe_air_sim(seed: int = 0) -> AttributedGraph:
    """Europe air-traffic surrogate."""
    graph = attributed_sbm_graph(
        num_nodes=350,
        proportions=[0.25, 0.25, 0.25, 0.25],
        p_intra=0.12,
        p_inter=0.045,
        num_features=41,
        active_per_class=0,
        signal=0.0,
        noise=0.0,
        seed=seed + 404,
        name="europe_air_sim",
        degree_corrected=True,
        degree_exponent=2.0,
        features="degree_onehot",
    )
    return _finalize(graph)


@DATASETS.register("brazil_air_sim", family="air_traffic", surrogate_of="Brazil Air-Traffic")
def make_brazil_air_sim(seed: int = 0) -> AttributedGraph:
    """Brazil air-traffic surrogate: the smallest network of the suite."""
    graph = attributed_sbm_graph(
        num_nodes=130,
        proportions=[0.25, 0.25, 0.25, 0.25],
        p_intra=0.22,
        p_inter=0.06,
        num_features=31,
        active_per_class=0,
        signal=0.0,
        noise=0.0,
        seed=seed + 505,
        name="brazil_air_sim",
        degree_corrected=True,
        degree_exponent=2.0,
        features="degree_onehot",
    )
    return _finalize(graph)


# Which real dataset each surrogate stands in for (derived from metadata).
SURROGATE_OF: Dict[str, str] = {
    name: DATASETS.metadata(name).get("surrogate_of", "") for name in DATASETS.names()
}


def available_datasets() -> List[str]:
    """Names of all registered datasets."""
    return sorted(DATASETS.names())


def citation_datasets() -> List[str]:
    """The citation-network surrogates (Tables 1-2 of the paper)."""
    return DATASETS.names(family="citation")


def air_traffic_datasets() -> List[str]:
    """The air-traffic surrogates (Tables 3-4 of the paper)."""
    return DATASETS.names(family="air_traffic")


def load_dataset(name: str, seed: int = 0) -> AttributedGraph:
    """Build the named dataset deterministically for the given seed."""
    return DATASETS.build(name, seed)


def dataset_summary(name: str, seed: int = 0) -> dict:
    """Descriptive statistics of a named dataset (nodes, edges, homophily...)."""
    summary = describe(load_dataset(name, seed))
    summary["surrogate_of"] = DATASETS.metadata(name).get("surrogate_of", "")
    return summary
