"""Warm-start cache for the shared pretraining phase.

Every D / R-D pair, ablation row and multi-seed trial starts from the same
self-supervised pretraining, and before this module existed each of them
re-ran it from scratch.  :func:`warm_pretrain` makes pretraining a cached
artifact: on a hit the model (weights, discriminator/optimizer extras and
— crucially — the RNG stream) is restored to its exact post-pretraining
state, so everything downstream is bitwise identical to a cold run; on a
miss the model pretrains normally and the resulting snapshot is stored for
the next trial.

Key construction mirrors :func:`repro.parallel.load_dataset_cached`: a
registry trial is keyed by its dataset spec; an explicit graph is keyed by
a content fingerprint of its adjacency and features, so corrupted
robustness-sweep graphs never alias the clean dataset they came from.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Any, Dict, Optional

from repro.errors import (
    ArtifactCorruptError,
    SnapshotMismatchError,
    SnapshotSchemaError,
)
from repro.observability.metrics import metric_inc
from repro.store.keys import graph_fingerprint, pretrain_key
from repro.store.snapshot import Snapshot
from repro.store.store import QUARANTINE_DIR, ArtifactStore, active_store


def disabled_stats() -> Dict[str, Any]:
    """The stats dict reported when no store is configured."""
    return {"enabled": False, "hit": False, "key": None, "store": None}


def pretrain_cache_key(
    model: Any,
    pretrain_epochs: int,
    dataset: Optional[Dict[str, Any]] = None,
    graph: Any = None,
    config: Any = None,
) -> str:
    """Stable key of one pretraining run.

    ``dataset`` (a dataset-spec dict) wins over ``graph`` (content
    fingerprint); the model is identified by its full scalar configuration
    signature, which already carries the model seed.
    """
    if dataset is None:
        if graph is None:
            raise ValueError("pretrain_cache_key needs a dataset spec or a graph")
        dataset = graph_fingerprint(graph)
    return pretrain_key(
        dataset=dataset,
        model=model.config_signature(),
        seed=getattr(model, "seed", 0),
        pretrain_epochs=pretrain_epochs,
        config=config,
    )


def warm_pretrain(
    model: Any,
    graph: Any,
    pretrain_epochs: int,
    store: Optional[ArtifactStore] = None,
    dataset: Optional[Dict[str, Any]] = None,
    config: Any = None,
    spec: Optional[Dict[str, Any]] = None,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Pretrain ``model`` on ``graph``, served from ``store`` when possible.

    Returns a stats dict (``enabled`` / ``hit`` / ``key`` / ``seconds``,
    plus ``degraded`` / ``degraded_reason`` when recovery kicked in) that
    callers surface in ``RunResult.extra['pretrain_cache']``.  With no
    store (explicit or :func:`~repro.store.store.active_store`), this is
    exactly ``model.pretrain(...)``.

    A corrupt artifact (checksum mismatch, truncated pickle — already
    quarantined by the store), a stale schema version, or a snapshot that
    no longer fits the model **degrades to cold pretraining**: the trial
    still runs, a warning records why, and the fresh result replaces the
    bad artifact.  Warm starting is an optimisation; it must never be able
    to fail a sweep.
    """
    store = store if store is not None else active_store()
    start = time.perf_counter()
    if store is None:
        model.pretrain(graph, epochs=pretrain_epochs, verbose=verbose)
        stats = disabled_stats()
        stats["seconds"] = time.perf_counter() - start
        return stats

    key = pretrain_cache_key(
        model, pretrain_epochs, dataset=dataset, graph=graph, config=config
    )
    degraded_reason = None
    quarantined_path = None
    try:
        snapshot = store.get(key, default=None)
    except (ArtifactCorruptError, SnapshotSchemaError) as error:
        degraded_reason = f"{type(error).__name__}: {error}"
        original = getattr(error, "path", None)
        if original:
            # The store moved the corrupt object here before raising.
            quarantined_path = os.path.join(
                store.root, QUARANTINE_DIR, os.path.basename(original)
            )
        snapshot = None
    if snapshot is not None:
        try:
            # restore_rng=True: the snapshot's RNG state is the
            # post-pretraining stream, so the clustering phase consumes
            # exactly the noise a cold run would.
            snapshot.apply(model, restore_rng=True)
            hit = True
            metric_inc("pretrain.warm_hits")
        except (SnapshotMismatchError, SnapshotSchemaError) as error:
            degraded_reason = f"{type(error).__name__}: {error}"
            snapshot = None
    if snapshot is None:
        metric_inc("pretrain.warm_misses")
        if degraded_reason is not None:
            metric_inc("pretrain.degraded")
            # The full key and the quarantine destination make the incident
            # actionable straight from the log: `repro-run store-gc` output
            # and the quarantine/ listing both speak the same names.
            quarantine_note = (
                f"; corrupt artifact kept at {quarantined_path}"
                if quarantined_path is not None
                else ""
            )
            warnings.warn(
                f"warm start for key {key} (store {store.root}) degraded to "
                f"cold pretraining ({degraded_reason}){quarantine_note}",
                RuntimeWarning,
                stacklevel=2,
            )
        model.pretrain(graph, epochs=pretrain_epochs, verbose=verbose)
        snapshot = Snapshot.capture(
            model,
            spec=spec,
            epoch=pretrain_epochs,
            phase="pretrain",
            metadata={"graph": getattr(graph, "name", "graph")},
        )
        store.put(key, snapshot)
        hit = False
    stats = {
        "enabled": True,
        "hit": hit,
        "key": key,
        "store": store.root,
        "seconds": time.perf_counter() - start,
    }
    if degraded_reason is not None:
        stats["degraded"] = True
        stats["degraded_reason"] = degraded_reason
    return stats
