"""Stable, content-addressed keys for the artifact store.

Every artifact is identified by a SHA-256 over a *canonical* JSON rendering
of its identity — the same ``(dataset, model, variant, seed, config)``
coordinates that identify a trial, mirroring how
:func:`repro.parallel.load_dataset_cached` keys its per-process dataset
cache.  Canonicalisation sorts dict keys recursively and normalises numpy
scalars/arrays and tuples, so the key is independent of dict insertion
order, process boundaries and Python hash randomisation: the same logical
identity always maps to the same hex digest, in any process, on any run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

import numpy as np

from repro.errors import StoreError


def _canonical(value: Any) -> Any:
    """Recursively normalise ``value`` into canonical JSON-compatible data."""
    if isinstance(value, dict):
        normalised = {}
        for key in value:
            if not isinstance(key, str):
                raise StoreError(
                    f"store keys require string dict keys, got {type(key).__name__}: {key!r}"
                )
            normalised[key] = _canonical(value[key])
        return {key: normalised[key] for key in sorted(normalised)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.shape, "sha256": array_digest(value)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise StoreError(
        f"cannot build a stable store key from {type(value).__name__}: {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """The canonical JSON text hashed by :func:`config_hash` (sorted keys)."""
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


def config_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``payload``.

    Stable across dict key orderings, tuples vs lists, numpy vs builtin
    scalars, and process restarts.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def array_digest(array: np.ndarray) -> str:
    """Hex SHA-256 of an array's dtype, shape and contiguous bytes."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(str(array.shape).encode("utf-8"))
    digest.update(array.tobytes())
    return digest.hexdigest()


def graph_fingerprint(graph: Any) -> Dict[str, Any]:
    """Content identity of an :class:`~repro.graph.graph.AttributedGraph`.

    Used when a trial is driven from an explicit graph (no registry dataset
    spec to key on): the adjacency and feature *contents* identify the
    pretraining input, so corrupted/robustness-sweep graphs never alias the
    clean dataset they were derived from.
    """
    return {
        "name": getattr(graph, "name", "graph"),
        "num_nodes": int(graph.num_nodes),
        "adjacency": array_digest(graph.adjacency),
        "features": array_digest(graph.features),
    }


def pretrain_key(
    *,
    dataset: Any,
    model: Any,
    seed: int,
    pretrain_epochs: int,
    config: Any = None,
) -> str:
    """Key of a shared pretraining snapshot.

    Deliberately excludes the trial *variant*: the paper's fairness protocol
    makes D and R-D share pretraining weights, so both variants of a pair
    resolve to the same snapshot.  ``dataset`` is either a dataset-spec dict
    (registry trials) or a :func:`graph_fingerprint` (explicit graphs);
    ``config`` carries anything else that changes the pretraining numerics
    (e.g. sparse-backend promotion thresholds).
    """
    return config_hash(
        {
            "kind": "pretrain",
            "dataset": dataset,
            "model": model,
            "seed": int(seed),
            "pretrain_epochs": int(pretrain_epochs),
            "config": config,
        }
    )


def run_key(spec_dict: Dict[str, Any]) -> str:
    """Key of a fully trained artifact: the hash of its complete RunSpec."""
    return config_hash({"kind": "run", "spec": spec_dict})
