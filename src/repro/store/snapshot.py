"""Versioned serialization of trained-model state.

A :class:`Snapshot` captures everything needed to continue — or serve — a
model exactly where it stopped:

* the model's parameter ``state_dict`` plus its non-parameter
  ``extra_state`` (cluster moments, mixture parameters, DGAE's trainable
  centres, the RNG stream),
* optionally the driving optimizer's state (Adam moments and step count),
  so a resumed run takes bitwise-identical gradient steps,
* epoch counters and the training phase,
* the producing :class:`~repro.api.spec.RunSpec` as a plain dict, making
  every artifact self-describing,
* a schema-version field checked on load, so stale files fail with a clear
  :class:`~repro.errors.SnapshotSchemaError` instead of a silent misload.

Snapshots validate themselves against the model they are applied to
(:meth:`Snapshot.validate`) *before* mutating anything, raising
:class:`~repro.errors.SnapshotMismatchError` — this is what lets
:class:`~repro.api.Pipeline` fail fast on a wrong checkpoint instead of
mid-training.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import (
    ArtifactCorruptError,
    SnapshotMismatchError,
    SnapshotSchemaError,
)

#: bump when the payload layout changes incompatibly.
SCHEMA_VERSION = 1
#: magic tag identifying snapshot payloads on disk.
FORMAT_NAME = "repro.store/snapshot"


@dataclass
class Snapshot:
    """One frozen training state (see module docstring)."""

    model_class: str
    params: Dict[str, np.ndarray]
    extra: Dict[str, Any]
    config: Dict[str, Any]
    optimizer: Optional[Dict[str, Any]] = None
    epoch: int = 0
    phase: str = "pretrain"
    spec: Optional[Dict[str, Any]] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # capture / apply
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        model: Any,
        optimizer: Any = None,
        spec: Optional[Dict[str, Any]] = None,
        epoch: int = 0,
        phase: str = "pretrain",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "Snapshot":
        """Freeze ``model`` (and optionally its optimizer) into a snapshot."""
        return cls(
            model_class=type(model).__name__,
            params={name: value.copy() for name, value in model.state_dict().items()},
            extra=model.extra_state(),
            config=model.config_signature(),
            optimizer=None if optimizer is None else optimizer.state_dict(),
            epoch=int(epoch),
            phase=str(phase),
            spec=None if spec is None else dict(spec),
            metadata=dict(metadata or {}),
        )

    def validate(self, model: Any) -> None:
        """Check the snapshot fits ``model`` without mutating anything.

        Raises :class:`SnapshotMismatchError` on a class mismatch, missing
        parameters, shape mismatches, or parameters the model cannot hold.
        Parameters that only materialise during clustering initialisation
        (declared in ``extra['trainable_extras']``, e.g. DGAE's centres)
        are allowed to be absent from a freshly built model.
        """
        if self.schema_version != SCHEMA_VERSION:
            raise SnapshotSchemaError(
                f"snapshot has schema version {self.schema_version}, "
                f"this build reads version {SCHEMA_VERSION}"
            )
        model_class = type(model).__name__
        if self.model_class != model_class:
            raise SnapshotMismatchError(
                f"snapshot was captured from {self.model_class}, "
                f"cannot apply to {model_class}"
            )
        named = model.named_parameters()
        missing = set(named) - set(self.params)
        if missing:
            raise SnapshotMismatchError(
                f"snapshot is missing parameters the model holds: {sorted(missing)}"
            )
        allowed_extras = set(self.extra.get("trainable_extras", []))
        unexpected = set(self.params) - set(named) - allowed_extras
        if unexpected:
            raise SnapshotMismatchError(
                f"snapshot holds parameters the model cannot load: {sorted(unexpected)}"
            )
        for name, param in named.items():
            value = np.asarray(self.params[name])
            if value.shape != param.data.shape:
                raise SnapshotMismatchError(
                    f"shape mismatch for parameter {name!r}: snapshot has "
                    f"{value.shape}, model expects {param.data.shape}"
                )

    def apply(self, model: Any, optimizer: Any = None, restore_rng: bool = True) -> Any:
        """Restore this snapshot into ``model`` (and ``optimizer``, if given).

        Validation runs first, so a mismatched snapshot raises without
        touching the model.  ``restore_rng=False`` loads weights and
        clustering state but keeps the model's own RNG stream (the fairness
        protocol's shared-pretraining handoff); ``restore_rng=True`` makes
        continued training bitwise identical to an uninterrupted run.
        """
        self.validate(model)
        if optimizer is not None and self.optimizer is None:
            raise SnapshotMismatchError(
                "snapshot holds no optimizer state; capture with "
                "Snapshot.capture(model, optimizer=...) to support resuming"
            )
        model.load_extra_state(self.extra, restore_rng=restore_rng)
        model.load_state_dict(self.params)
        if optimizer is not None:
            try:
                optimizer.load_state_dict(self.optimizer)
            except ValueError as error:
                raise SnapshotMismatchError(
                    f"snapshot optimizer state does not fit: {error}"
                ) from error
        return model

    # ------------------------------------------------------------------
    # on-disk format
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The dict actually pickled to disk (format tag + schema version)."""
        return {
            "format": FORMAT_NAME,
            "schema_version": self.schema_version,
            "model_class": self.model_class,
            "params": self.params,
            "extra": self.extra,
            "config": self.config,
            "optimizer": self.optimizer,
            "epoch": self.epoch,
            "phase": self.phase,
            "spec": self.spec,
            "metadata": self.metadata,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "Snapshot":
        if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
            raise SnapshotSchemaError(
                "not a repro snapshot payload (missing the "
                f"{FORMAT_NAME!r} format tag)"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SnapshotSchemaError(
                f"snapshot has schema version {version!r}, "
                f"this build reads version {SCHEMA_VERSION}"
            )
        return cls(
            model_class=payload["model_class"],
            params=payload["params"],
            extra=payload["extra"],
            config=payload["config"],
            optimizer=payload.get("optimizer"),
            epoch=int(payload.get("epoch", 0)),
            phase=str(payload.get("phase", "pretrain")),
            spec=payload.get("spec"),
            metadata=dict(payload.get("metadata", {})),
            schema_version=version,
        )

    def save(self, path: str) -> str:
        """Write the snapshot to ``path`` atomically (tmp file + rename)."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(self.to_payload(), stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return path

    @classmethod
    def from_bytes(cls, data: bytes, path: str = "<bytes>") -> "Snapshot":
        """Decode snapshot bytes; corruption and schema drift raise typed.

        Pickle-level failures (truncation, garbage, torn writes) raise
        :class:`~repro.errors.ArtifactCorruptError` carrying ``path``; a
        payload that unpickles fine but is not a supported snapshot (wrong
        format tag, stale schema version) raises
        :class:`SnapshotSchemaError` — schema drift is a versioning
        problem, not file damage, so it is never quarantined.
        """
        try:
            payload = pickle.loads(data)
        except (
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ValueError,
            IndexError,
        ) as error:
            raise ArtifactCorruptError(
                path, f"snapshot cannot be unpickled: {error}"
            ) from error
        return cls.from_payload(payload)

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        """Read a snapshot written by :meth:`save` (see :meth:`from_bytes`)."""
        with open(path, "rb") as stream:
            data = stream.read()
        return cls.from_bytes(data, path)
