"""repro.store — versioned checkpointing and warm-start artifact store.

The persistence layer between training and everything downstream:

* :class:`~repro.store.snapshot.Snapshot` — versioned serialization of a
  model's full training state (parameters, clustering/mixture extras,
  optimizer moments, RNG stream, epoch counters, producing spec), with
  schema checks and fail-fast validation against the target model.
* :class:`~repro.store.store.ArtifactStore` — a content-addressed
  filesystem store (``REPRO_STORE_DIR``) keyed by stable hashes of
  ``(dataset, model, variant, seed, config)``.
* :func:`~repro.store.pretrain_cache.warm_pretrain` — the pretraining
  snapshot cache that lets D / R-D pairs and multi-seed sweeps skip
  re-pretraining while staying bitwise identical to cold runs.
* :mod:`repro.store.keys` — canonical-JSON SHA-256 keying, stable across
  dict orderings and process restarts.

Typical use::

    store = ArtifactStore("/tmp/artifacts")
    snap = Snapshot.capture(model, optimizer=opt, epoch=40, phase="pretrain")
    store.put(key, snap)
    ...
    store.get(key).apply(model, optimizer=opt)   # bitwise resume

or, end to end, ``Pipeline.save(result, path)`` / ``Pipeline.load(path)``
and ``repro-run --warm-start / --save-to / --from-checkpoint``.
"""

from repro.errors import (
    ArtifactCorruptError,
    ArtifactNotFoundError,
    SnapshotMismatchError,
    SnapshotSchemaError,
    StoreError,
)
from repro.store.keys import (
    array_digest,
    canonical_json,
    config_hash,
    graph_fingerprint,
    pretrain_key,
    run_key,
)
from repro.store.pretrain_cache import (
    disabled_stats,
    pretrain_cache_key,
    warm_pretrain,
)
from repro.store.snapshot import FORMAT_NAME, SCHEMA_VERSION, Snapshot
from repro.store.store import (
    DEFAULT_STORE_DIR,
    QUARANTINE_DIR,
    STORE_DIR_ENV,
    ArtifactStore,
    active_store,
    store_env,
)

__all__ = [
    "ArtifactCorruptError",
    "ArtifactNotFoundError",
    "ArtifactStore",
    "DEFAULT_STORE_DIR",
    "QUARANTINE_DIR",
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "STORE_DIR_ENV",
    "Snapshot",
    "SnapshotMismatchError",
    "SnapshotSchemaError",
    "StoreError",
    "active_store",
    "array_digest",
    "canonical_json",
    "config_hash",
    "disabled_stats",
    "graph_fingerprint",
    "pretrain_cache_key",
    "pretrain_key",
    "run_key",
    "store_env",
    "warm_pretrain",
]
