"""Filesystem-backed, content-addressed artifact store.

An :class:`ArtifactStore` maps stable keys (hex digests from
:mod:`repro.store.keys`) to :class:`~repro.store.snapshot.Snapshot` files
under one root directory:

* ``<root>/objects/<key[:2]>/<key>.snap`` — the pickled snapshot payload,
* ``<root>/objects/<key[:2]>/<key>.json`` — a small human-readable manifest
  (model class, phase, epoch, schema version, the producing spec, and the
  payload's SHA-256) so a store can be inspected with ``cat`` and ``ls``,
* ``<root>/<category>/<name>.pkl`` (+ ``.sha256`` sidecar) — generic blob
  payloads, used by sweep journals (:mod:`repro.resilience.journal`),
* ``<root>/quarantine/`` — where corrupt objects are moved, never served.

The root comes from the ``REPRO_STORE_DIR`` environment variable by
default; :func:`active_store` returns ``None`` when that variable is unset,
which is how the warm-start machinery stays a no-op until a store is
configured.  Writes are atomic (tmp file + rename), so concurrent sweep
workers racing to populate the same key simply last-write-win with
identical bytes.

**Integrity.** Every write records the payload's SHA-256 (in the manifest
for snapshots, in a sidecar for blobs) and every read verifies it before
unpickling; a mismatch — truncated file, flipped bits, torn write — moves
the object into ``quarantine/`` and raises the typed
:class:`~repro.errors.ArtifactCorruptError` carrying the offending path.
Corrupt artifacts are therefore *detected at the boundary*, counted in
:meth:`ArtifactStore.stats`, and can never silently poison a warm start or
a resumed sweep.

**Eviction.** Sweeps grow a store without bound; :meth:`ArtifactStore.gc`
(CLI: ``repro-run store-gc``, budget: ``REPRO_STORE_MAX_BYTES``) evicts
least-recently-used artifacts — reads touch mtimes — until the store fits
its byte budget.  Quarantined files are exempt: they are evidence.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import env as repro_env
from repro.errors import (
    ArtifactCorruptError,
    ArtifactNotFoundError,
    StoreError,
)
from repro.observability.metrics import metric_inc
from repro.observability.tracer import span as _span
from repro.store.snapshot import Snapshot

#: environment variable naming the store root (unset disables warm starts).
#: Declared in :mod:`repro.env`; re-exported here for compatibility.
STORE_DIR_ENV = repro_env.STORE_DIR_ENV
#: directory used when warm starts are requested without an explicit root.
DEFAULT_STORE_DIR = ".repro-store"
#: subdirectory corrupt artifacts are moved into (never read back).
QUARANTINE_DIR = "quarantine"

_MISSING = object()


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not key or not all(
        c in "0123456789abcdef" for c in key
    ):
        raise StoreError(
            f"store keys are lowercase hex digests from repro.store.keys, got {key!r}"
        )
    return key


def _check_blob_part(part: str, what: str) -> str:
    if not isinstance(part, str) or not part or not all(
        c.isalnum() or c in "._-" for c in part
    ):
        raise StoreError(
            f"blob {what} must be non-empty [A-Za-z0-9._-] text, got {part!r}"
        )
    if part.startswith("."):
        raise StoreError(f"blob {what} must not start with '.', got {part!r}")
    return part


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_bytes(path: str, data: bytes) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


class ArtifactStore:
    """Content-addressed snapshot store rooted at one directory."""

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = repro_env.env_str(STORE_DIR_ENV, DEFAULT_STORE_DIR)  # repro: noqa[REP104] store root resolves per process; workers inherit REPRO_STORE_DIR
        self.root = str(root)
        self._stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "corrupt": 0,
        }

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> str:
        key = _check_key(key)
        return os.path.join(self.root, "objects", key[:2], f"{key}.snap")

    def _manifest_path(self, key: str) -> str:
        return self._object_path(key)[: -len(".snap")] + ".json"

    def _blob_path(self, category: str, name: str) -> str:
        parts = [_check_blob_part(part, "category") for part in str(category).split("/")]
        if QUARANTINE_DIR in parts or parts[0] == "objects":
            raise StoreError(
                f"blob category {category!r} collides with a reserved store area"
            )
        return os.path.join(self.root, *parts, f"{_check_blob_part(name, 'name')}.pkl")

    def _quarantine_path(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def quarantine(self, *paths: str) -> List[str]:
        """Move files out of service into ``quarantine/`` (kept as evidence).

        Returns the destination paths; missing sources are skipped.  Called
        on every integrity failure before the typed error is raised, so a
        corrupt object can fail at most one read.
        """
        destination_dir = self._quarantine_path()
        os.makedirs(destination_dir, exist_ok=True)
        moved: List[str] = []
        for path in paths:
            if not os.path.exists(path):
                continue
            destination = os.path.join(destination_dir, os.path.basename(path))
            os.replace(path, destination)
            moved.append(destination)
        if moved:
            self._stats["corrupt"] += 1
            metric_inc("store.corrupt")
        return moved

    def quarantined(self) -> List[str]:
        """Basenames currently sitting in the quarantine area (sorted)."""
        directory = self._quarantine_path()
        if not os.path.isdir(directory):
            return []
        return sorted(os.listdir(directory))

    # ------------------------------------------------------------------
    # snapshot mapping operations
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    __contains__ = contains

    def put(self, key: str, snapshot: Snapshot) -> str:
        """Store ``snapshot`` under ``key``; returns the object path.

        The manifest records the payload's SHA-256, which :meth:`get`
        verifies on every read.  The write itself is a fault-injection
        choke point (``store_corrupt``), so chaos plans can exercise the
        torn-write recovery path deterministically.
        """
        if not isinstance(snapshot, Snapshot):
            raise StoreError(
                f"ArtifactStore stores Snapshot objects, got {type(snapshot).__name__}"
            )
        with _span("store.put"):
            return self._put(key, snapshot)

    def _put(self, key: str, snapshot: Snapshot) -> str:
        from repro.resilience.faults import corrupt_file

        path = self._object_path(key)
        snapshot.save(path)
        sha256 = _sha256_file(path)
        # after the digest: an injected torn write must be *detected* by the
        # checksum verification, exactly like real post-write corruption
        corrupt_file("store_write", key, path)
        manifest = {
            "key": key,
            "sha256": sha256,
            "schema_version": snapshot.schema_version,
            "model_class": snapshot.model_class,
            "phase": snapshot.phase,
            "epoch": snapshot.epoch,
            "config": snapshot.config,
            "spec": snapshot.spec,
            "metadata": snapshot.metadata,
        }
        manifest_path = self._manifest_path(key)
        tmp_path = manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, indent=2, default=str)
        os.replace(tmp_path, manifest_path)
        self._stats["puts"] += 1
        metric_inc("store.puts")
        return path

    def _expected_sha(self, key: str) -> Optional[str]:
        """The manifest-recorded payload digest (None for legacy manifests)."""
        manifest_path = self._manifest_path(key)
        if not os.path.exists(manifest_path):
            return None
        try:
            with open(manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except (OSError, json.JSONDecodeError):
            # an unreadable manifest only disables verification; the
            # object itself may still be intact
            return None
        value = manifest.get("sha256")
        return str(value) if value else None

    def get(self, key: str, default: Any = _MISSING) -> Snapshot:
        """Load the snapshot stored under ``key``, integrity-checked.

        A miss raises :class:`~repro.errors.ArtifactNotFoundError` unless a
        ``default`` is given.  A checksum mismatch or unreadable payload
        quarantines the object and raises
        :class:`~repro.errors.ArtifactCorruptError` with the offending
        path.  Successful reads touch the object's mtime (the LRU signal
        :meth:`gc` evicts by).  Hit/miss counters feed the cache statistics
        surfaced in ``RunResult.extra``.
        """
        with _span("store.get"):
            return self._get(key, default)

    def _get(self, key: str, default: Any = _MISSING) -> Snapshot:
        path = self._object_path(key)
        if not os.path.exists(path):
            self._stats["misses"] += 1
            metric_inc("store.misses")
            if default is _MISSING:
                raise ArtifactNotFoundError(key, self.root)
            return default
        expected = self._expected_sha(key)
        if expected is not None:
            actual = _sha256_file(path)
            if actual != expected:
                self.quarantine(path, self._manifest_path(key))
                raise ArtifactCorruptError(
                    path,
                    f"payload SHA-256 {actual[:12]}… does not match the "
                    f"manifest's {expected[:12]}… (truncated or torn write); "
                    f"object quarantined",
                )
        try:
            snapshot = Snapshot.load(path)
        except ArtifactCorruptError:
            self.quarantine(path, self._manifest_path(key))
            raise
        os.utime(path)
        self._stats["hits"] += 1
        metric_inc("store.hits")
        return snapshot

    def manifest(self, key: str) -> Dict[str, Any]:
        """The JSON manifest written next to the snapshot."""
        path = self._manifest_path(key)
        if not os.path.exists(path):
            raise ArtifactNotFoundError(key, self.root)
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)

    def delete(self, key: str) -> bool:
        """Remove an artifact; returns whether anything was deleted."""
        removed = False
        for path in (self._object_path(key), self._manifest_path(key)):
            if os.path.exists(path):
                os.unlink(path)
                removed = True
        return removed

    def keys(self) -> List[str]:
        """Every stored key (sorted)."""
        objects_root = os.path.join(self.root, "objects")
        found: List[str] = []
        if not os.path.isdir(objects_root):
            return found
        for shard in os.listdir(objects_root):
            shard_dir = os.path.join(objects_root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".snap"):
                    found.append(name[: -len(".snap")])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/put/corrupt counters of *this* store handle, plus identity."""
        return {**self._stats, "root": self.root, "entries": len(self), "pid": os.getpid()}

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        keys = self.keys()
        for key in keys:
            self.delete(key)
        return len(keys)

    # ------------------------------------------------------------------
    # generic blob payloads (journals and friends)
    # ------------------------------------------------------------------
    def put_blob(self, category: str, name: str, value: Any) -> str:
        """Pickle ``value`` under ``<category>/<name>``, checksummed.

        Atomic write plus a SHA-256 sidecar; like :meth:`put`, the write is
        a ``store_corrupt`` fault choke point.  Returns the written path.
        """
        from repro.resilience.faults import corrupt_file

        with _span("store.put_blob"):
            path = self._blob_path(category, name)
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            _atomic_write_bytes(path, data)
            sha256 = _sha256_file(path)
            corrupt_file("store_write", f"{category}/{name}", path)
            _atomic_write_bytes(path + ".sha256", sha256.encode("ascii"))
            self._stats["puts"] += 1
            metric_inc("store.puts")
            return path

    def get_blob(self, category: str, name: str, default: Any = _MISSING) -> Any:
        """Load a blob, verifying its checksum before unpickling.

        Corrupt blobs (checksum mismatch, missing sidecar, unpicklable
        payload) are quarantined and raise
        :class:`~repro.errors.ArtifactCorruptError` with the path.
        """
        with _span("store.get_blob"):
            return self._get_blob(category, name, default)

    def _get_blob(self, category: str, name: str, default: Any = _MISSING) -> Any:
        path = self._blob_path(category, name)
        if not os.path.exists(path):
            self._stats["misses"] += 1
            metric_inc("store.misses")
            if default is _MISSING:
                raise ArtifactNotFoundError(f"{category}/{name}", self.root)
            return default
        sidecar = path + ".sha256"
        expected = None
        if os.path.exists(sidecar):
            with open(sidecar, "r", encoding="ascii") as stream:
                expected = stream.read().strip()
        actual = _sha256_file(path)
        if expected is None or actual != expected:
            self.quarantine(path, sidecar)
            raise ArtifactCorruptError(
                path,
                "blob has no checksum sidecar (torn write)"
                if expected is None
                else f"blob SHA-256 {actual[:12]}… does not match the "
                f"recorded {expected[:12]}…; blob quarantined",
            )
        with open(path, "rb") as stream:
            data = stream.read()
        try:
            value = pickle.loads(data)
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError, IndexError) as error:
            self.quarantine(path, sidecar)
            raise ArtifactCorruptError(
                path, f"blob cannot be unpickled: {error}"
            ) from error
        os.utime(path)
        self._stats["hits"] += 1
        metric_inc("store.hits")
        return value

    def blob_names(self, category: str) -> List[str]:
        """Names stored under a blob category (sorted)."""
        directory = os.path.dirname(self._blob_path(category, "probe"))
        if not os.path.isdir(directory):
            return []
        return sorted(
            name[: -len(".pkl")]
            for name in os.listdir(directory)
            if name.endswith(".pkl")
        )

    def delete_blob(self, category: str, name: str) -> bool:
        """Remove one blob (and its sidecar); returns whether it existed."""
        path = self._blob_path(category, name)
        removed = False
        for target in (path, path + ".sha256"):
            if os.path.exists(target):
                os.unlink(target)
                removed = True
        return removed

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def _gc_entries(self) -> List[Tuple[float, int, List[str]]]:
        """Evictable units: ``(mtime, bytes, paths)`` — primary + sidecars.

        Snapshots pair with their manifest, blobs with their checksum
        sidecar, so eviction never leaves half an artifact behind.
        Quarantined files and in-flight ``.tmp`` files are exempt.
        """
        entries: List[Tuple[float, int, List[str]]] = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            if os.path.relpath(dirpath, self.root).split(os.sep)[0] == QUARANTINE_DIR:
                dirnames[:] = []
                continue
            names = set(filenames)
            for name in sorted(names):
                path = os.path.join(dirpath, name)
                if name.endswith(".snap"):
                    group = [path]
                    manifest = name[: -len(".snap")] + ".json"
                    if manifest in names:
                        group.append(os.path.join(dirpath, manifest))
                elif name.endswith(".pkl"):
                    group = [path]
                    if name + ".sha256" in names:
                        group.append(path + ".sha256")
                else:
                    continue
                try:
                    mtime = os.path.getmtime(path)
                    size = sum(os.path.getsize(member) for member in group)
                except FileNotFoundError:
                    continue  # raced with a concurrent delete; skip
                entries.append((mtime, size, group))
        return entries

    def total_bytes(self) -> int:
        """Reclaimable bytes currently stored (quarantine excluded)."""
        return sum(size for _, size, _ in self._gc_entries())

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict least-recently-used artifacts until the store fits.

        ``max_bytes`` defaults to ``REPRO_STORE_MAX_BYTES``; a budget of 0
        (or unset) disables eviction.  Reads touch mtimes, so "least
        recently used" tracks actual access, not just creation.  Returns a
        stats dict (``scanned_bytes`` / ``evicted`` / ``freed_bytes`` /
        ``remaining_bytes`` / ``max_bytes``).
        """
        with _span("store.gc"):
            return self._gc(max_bytes)

    def _gc(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        if max_bytes is None:
            max_bytes = repro_env.env_int(repro_env.STORE_MAX_BYTES_ENV, 0)
        max_bytes = int(max_bytes)
        if max_bytes < 0:
            raise StoreError(f"gc budget must be >= 0 bytes, got {max_bytes}")
        entries = sorted(self._gc_entries(), key=lambda entry: (entry[0], entry[2]))
        total = sum(size for _, size, _ in entries)
        stats: Dict[str, Any] = {
            "scanned_bytes": total,
            "evicted": 0,
            "freed_bytes": 0,
            "remaining_bytes": total,
            "max_bytes": max_bytes,
        }
        if max_bytes == 0:
            return stats
        remaining = total
        for _, size, group in entries:
            if remaining <= max_bytes:
                break
            for member in group:
                if os.path.exists(member):
                    os.unlink(member)
            remaining -= size
            stats["evicted"] += 1
            stats["freed_bytes"] += size
            metric_inc("store.evicted")
        stats["remaining_bytes"] = remaining
        return stats


def active_store() -> Optional[ArtifactStore]:
    """The environment-configured store, or ``None`` when warm starts are off.

    Reading ``REPRO_STORE_DIR`` at call time (not import time) lets sweeps
    enable the store for pool workers by exporting the variable before the
    pool starts — worker processes inherit the parent environment.
    """
    root = repro_env.env_str(STORE_DIR_ENV)  # repro: noqa[REP104] documented: workers inherit REPRO_STORE_DIR set before the pool starts
    if not root:
        return None
    return ArtifactStore(root)


@contextlib.contextmanager
def store_env(root: Optional[str]) -> Iterator[Optional[str]]:
    """Temporarily point ``REPRO_STORE_DIR`` at ``root`` (``None`` = no-op).

    Used by the sweep entry points: setting the variable in the parent
    before a process pool spins up is what propagates the warm store to
    every worker.
    """
    with repro_env.env_override(STORE_DIR_ENV, root) as value:
        yield value
