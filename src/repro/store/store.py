"""Filesystem-backed, content-addressed artifact store.

An :class:`ArtifactStore` maps stable keys (hex digests from
:mod:`repro.store.keys`) to :class:`~repro.store.snapshot.Snapshot` files
under one root directory:

* ``<root>/objects/<key[:2]>/<key>.snap`` — the pickled snapshot payload,
* ``<root>/objects/<key[:2]>/<key>.json`` — a small human-readable manifest
  (model class, phase, epoch, schema version, the producing spec) so a
  store can be inspected with ``cat`` and ``ls``.

The root comes from the ``REPRO_STORE_DIR`` environment variable by
default; :func:`active_store` returns ``None`` when that variable is unset,
which is how the warm-start machinery stays a no-op until a store is
configured.  Writes are atomic (tmp file + rename), so concurrent sweep
workers racing to populate the same key simply last-write-win with
identical bytes.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any, Dict, Iterator, List, Optional

from repro import env as repro_env
from repro.errors import ArtifactNotFoundError, StoreError
from repro.store.snapshot import Snapshot

#: environment variable naming the store root (unset disables warm starts).
#: Declared in :mod:`repro.env`; re-exported here for compatibility.
STORE_DIR_ENV = repro_env.STORE_DIR_ENV
#: directory used when warm starts are requested without an explicit root.
DEFAULT_STORE_DIR = ".repro-store"

_MISSING = object()


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not key or not all(
        c in "0123456789abcdef" for c in key
    ):
        raise StoreError(
            f"store keys are lowercase hex digests from repro.store.keys, got {key!r}"
        )
    return key


class ArtifactStore:
    """Content-addressed snapshot store rooted at one directory."""

    def __init__(self, root: Optional[str] = None) -> None:
        if root is None:
            root = repro_env.env_str(STORE_DIR_ENV, DEFAULT_STORE_DIR)
        self.root = str(root)
        self._stats: Dict[str, int] = {"hits": 0, "misses": 0, "puts": 0}

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> str:
        key = _check_key(key)
        return os.path.join(self.root, "objects", key[:2], f"{key}.snap")

    def _manifest_path(self, key: str) -> str:
        return self._object_path(key)[: -len(".snap")] + ".json"

    # ------------------------------------------------------------------
    # mapping operations
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    __contains__ = contains

    def put(self, key: str, snapshot: Snapshot) -> str:
        """Store ``snapshot`` under ``key``; returns the object path."""
        if not isinstance(snapshot, Snapshot):
            raise StoreError(
                f"ArtifactStore stores Snapshot objects, got {type(snapshot).__name__}"
            )
        path = self._object_path(key)
        snapshot.save(path)
        manifest = {
            "key": key,
            "schema_version": snapshot.schema_version,
            "model_class": snapshot.model_class,
            "phase": snapshot.phase,
            "epoch": snapshot.epoch,
            "config": snapshot.config,
            "spec": snapshot.spec,
            "metadata": snapshot.metadata,
        }
        manifest_path = self._manifest_path(key)
        tmp_path = manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump(manifest, stream, indent=2, default=str)
        os.replace(tmp_path, manifest_path)
        self._stats["puts"] += 1
        return path

    def get(self, key: str, default: Any = _MISSING) -> Snapshot:
        """Load the snapshot stored under ``key``.

        A miss raises :class:`~repro.errors.ArtifactNotFoundError` unless a
        ``default`` is given.  Hit/miss counters feed the cache statistics
        surfaced in ``RunResult.extra``.
        """
        path = self._object_path(key)
        if not os.path.exists(path):
            self._stats["misses"] += 1
            if default is _MISSING:
                raise ArtifactNotFoundError(key, self.root)
            return default
        snapshot = Snapshot.load(path)
        self._stats["hits"] += 1
        return snapshot

    def manifest(self, key: str) -> Dict[str, Any]:
        """The JSON manifest written next to the snapshot."""
        path = self._manifest_path(key)
        if not os.path.exists(path):
            raise ArtifactNotFoundError(key, self.root)
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)

    def delete(self, key: str) -> bool:
        """Remove an artifact; returns whether anything was deleted."""
        removed = False
        for path in (self._object_path(key), self._manifest_path(key)):
            if os.path.exists(path):
                os.unlink(path)
                removed = True
        return removed

    def keys(self) -> List[str]:
        """Every stored key (sorted)."""
        objects_root = os.path.join(self.root, "objects")
        found: List[str] = []
        if not os.path.isdir(objects_root):
            return found
        for shard in os.listdir(objects_root):
            shard_dir = os.path.join(objects_root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".snap"):
                    found.append(name[: -len(".snap")])
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/put counters of *this* store handle, plus identity."""
        return {**self._stats, "root": self.root, "entries": len(self), "pid": os.getpid()}

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        keys = self.keys()
        for key in keys:
            self.delete(key)
        return len(keys)


def active_store() -> Optional[ArtifactStore]:
    """The environment-configured store, or ``None`` when warm starts are off.

    Reading ``REPRO_STORE_DIR`` at call time (not import time) lets sweeps
    enable the store for pool workers by exporting the variable before the
    pool starts — worker processes inherit the parent environment.
    """
    root = repro_env.env_str(STORE_DIR_ENV)
    if not root:
        return None
    return ArtifactStore(root)


@contextlib.contextmanager
def store_env(root: Optional[str]) -> Iterator[Optional[str]]:
    """Temporarily point ``REPRO_STORE_DIR`` at ``root`` (``None`` = no-op).

    Used by the sweep entry points: setting the variable in the parent
    before a process pool spins up is what propagates the warm store to
    every worker.
    """
    with repro_env.env_override(STORE_DIR_ENV, root) as value:
        yield value
