"""Model registry: build any of the six GAE models by name.

Backed by the generic :class:`repro.api.registry.Registry` protocol; each
entry carries its paper group ("first" = separate clustering, "second" =
joint clustering) as queryable metadata.  The legacy names
(``MODEL_BUILDERS``, ``FIRST_GROUP``, ``SECOND_GROUP``) are kept as thin
views over the registry.
"""

from __future__ import annotations

from typing import List

from repro.api.registry import Registry
from repro.models.argae import ARGAE
from repro.models.arvgae import ARVGAE
from repro.models.base import GAEClusteringModel
from repro.models.dgae import DGAE
from repro.models.gae import GAE
from repro.models.gmm_vgae import GMMVGAE
from repro.models.vgae import VGAE

#: the unified model registry (name → model class, with group metadata).
MODELS = Registry("model")
MODELS.add("gae", GAE, group="first", variational=False)
MODELS.add("vgae", VGAE, group="first", variational=True)
MODELS.add("argae", ARGAE, group="first", variational=False)
MODELS.add("arvgae", ARVGAE, group="first", variational=True)
MODELS.add("dgae", DGAE, group="second", variational=False)
MODELS.add("gmm_vgae", GMMVGAE, group="second", variational=True)

#: deprecated alias — a Mapping view over :data:`MODELS`.
MODEL_BUILDERS = MODELS


def _group_members(group: str) -> List[str]:
    return MODELS.names(group=group)


#: the paper's first-group models (separate clustering).
FIRST_GROUP = _group_members("first")
#: the paper's second-group models (joint clustering).
SECOND_GROUP = _group_members("second")


def available_models() -> List[str]:
    """Names of all registered models."""
    return sorted(MODELS.names())


def model_group(name: str) -> str:
    """Return "first" or "second" for a registered model name."""
    return MODELS.metadata(name)["group"]


def build_model(
    name: str,
    num_features: int,
    num_clusters: int,
    seed: int = 0,
    **kwargs,
) -> GAEClusteringModel:
    """Instantiate a registered model with the given data dimensions."""
    return MODELS.build(
        name, num_features=num_features, num_clusters=num_clusters, seed=seed, **kwargs
    )
