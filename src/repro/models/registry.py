"""Model registry: build any of the six GAE models by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.argae import ARGAE
from repro.models.arvgae import ARVGAE
from repro.models.base import GAEClusteringModel
from repro.models.dgae import DGAE
from repro.models.gae import GAE
from repro.models.gmm_vgae import GMMVGAE
from repro.models.vgae import VGAE

MODEL_BUILDERS: Dict[str, Callable[..., GAEClusteringModel]] = {
    "gae": GAE,
    "vgae": VGAE,
    "argae": ARGAE,
    "arvgae": ARVGAE,
    "gmm_vgae": GMMVGAE,
    "dgae": DGAE,
}

#: the paper's first-group models (separate clustering).
FIRST_GROUP = ["gae", "vgae", "argae", "arvgae"]
#: the paper's second-group models (joint clustering).
SECOND_GROUP = ["dgae", "gmm_vgae"]


def available_models() -> List[str]:
    """Names of all registered models."""
    return sorted(MODEL_BUILDERS)


def model_group(name: str) -> str:
    """Return "first" or "second" for a registered model name."""
    if name in FIRST_GROUP:
        return "first"
    if name in SECOND_GROUP:
        return "second"
    raise KeyError(f"unknown model {name!r}")


def build_model(
    name: str,
    num_features: int,
    num_clusters: int,
    seed: int = 0,
    **kwargs,
) -> GAEClusteringModel:
    """Instantiate a registered model with the given data dimensions."""
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {', '.join(available_models())}")
    return MODEL_BUILDERS[name](
        num_features=num_features, num_clusters=num_clusters, seed=seed, **kwargs
    )
