"""ARVGAE (Pan et al., 2018): adversarially regularised *variational* GAE.

Identical to :class:`~repro.models.argae.ARGAE` except that the encoder is
variational (posterior mean/log-sigma heads and a KL term), matching the
ARVGA variant of the original paper.
"""

from __future__ import annotations

from repro.models.argae import ARGAE


class ARVGAE(ARGAE):
    """Adversarially Regularized Variational Graph Auto-Encoder."""

    group = "first"
    variational = True
