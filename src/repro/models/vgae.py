"""VGAE (Kipf & Welling, 2016): variational graph auto-encoder.

A first-group model: the encoder parameterises a diagonal Gaussian posterior
per node, trained with reconstruction + KL; clustering is k-means on the
posterior means.
"""

from __future__ import annotations

from repro.models.base import GAEClusteringModel


class VGAE(GAEClusteringModel):
    """Variational Graph Auto-Encoder with k-means clustering."""

    group = "first"
    variational = True
