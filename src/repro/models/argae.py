"""ARGAE (Pan et al., 2018): adversarially regularised graph auto-encoder.

A first-group model.  On top of the GAE reconstruction objective, a small
MLP discriminator is trained to distinguish encoder embeddings from samples
of a Gaussian prior; the encoder receives an additional generator loss that
pushes the embedding distribution towards that prior.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import GAEClusteringModel
from repro.nn import functional as F
from repro.nn.layers import MLP
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class ARGAE(GAEClusteringModel):
    """Adversarially Regularized Graph Auto-Encoder."""

    group = "first"
    variational = False

    def __init__(
        self,
        num_features: int,
        num_clusters: int,
        hidden_dim: int = 32,
        latent_dim: int = 16,
        learning_rate: float = 0.01,
        gamma: float = 1.0,
        seed: int = 0,
        discriminator_hidden: int = 64,
        adversarial_weight: float = 1.0,
        discriminator_lr: float = 0.001,
    ) -> None:
        super().__init__(
            num_features=num_features,
            num_clusters=num_clusters,
            hidden_dim=hidden_dim,
            latent_dim=latent_dim,
            learning_rate=learning_rate,
            gamma=gamma,
            seed=seed,
        )
        self.adversarial_weight = float(adversarial_weight)
        self.discriminator = MLP(
            [latent_dim, discriminator_hidden, 1],
            hidden_activation="relu",
            output_activation=None,
            rng=self.rng,
        )
        self._discriminator_optimizer = Adam(
            self.discriminator.parameters(), lr=discriminator_lr
        )

    # ------------------------------------------------------------------
    # adversarial machinery
    # ------------------------------------------------------------------
    def _prior_sample(self, num_nodes: int) -> np.ndarray:
        return self.rng.standard_normal((num_nodes, self.latent_dim))

    def discriminator_loss(self, embeddings: np.ndarray) -> Tensor:
        """BCE of the discriminator on real prior samples vs. fake embeddings."""
        real = Tensor(self._prior_sample(embeddings.shape[0]))
        fake = Tensor(np.asarray(embeddings, dtype=np.float64))
        real_logits = self.discriminator(real)
        fake_logits = self.discriminator(fake)
        loss_real = F.binary_cross_entropy_with_logits(real_logits, np.ones(real_logits.shape))
        loss_fake = F.binary_cross_entropy_with_logits(fake_logits, np.zeros(fake_logits.shape))
        return loss_real + loss_fake

    def generator_loss(self, z: Tensor) -> Tensor:
        """Encoder loss: make the discriminator believe embeddings are prior samples."""
        logits = self.discriminator(z)
        return F.binary_cross_entropy_with_logits(logits, np.ones(logits.shape))

    # ------------------------------------------------------------------
    # GAEClusteringModel hooks
    # ------------------------------------------------------------------
    def regularization_loss(self, z: Tensor) -> Optional[Tensor]:
        base = super().regularization_loss(z)
        adversarial = self.generator_loss(z) * self.adversarial_weight
        if base is None:
            return adversarial
        return base + adversarial

    def pretrain_step_hook(self, z, features, adj_norm, optimizer) -> None:
        """Train the discriminator one step on detached embeddings."""
        embeddings = z.numpy().copy()
        self._discriminator_optimizer.zero_grad()
        d_loss = self.discriminator_loss(embeddings)
        d_loss.backward()
        self._discriminator_optimizer.step()
        # The discriminator graph is a web of reference cycles like any
        # other step graph; sever it now instead of waiting for the cyclic
        # GC (REP003 — the PR-4 leak class).
        d_loss.release_graph()

    # ------------------------------------------------------------------
    # checkpointing (repro.store)
    # ------------------------------------------------------------------
    def extra_state(self):
        state = super().extra_state()
        # The discriminator's weights live in state_dict (it is a plain
        # sub-module); its Adam moments are the extra piece a bitwise resume
        # of adversarial pretraining needs.
        state["discriminator_optimizer"] = self._discriminator_optimizer.state_dict()
        return state

    def load_extra_state(self, state, restore_rng: bool = True) -> None:
        super().load_extra_state(state, restore_rng=restore_rng)
        optimizer_state = state.get("discriminator_optimizer")
        if optimizer_state is not None:
            self._discriminator_optimizer.load_state_dict(optimizer_state)

    def parameters(self):
        """Exclude discriminator parameters from the encoder optimiser.

        The discriminator has its own optimizer; sharing parameters between
        the two optimisers would make the adversarial game degenerate.
        """
        encoder_params = []
        seen = set()
        self.encoder._collect_parameters(encoder_params, seen)
        return encoder_params
