"""DGAE (Discriminative Graph Auto-Encoder) — Appendix B of the paper.

A second-group model introduced by the authors: a plain two-layer GCN
auto-encoder whose clustering phase minimises

``L = KL(Q || P) + gamma * L_bce(sigmoid(Z Z^T), A)``

where ``P`` is the Student's t soft assignment (Eq. 20) towards trainable
embedded centres ``mu`` (initialised with k-means) and ``Q`` is the
DEC-style sharpened target distribution.  Defaults follow Table 10 of the
paper (hidden 32, latent 16, Adam lr 0.01, gamma 0.001, 200 + 200 epochs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.sanitizers import autograd_leak_check
from repro.clustering.assignments import soft_assignment_student_t, target_distribution
from repro.observability.log import get_logger
from repro.clustering.kmeans import KMeans
from repro.models.base import GAEClusteringModel
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class DGAE(GAEClusteringModel):
    """Discriminative Graph Auto-Encoder with a KL(Q||P) clustering loss."""

    group = "second"
    variational = False

    def __init__(
        self,
        num_features: int,
        num_clusters: int,
        hidden_dim: int = 32,
        latent_dim: int = 16,
        learning_rate: float = 0.01,
        gamma: float = 0.001,
        seed: int = 0,
        target_refresh_interval: int = 5,
    ) -> None:
        super().__init__(
            num_features=num_features,
            num_clusters=num_clusters,
            hidden_dim=hidden_dim,
            latent_dim=latent_dim,
            learning_rate=learning_rate,
            gamma=gamma,
            seed=seed,
        )
        self.target_refresh_interval = int(target_refresh_interval)
        #: trainable embedded centres, created by :meth:`init_clustering`.
        self.centers: Optional[Tensor] = None
        self._target: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # clustering parameters
    # ------------------------------------------------------------------
    def init_clustering(self, embeddings: np.ndarray) -> None:
        """Initialise trainable centres with k-means on the embeddings."""
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed).fit(embeddings)
        self.centers = Tensor(kmeans.cluster_centers_.copy(), requires_grad=True)
        self.cluster_centers_ = kmeans.cluster_centers_.copy()
        self.cluster_variances_ = np.ones_like(kmeans.cluster_centers_)
        self._target = target_distribution(
            soft_assignment_student_t(embeddings, kmeans.cluster_centers_)
        )

    def refresh_clustering(self, embeddings: np.ndarray) -> None:
        """Refresh the target distribution Q from the current assignments."""
        if self.centers is None:
            self.init_clustering(embeddings)
            return
        self.cluster_centers_ = self.centers.numpy().copy()
        self._target = target_distribution(
            soft_assignment_student_t(embeddings, self.cluster_centers_)
        )

    def predict_assignments(self, embeddings: np.ndarray) -> np.ndarray:
        """Student's t soft assignments towards the current centres."""
        if self.centers is None:
            self.init_clustering(embeddings)
        return soft_assignment_student_t(embeddings, self.centers.numpy())

    # ------------------------------------------------------------------
    # checkpointing (repro.store)
    # ------------------------------------------------------------------
    def extra_state(self):
        state = super().extra_state()
        if self.centers is not None:
            # The trainable centres are a parameter that only exists after
            # init_clustering; declare them so snapshot validation accepts
            # trained checkpoints applied to freshly built models.
            state["trainable_extras"] = ["centers"]
        state["target"] = None if self._target is None else self._target.copy()
        return state

    def load_extra_state(self, state, restore_rng: bool = True) -> None:
        super().load_extra_state(state, restore_rng=restore_rng)
        if "centers" in state.get("trainable_extras", []) and self.cluster_centers_ is not None:
            # Materialise the trainable tensor; load_state_dict fills its
            # values from the snapshot's parameter entry right after.
            self.centers = Tensor(self.cluster_centers_.copy(), requires_grad=True)
        target = state.get("target")
        self._target = None if target is None else np.array(target, copy=True)

    # ------------------------------------------------------------------
    # losses
    # ------------------------------------------------------------------
    def soft_assignment_tensor(self, z: Tensor) -> Tensor:
        """Differentiable Student's t soft assignment P(Z, mu)."""
        if self.centers is None:
            raise RuntimeError("init_clustering must run before the clustering loss")
        z_sq = (z * z).sum(axis=1, keepdims=True)
        # distances through the trainable centres (kept differentiable).
        mu_sq_t = (self.centers * self.centers).sum(axis=1).reshape(1, self.num_clusters)
        cross = z @ self.centers.T
        distances = z_sq + mu_sq_t - 2.0 * cross
        scores = (distances + 1.0) ** -1.0
        return scores / scores.sum(axis=1, keepdims=True)

    def clustering_loss(self, z: Tensor, node_indices: Optional[np.ndarray] = None) -> Tensor:
        """KL(Q || P) restricted to ``node_indices`` when provided."""
        if self._target is None:
            raise RuntimeError("init_clustering must run before the clustering loss")
        return self.clustering_loss_with_target(z, self._target, node_indices)

    def clustering_target(self) -> Optional[np.ndarray]:
        """The sharpened DEC target distribution Q (None before init)."""
        return self._target

    # ------------------------------------------------------------------
    # training loop (vanilla DGAE; the R- version is driven by RethinkTrainer)
    # ------------------------------------------------------------------
    def fit_clustering(
        self,
        graph,
        epochs: int = 200,
        verbose: bool = False,
    ) -> Dict[str, List[float]]:
        features, adj_norm = self.prepare_inputs(graph)
        embeddings = self.embed(graph)
        if self.centers is None:
            self.init_clustering(embeddings)
        optimizer = Adam(self.parameters(), lr=self.learning_rate)
        history: Dict[str, List[float]] = {"loss": [], "clustering_loss": [], "reconstruction_loss": []}
        with autograd_leak_check("DGAE.fit_clustering"):
            for epoch in range(epochs):
                if epoch % self.target_refresh_interval == 0:
                    self.refresh_clustering(self.embed(graph))
                optimizer.zero_grad()
                z = self.encode(features, adj_norm)
                clustering = self.clustering_loss(z)
                reconstruction = self.reconstruction_loss(z, graph.adjacency)
                loss = clustering + reconstruction * self.gamma
                loss.backward()
                optimizer.step()
                loss.release_graph()
                history["loss"].append(loss.item())
                history["clustering_loss"].append(clustering.item())
                history["reconstruction_loss"].append(reconstruction.item())
                if verbose and epoch % 20 == 0:
                    get_logger("pretrain").info(
                        "[DGAE] epoch %d loss %.4f", epoch, loss.item()
                    )
        return history
