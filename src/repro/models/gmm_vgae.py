"""GMM-VGAE (Hui et al., 2020): variational GAE with a Gaussian mixture prior.

A second-group model: after VGAE pretraining a diagonal Gaussian mixture is
fitted on the posterior means; the clustering phase then jointly optimises

``L = KL(Q || P) + gamma * (L_bce + KL_gaussian)``

where ``P`` are the (differentiable) mixture responsibilities of the latent
codes and ``Q`` is the sharpened target distribution.  Mixture parameters
are refreshed with EM steps on the current embeddings, which captures the
per-cluster variances the original model exploits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.sanitizers import autograd_leak_check
from repro.clustering.assignments import soft_assignment_gaussian, target_distribution
from repro.clustering.gmm import GaussianMixture
from repro.models.base import GAEClusteringModel
from repro.observability.log import get_logger
from repro.nn import functional as F
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class GMMVGAE(GAEClusteringModel):
    """Variational GAE clustered with a Gaussian Mixture Model."""

    group = "second"
    variational = True

    def __init__(
        self,
        num_features: int,
        num_clusters: int,
        hidden_dim: int = 32,
        latent_dim: int = 16,
        learning_rate: float = 0.01,
        gamma: float = 0.1,
        seed: int = 0,
        target_refresh_interval: int = 5,
        em_refresh_iterations: int = 2,
    ) -> None:
        super().__init__(
            num_features=num_features,
            num_clusters=num_clusters,
            hidden_dim=hidden_dim,
            latent_dim=latent_dim,
            learning_rate=learning_rate,
            gamma=gamma,
            seed=seed,
        )
        self.target_refresh_interval = int(target_refresh_interval)
        self.em_refresh_iterations = int(em_refresh_iterations)
        self._mixture: Optional[GaussianMixture] = None
        self._target: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # clustering parameters
    # ------------------------------------------------------------------
    def init_clustering(self, embeddings: np.ndarray) -> None:
        """Fit a fresh diagonal GMM on the embeddings."""
        mixture = GaussianMixture(self.num_clusters, max_iter=100, seed=self.seed)
        mixture.fit(embeddings)
        self._mixture = mixture
        self.cluster_centers_ = mixture.means_.copy()
        self.cluster_variances_ = mixture.variances_.copy()
        self._target = target_distribution(mixture.predict_proba(embeddings))

    def refresh_clustering(self, embeddings: np.ndarray) -> None:
        """Run a few EM iterations from the current mixture parameters."""
        if self._mixture is None:
            self.init_clustering(embeddings)
            return
        mixture = self._mixture
        for _ in range(self.em_refresh_iterations):
            responsibilities, _ = mixture._e_step(embeddings)
            mixture._m_step(embeddings, responsibilities)
        self.cluster_centers_ = mixture.means_.copy()
        self.cluster_variances_ = mixture.variances_.copy()
        self._target = target_distribution(mixture.predict_proba(embeddings))

    def predict_assignments(self, embeddings: np.ndarray) -> np.ndarray:
        """Gaussian mixture responsibilities for given embeddings.

        The responsibilities are tempered by the latent dimensionality so the
        confidence scores consumed by the operator Ξ stay in a useful range
        (see :func:`repro.clustering.assignments.soft_assignment_gaussian`).
        """
        if self._mixture is None:
            self.init_clustering(embeddings)
        return soft_assignment_gaussian(
            embeddings,
            self.cluster_centers_,
            self.cluster_variances_,
            temperature=float(self.latent_dim),
        )

    # ------------------------------------------------------------------
    # checkpointing (repro.store)
    # ------------------------------------------------------------------
    def extra_state(self):
        state = super().extra_state()
        mixture = self._mixture
        state["mixture"] = None if mixture is None else {
            "num_components": mixture.num_components,
            "max_iter": mixture.max_iter,
            "tol": mixture.tol,
            "reg_covar": mixture.reg_covar,
            "seed": mixture.seed,
            "means": mixture.means_.copy(),
            "variances": mixture.variances_.copy(),
            "weights": mixture.weights_.copy(),
        }
        state["target"] = None if self._target is None else self._target.copy()
        return state

    def load_extra_state(self, state, restore_rng: bool = True) -> None:
        super().load_extra_state(state, restore_rng=restore_rng)
        mixture_state = state.get("mixture")
        if mixture_state is None:
            self._mixture = None
        else:
            mixture = GaussianMixture(
                mixture_state["num_components"],
                max_iter=mixture_state["max_iter"],
                tol=mixture_state["tol"],
                reg_covar=mixture_state["reg_covar"],
                seed=mixture_state["seed"],
            )
            mixture.means_ = np.array(mixture_state["means"], copy=True)
            mixture.variances_ = np.array(mixture_state["variances"], copy=True)
            mixture.weights_ = np.array(mixture_state["weights"], copy=True)
            self._mixture = mixture
        target = state.get("target")
        self._target = None if target is None else np.array(target, copy=True)

    # ------------------------------------------------------------------
    # losses
    # ------------------------------------------------------------------
    def soft_assignment_tensor(self, z: Tensor) -> Tensor:
        """Differentiable Gaussian responsibilities P(Z | mixture params).

        Mixture means/variances are treated as constants (they are refreshed
        by EM), so the gradient flows only through the embeddings, exactly
        like the formulation of Eq. (15).
        """
        if self.cluster_centers_ is None or self.cluster_variances_ is None:
            raise RuntimeError("init_clustering must run before the clustering loss")
        inv_var = 1.0 / np.maximum(self.cluster_variances_, 1e-8)
        scaled_mu = self.cluster_centers_ * inv_var
        const = np.sum(self.cluster_centers_ ** 2 * inv_var, axis=1)
        z_sq_term = (z * z) @ Tensor(inv_var.T)
        cross_term = z @ Tensor(scaled_mu.T)
        log_scores = (z_sq_term - 2.0 * cross_term + Tensor(const[None, :])) * -0.5
        return F.softmax(log_scores, axis=1)

    def clustering_loss(self, z: Tensor, node_indices: Optional[np.ndarray] = None) -> Tensor:
        """KL(Q || P) restricted to ``node_indices`` when provided."""
        if self._target is None:
            raise RuntimeError("init_clustering must run before the clustering loss")
        return self.clustering_loss_with_target(z, self._target, node_indices)

    def clustering_target(self) -> Optional[np.ndarray]:
        """The sharpened mixture target distribution Q (None before init)."""
        return self._target

    # ------------------------------------------------------------------
    # training loop (vanilla GMM-VGAE; the R- version uses RethinkTrainer)
    # ------------------------------------------------------------------
    def fit_clustering(
        self,
        graph,
        epochs: int = 200,
        verbose: bool = False,
    ) -> Dict[str, List[float]]:
        features, adj_norm = self.prepare_inputs(graph)
        embeddings = self.embed(graph)
        if self._mixture is None:
            self.init_clustering(embeddings)
        optimizer = Adam(self.parameters(), lr=self.learning_rate)
        history: Dict[str, List[float]] = {"loss": [], "clustering_loss": [], "reconstruction_loss": []}
        with autograd_leak_check("GMMVGAE.fit_clustering"):
            for epoch in range(epochs):
                if epoch % self.target_refresh_interval == 0:
                    self.refresh_clustering(self.embed(graph))
                optimizer.zero_grad()
                z = self.encode(features, adj_norm)
                clustering = self.clustering_loss(z)
                reconstruction = self.pretraining_loss(z, graph.adjacency)
                loss = clustering + reconstruction * self.gamma
                loss.backward()
                optimizer.step()
                loss.release_graph()
                history["loss"].append(loss.item())
                history["clustering_loss"].append(clustering.item())
                history["reconstruction_loss"].append(reconstruction.item())
                if verbose and epoch % 20 == 0:
                    get_logger("pretrain").info(
                        "[GMM-VGAE] epoch %d loss %.4f", epoch, loss.item()
                    )
        return history
