"""The GAE model family evaluated in the paper.

First group (clustering separate from embedding learning, Eq. 1):
:class:`GAE`, :class:`VGAE`, :class:`ARGAE`, :class:`ARVGAE`.

Second group (joint clustering and embedding learning, Eq. 2/5):
:class:`GMMVGAE`, :class:`DGAE`.

Every model exposes the interface of
:class:`~repro.models.base.GAEClusteringModel`, which is what the
R- operators (:mod:`repro.core`) plug into.
"""

from repro.models.base import (
    GAEClusteringModel,
    GCNEncoder,
    VariationalGCNEncoder,
    PretrainResult,
    reconstruction_weights,
)
from repro.models.gae import GAE
from repro.models.vgae import VGAE
from repro.models.argae import ARGAE
from repro.models.arvgae import ARVGAE
from repro.models.gmm_vgae import GMMVGAE
from repro.models.dgae import DGAE
from repro.models.registry import (
    MODELS,
    MODEL_BUILDERS,
    build_model,
    available_models,
    model_group,
)

__all__ = [
    "MODELS",
    "GAEClusteringModel",
    "GCNEncoder",
    "VariationalGCNEncoder",
    "PretrainResult",
    "reconstruction_weights",
    "GAE",
    "VGAE",
    "ARGAE",
    "ARVGAE",
    "GMMVGAE",
    "DGAE",
    "MODEL_BUILDERS",
    "build_model",
    "available_models",
    "model_group",
]
