"""GAE (Kipf & Welling, 2016): non-variational graph auto-encoder.

A first-group model: pretraining minimises adjacency reconstruction, and
clustering is performed afterwards by running k-means on the frozen
embeddings.
"""

from __future__ import annotations

from repro.models.base import GAEClusteringModel


class GAE(GAEClusteringModel):
    """Graph Auto-Encoder with inner-product decoder and k-means clustering."""

    group = "first"
    variational = False
