"""Shared infrastructure for the GAE model family.

All six models of the paper share the same skeleton:

* a GCN encoder (two graph-convolution layers, 32 and 16 units),
* an inner-product decoder producing reconstruction logits ``Z Z^T``,
* a pretraining phase that minimises the (weighted) binary cross-entropy
  between the reconstructed and the input adjacency,
* a clustering phase that either applies a clustering algorithm to the
  frozen embeddings (first group) or optimises a joint clustering +
  reconstruction objective (second group).

:class:`GAEClusteringModel` captures that skeleton; concrete models override
the encoder construction, the extra loss terms (KL, adversarial) and the
clustering loss.  The interface is intentionally explicit about the
self-supervision graph used for reconstruction so the R- operators can swap
it for the clustering-oriented graph built by Υ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.sanitizers import autograd_leak_check
from repro.clustering.assignments import estimate_cluster_moments
from repro.clustering.kmeans import KMeans
from repro.graph.graph import AttributedGraph
from repro.graph.sparse import propagation_matrix
from repro.nn import functional as F
from repro.nn.layers import GraphConvolution
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.observability.log import get_logger


def reconstruction_weights(adjacency: np.ndarray) -> Tuple[float, float]:
    """Positive-class weight and loss normalisation for a sparse adjacency.

    Real graphs are extremely sparse, so the standard GAE implementation
    re-weights positive entries by ``#neg / #pos`` and scales the mean loss
    by ``N² / (2 #neg)``.  Both factors are recomputed whenever the
    self-supervision graph changes (the Υ operator adds and removes edges).
    """
    adjacency = np.asarray(adjacency)
    n = adjacency.shape[0]
    positives = float(adjacency.sum())
    total = float(n * n)
    negatives = total - positives
    if positives == 0.0:
        return 1.0, 1.0
    pos_weight = negatives / positives
    norm = total / (2.0 * negatives) if negatives > 0 else 1.0
    return pos_weight, norm


class GCNEncoder(Module):
    """Two-layer GCN encoder ``Z = GCN(GCN(X))`` (ReLU then linear)."""

    def __init__(
        self,
        in_features: int,
        hidden_dim: int,
        latent_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.hidden_layer = GraphConvolution(in_features, hidden_dim, activation="relu", rng=rng)
        self.output_layer = GraphConvolution(hidden_dim, latent_dim, activation=None, rng=rng)

    def forward(self, features, adj_norm) -> Tensor:
        hidden = self.hidden_layer(features, adj_norm)
        return self.output_layer(hidden, adj_norm)


class VariationalGCNEncoder(Module):
    """GCN encoder with Gaussian posterior heads (mu, log_sigma)."""

    def __init__(
        self,
        in_features: int,
        hidden_dim: int,
        latent_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.hidden_layer = GraphConvolution(in_features, hidden_dim, activation="relu", rng=rng)
        self.mu_layer = GraphConvolution(hidden_dim, latent_dim, activation=None, rng=rng)
        self.log_sigma_layer = GraphConvolution(hidden_dim, latent_dim, activation=None, rng=rng)

    def forward(self, features, adj_norm) -> Tuple[Tensor, Tensor]:
        hidden = self.hidden_layer(features, adj_norm)
        mu = self.mu_layer(hidden, adj_norm)
        log_sigma = self.log_sigma_layer(hidden, adj_norm)
        # Clip log-sigma to keep exp() well behaved on small synthetic graphs.
        return mu, log_sigma.clip(-10.0, 10.0)


@dataclass
class PretrainResult:
    """History returned by :meth:`GAEClusteringModel.pretrain`."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class GAEClusteringModel(Module):
    """Base class of the six GAE clustering models.

    Parameters
    ----------
    num_features:
        Input feature dimensionality ``J``.
    num_clusters:
        Number of clusters ``K``.
    hidden_dim, latent_dim:
        Encoder layer widths (paper defaults: 32 and 16).
    learning_rate:
        Adam learning rate for both phases (paper default: 0.01).
    gamma:
        Balancing coefficient between clustering and reconstruction in the
        second-group joint objective (Eq. 5).
    seed:
        Seed controlling weight init, sampling and clustering restarts.
    """

    #: "first" (separate clustering) or "second" (joint clustering).
    group: str = "first"
    #: whether the encoder is variational (adds a KL term and sampling).
    variational: bool = False

    def __init__(
        self,
        num_features: int,
        num_clusters: int,
        hidden_dim: int = 32,
        latent_dim: int = 16,
        learning_rate: float = 0.01,
        gamma: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.num_clusters = int(num_clusters)
        self.hidden_dim = int(hidden_dim)
        self.latent_dim = int(latent_dim)
        self.learning_rate = float(learning_rate)
        self.gamma = float(gamma)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self._build_encoder()
        # Cached cluster parameters (set by init_clustering / refreshed during training).
        self.cluster_centers_: Optional[np.ndarray] = None
        self.cluster_variances_: Optional[np.ndarray] = None
        # Posterior mean of the most recent encode() call (see last_embeddings).
        self._last_mu: Optional[Tensor] = None
        self._last_log_sigma: Optional[Tensor] = None

    # ------------------------------------------------------------------
    # construction hooks
    # ------------------------------------------------------------------
    def _build_encoder(self) -> None:
        if self.variational:
            self.encoder = VariationalGCNEncoder(
                self.num_features, self.hidden_dim, self.latent_dim, self.rng
            )
        else:
            self.encoder = GCNEncoder(
                self.num_features, self.hidden_dim, self.latent_dim, self.rng
            )

    # ------------------------------------------------------------------
    # checkpointing hooks (see repro.store)
    # ------------------------------------------------------------------
    def config_signature(self) -> Dict[str, object]:
        """Stable scalar description of the model's construction.

        Collects the class name plus every public scalar attribute
        (constructor hyper-parameters such as widths, learning rate, gamma,
        seed, model-specific knobs).  :mod:`repro.store` hashes this into
        snapshot keys and embeds it in snapshots so a checkpoint can be
        validated against — and rebuilt for — the model that produced it.
        """
        signature: Dict[str, object] = {"class": type(self).__name__}
        for key in sorted(self.__dict__):
            if key.startswith("_") or key == "training":
                continue
            value = self.__dict__[key]
            if isinstance(value, (bool, int, float, str)):
                signature[key] = value
        return signature

    def extra_state(self) -> Dict[str, object]:
        """Non-parameter state a snapshot must carry beyond :meth:`state_dict`.

        The base capture covers the cached cluster moments and the model's
        RNG state (restoring it makes a resumed run consume the exact noise
        stream of an uninterrupted one).  ``trainable_extras`` lists
        parameter names that only exist after clustering initialisation
        (e.g. DGAE's trainable centres): :class:`repro.store.Snapshot` uses
        it to validate checkpoints against freshly built models.
        """
        import copy as _copy

        def _opt(array):
            return None if array is None else np.array(array, copy=True)

        return {
            "trainable_extras": [],
            "cluster_centers": _opt(self.cluster_centers_),
            "cluster_variances": _opt(self.cluster_variances_),
            "rng": _copy.deepcopy(self.rng.bit_generator.state),
        }

    def load_extra_state(self, state: Dict[str, object], restore_rng: bool = True) -> None:
        """Inverse of :meth:`extra_state`.

        ``restore_rng=False`` keeps the model's own RNG stream — that is the
        paper's fairness protocol, where D and R-D both continue from shared
        pretraining weights with their freshly seeded generators.
        """
        import copy as _copy

        def _opt(value):
            return None if value is None else np.array(value, copy=True)

        self.cluster_centers_ = _opt(state.get("cluster_centers"))
        self.cluster_variances_ = _opt(state.get("cluster_variances"))
        if restore_rng and state.get("rng") is not None:
            self.rng.bit_generator.state = _copy.deepcopy(state["rng"])

    # ------------------------------------------------------------------
    # graph preparation
    # ------------------------------------------------------------------
    @staticmethod
    def prepare_inputs(graph: AttributedGraph) -> Tuple[np.ndarray, np.ndarray]:
        """Return (row-normalised features, GCN propagation matrix).

        The propagation matrix is a :class:`~repro.graph.sparse.SparseAdjacency`
        for large sparse graphs and a dense array otherwise (see
        :func:`~repro.graph.sparse.propagation_matrix`); the GCN layers accept
        both, so callers should treat it as an opaque operator.
        """
        features = graph.row_normalized_features()
        adj_norm = propagation_matrix(graph.adjacency, self_loops=True)
        return features, adj_norm

    # ------------------------------------------------------------------
    # encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, features: np.ndarray, adj_norm, sample: bool = True) -> Tensor:
        """Latent representation tensor ``Z`` (differentiable).

        Variational models return a reparameterised sample during training
        (``sample=True``) and the posterior mean otherwise.
        """
        if self.variational:
            mu, log_sigma = self.encoder(features, adj_norm)
            self._last_mu = mu
            self._last_log_sigma = log_sigma
            if sample and self.training:
                noise = Tensor(self.rng.standard_normal(mu.shape))
                return mu + log_sigma.exp() * noise
            return mu
        z = self.encoder(features, adj_norm)
        self._last_mu = z
        self._last_log_sigma = None
        return z

    def reconstruction_logits(self, z: Tensor) -> Tensor:
        """Decoder logits ``Z Z^T`` (apply sigmoid for probabilities)."""
        return z @ z.T

    def embed(self, graph: AttributedGraph) -> np.ndarray:
        """Deterministic embeddings (posterior mean) as a numpy array."""
        features, adj_norm = self.prepare_inputs(graph)
        self.eval()
        with no_grad():
            z = self.encode(features, adj_norm, sample=False)
        self.train()
        return z.numpy().copy()

    def last_embeddings(self) -> np.ndarray:
        """Deterministic embeddings from the most recent :meth:`encode` call.

        The posterior mean cached by ``encode`` is exactly what
        :meth:`embed` would recompute with the same weights, so training
        loops that already ran a forward pass this step can reuse it instead
        of paying for a second encoder forward.
        """
        if self._last_mu is None:
            raise RuntimeError("encode() has not been called yet")
        return self._last_mu.numpy().copy()

    # ------------------------------------------------------------------
    # losses
    # ------------------------------------------------------------------
    def reconstruction_loss(self, z: Tensor, target_adjacency: np.ndarray) -> Tensor:
        """Weighted BCE between ``sigmoid(Z Z^T)`` and ``target_adjacency``.

        The target includes self loops (as in the reference implementations)
        and its sparsity determines the positive weight and normalisation.
        """
        target = np.asarray(target_adjacency, dtype=np.float64)
        target = target + np.eye(target.shape[0])
        np.clip(target, 0.0, 1.0, out=target)
        pos_weight, norm = reconstruction_weights(target)
        logits = self.reconstruction_logits(z)
        return F.binary_cross_entropy_with_logits(logits, target, pos_weight=pos_weight, norm=norm)

    def regularization_loss(self, z: Tensor) -> Optional[Tensor]:
        """Model-specific extra loss (KL divergence, adversarial penalty).

        The Gaussian KL follows the reference GAE implementation's scaling
        (``1/N`` on top of the per-node mean); with the full-strength KL the
        encoder collapses on small graphs.
        """
        if self.variational and self._last_log_sigma is not None:
            num_nodes = self._last_mu.shape[0]
            return F.gaussian_kl_divergence(self._last_mu, self._last_log_sigma) * (
                1.0 / num_nodes
            )
        return None

    def pretraining_loss(self, z: Tensor, target_adjacency: np.ndarray) -> Tensor:
        """Reconstruction plus any regularisation (the self-supervised pretext)."""
        loss = self.reconstruction_loss(z, target_adjacency)
        extra = self.regularization_loss(z)
        if extra is not None:
            loss = loss + extra
        return loss

    def clustering_loss(self, z: Tensor, node_indices: Optional[np.ndarray] = None) -> Optional[Tensor]:
        """Differentiable clustering loss evaluated on ``z`` (second group only).

        ``node_indices`` restricts the loss to a subset of nodes — this is
        how the sampling operator Ξ feeds only decidable nodes Ω into the
        clustering objective.  First-group models return ``None``.
        """
        return None

    def soft_assignment_tensor(self, z: Tensor) -> Tensor:
        """Differentiable (B, K) soft assignment of ``z`` (second group only)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a differentiable soft assignment"
        )

    def clustering_target(self) -> Optional[np.ndarray]:
        """The (N, K) per-node target the clustering loss is computed against.

        Second-group models return their sharpened target distribution Q so
        the minibatch trainer can slice it by global node id; first-group
        models (no differentiable clustering loss) return ``None``.
        """
        return None

    def clustering_loss_with_target(
        self,
        z: Tensor,
        target: np.ndarray,
        node_indices: Optional[np.ndarray] = None,
    ) -> Tensor:
        """KL(target || P) against an arbitrary (B, K) target distribution.

        Rows of ``target`` align with rows of ``z`` (a minibatch slices both
        by the same global node ids); ``node_indices`` then restricts the
        loss to a subset of those rows.  Used by the regular clustering loss
        (with the sharpened target Q), by the minibatch trainer (with a
        per-batch slice of Q) and by the Λ_FR diagnostic (with the
        Hungarian-aligned oracle Q').
        """
        assignments = self.soft_assignment_tensor(z)
        target = np.asarray(target, dtype=np.float64)
        if node_indices is not None:
            node_indices = np.asarray(node_indices, dtype=np.int64)
            if node_indices.size == 0:
                return Tensor(0.0)
            assignments = assignments[node_indices]
            target = target[node_indices]
        count = max(target.shape[0], 1)
        return F.kl_divergence_rows(target, assignments) * (1.0 / count)

    # ------------------------------------------------------------------
    # clustering interface
    # ------------------------------------------------------------------
    def init_clustering(self, embeddings: np.ndarray) -> None:
        """Initialise cluster parameters from pretrain embeddings (k-means)."""
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed).fit(embeddings)
        centers, variances = estimate_cluster_moments(
            embeddings, kmeans.labels_, self.num_clusters
        )
        self.cluster_centers_ = centers
        self.cluster_variances_ = variances

    def refresh_clustering(self, embeddings: np.ndarray) -> None:
        """Re-estimate cluster parameters from current embeddings.

        Default: one k-means-style refresh (assign to nearest centre, update
        moments).  Second-group models override this with their own scheme
        (trainable centres for DGAE, EM step for GMM-VGAE).
        """
        if self.cluster_centers_ is None:
            self.init_clustering(embeddings)
            return
        assignments = self.predict_assignments(embeddings)
        hard = np.argmax(assignments, axis=1)
        centers, variances = estimate_cluster_moments(embeddings, hard, self.num_clusters)
        self.cluster_centers_ = centers
        self.cluster_variances_ = variances

    def predict_assignments(self, embeddings: np.ndarray) -> np.ndarray:
        """(N, K) clustering assignment matrix ``P`` for given embeddings.

        First-group models run k-means and return one-hot hard assignments;
        second-group models return their model-specific soft assignments.
        """
        kmeans = KMeans(self.num_clusters, num_init=10, seed=self.seed).fit(embeddings)
        one_hot = np.zeros((embeddings.shape[0], self.num_clusters))
        one_hot[np.arange(embeddings.shape[0]), kmeans.labels_] = 1.0
        self.cluster_centers_, self.cluster_variances_ = estimate_cluster_moments(
            embeddings, kmeans.labels_, self.num_clusters
        )
        return one_hot

    def predict_labels(self, graph: AttributedGraph) -> np.ndarray:
        """Hard cluster labels for every node of ``graph``."""
        embeddings = self.embed(graph)
        assignments = self.predict_assignments(embeddings)
        return np.argmax(assignments, axis=1)

    # ------------------------------------------------------------------
    # training loops
    # ------------------------------------------------------------------
    def pretrain(
        self,
        graph: AttributedGraph,
        epochs: int = 200,
        optimizer: Optional[Adam] = None,
        verbose: bool = False,
    ) -> PretrainResult:
        """Self-supervised pretraining on the raw input graph."""
        features, adj_norm = self.prepare_inputs(graph)
        target = graph.adjacency
        optimizer = optimizer or Adam(self.parameters(), lr=self.learning_rate)
        history = PretrainResult()
        with autograd_leak_check(f"{self.__class__.__name__}.pretrain"):
            for epoch in range(epochs):
                optimizer.zero_grad()
                z = self.encode(features, adj_norm)
                loss = self.pretraining_loss(z, target)
                loss.backward()
                self.pretrain_step_hook(z, features, adj_norm, optimizer)
                optimizer.step()
                loss.release_graph()
                history.losses.append(loss.item())
                if verbose and epoch % 20 == 0:
                    get_logger("pretrain").info(
                        "[pretrain:%s] epoch %d loss %.4f",
                        self.__class__.__name__,
                        epoch,
                        loss.item(),
                    )
        return history

    def pretrain_step_hook(self, z, features, adj_norm, optimizer) -> None:
        """Hook executed after the backward pass of every pretraining step.

        Adversarial models use it to train their discriminator.
        """

    def fit(
        self,
        graph: AttributedGraph,
        pretrain_epochs: int = 200,
        clustering_epochs: int = 200,
        verbose: bool = False,
    ) -> "GAEClusteringModel":
        """Full training: pretraining followed by the model's clustering phase."""
        self.pretrain(graph, epochs=pretrain_epochs, verbose=verbose)
        self.fit_clustering(graph, epochs=clustering_epochs, verbose=verbose)
        return self

    def fit_clustering(
        self,
        graph: AttributedGraph,
        epochs: int = 200,
        verbose: bool = False,
    ) -> Dict[str, List[float]]:
        """Clustering phase.

        First-group models do nothing here (their clustering is a separate
        post-hoc algorithm run by :meth:`predict_labels`).  Second-group
        models override this method with a joint optimisation loop.
        """
        embeddings = self.embed(graph)
        self.init_clustering(embeddings)
        return {"loss": []}
