"""Deterministic multi-process execution of independent trials.

Every trial in this library is identified by a fully serialisable
:class:`~repro.api.spec.RunSpec`, and every source of randomness inside a
trial is derived from the seeds carried by that spec.  A trial is therefore
a *reproducible unit*: executing the same spec in another process yields the
same metrics bit for bit.  This module exploits that to fan multi-seed
workloads (the mean ± std tables, ``repro-run --jobs N``, the benchmark
suite) out over a process pool while keeping results indistinguishable from
a serial run:

* :func:`run_trials` executes a list of specs and returns their
  :class:`~repro.api.pipeline.RunResult` objects *in input order* —
  ``run_trials(specs, jobs=4)`` equals ``run_trials(specs, jobs=1)``
  element-wise (the trained model is not returned in either mode; models
  hold autograd closures that cannot cross process boundaries).
* :func:`run_seeded` expands one spec over a list of seeds.
* :func:`parallel_map` is the underlying order-preserving pool map used by
  the experiment runner for work units that are not spec-shaped (e.g. the
  shared-pretraining D / R-D pairs of Tables 2, 4 and 17).
* :func:`load_dataset_cached` is the worker-side dataset memoisation: a
  per-process LRU keyed by the full dataset spec, so a worker executing
  many trials of one sweep materialises the graph once
  (:func:`dataset_cache_info` exposes the per-process counters).

Execution rides on the supervised pool of
:mod:`repro.resilience.supervisor`: per-attempt timeouts
(``REPRO_TRIAL_TIMEOUT``), crash recovery with pool respawn, retry with
deterministic backoff (``REPRO_MAX_RETRIES``), and interrupt-safe teardown.
:func:`run_sweep` additionally journals per-trial completions into the
artifact store so an interrupted sweep can resume (``repro-run --resume``)
skipping finished trials, bitwise identical to an uninterrupted run.

Workers are plain ``concurrent.futures`` processes running this same code
base; no third-party dependency is involved.
"""

from __future__ import annotations

import copy
import json
import os
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

from repro import env as repro_env
from repro.errors import ConfigError
from repro.resilience.supervisor import (
    RetryPolicy,
    SweepOutcome,
    TrialFailure,
    supervised_map,
)

T = TypeVar("T")
U = TypeVar("U")

#: environment variable bounding the per-process dataset cache (0 disables).
#: Declared in :mod:`repro.env`; re-exported here for compatibility.
DATASET_CACHE_SIZE_ENV = repro_env.DATASET_CACHE_SIZE_ENV
DEFAULT_DATASET_CACHE_SIZE = 8

# ----------------------------------------------------------------------
# worker-side dataset memoisation
# ----------------------------------------------------------------------
# Multi-seed fan-outs re-run the same (dataset, seed, options) spec once per
# model seed, and a pool worker typically executes several of them; building
# the graph anew each time is a pure constant-factor tax on --jobs N.  This
# per-process LRU makes each worker load a dataset spec exactly once.  The
# cached AttributedGraph instances are shared between trials, which is safe
# because the whole stack treats graphs as immutable (operators copy before
# editing; robustness sweeps corrupt explicit copies).
_dataset_cache: "OrderedDict[Tuple[str, int, str], Any]" = OrderedDict()
_dataset_cache_stats: Dict[str, int] = {"hits": 0, "misses": 0}


def dataset_cache_limit() -> int:
    """Max entries of the per-process dataset cache (env-configurable)."""
    limit = repro_env.env_int(DATASET_CACHE_SIZE_ENV, DEFAULT_DATASET_CACHE_SIZE)  # repro: noqa[REP104] cache limit is per-process capacity, not trial-visible state
    if limit < 0:
        raise ConfigError(f"{DATASET_CACHE_SIZE_ENV} must be >= 0, got {limit}")
    return limit


def load_dataset_cached(
    name: str, seed: int = 0, options: Optional[Dict[str, Any]] = None
) -> Any:
    """Build a registered dataset, memoised per process and dataset spec.

    The key is the full dataset spec — name, generation seed and options —
    so distinct specs never alias.  Least-recently-used entries are evicted
    beyond :func:`dataset_cache_limit` (a limit of 0 disables caching).
    """
    from repro.datasets.registry import DATASETS

    limit = dataset_cache_limit()
    key = (str(name), int(seed), json.dumps(options or {}, sort_keys=True))
    if limit and key in _dataset_cache:
        _dataset_cache.move_to_end(key)  # repro: noqa[REP102] per-worker dataset cache; entries are deterministic by (name, seed, options)
        _dataset_cache_stats["hits"] += 1  # repro: noqa[REP102] per-worker cache stats, observability only, never trial-visible
        return _dataset_cache[key]
    _dataset_cache_stats["misses"] += 1
    graph = DATASETS[name](int(seed), **(options or {}))
    if limit:
        _dataset_cache[key] = graph
        while len(_dataset_cache) > limit:
            _dataset_cache.popitem(last=False)
    return graph


def dataset_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of *this* process's dataset cache.

    Includes the ``pid`` so results gathered from a pool can be grouped by
    worker — the per-worker ``misses`` count is how the load-once guarantee
    is asserted in the test suite.
    """
    return {
        "hits": _dataset_cache_stats["hits"],
        "misses": _dataset_cache_stats["misses"],
        "size": len(_dataset_cache),
        "limit": dataset_cache_limit(),
        "pid": os.getpid(),
    }


def clear_dataset_cache() -> None:
    """Drop every cached dataset and reset the counters (tests, reconfigs)."""
    _dataset_cache.clear()
    _dataset_cache_stats["hits"] = 0
    _dataset_cache_stats["misses"] = 0


def default_jobs() -> int:
    """Number of workers used when ``jobs`` is passed as ``"auto"``."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Union[int, str, None], num_items: int) -> int:
    """Normalise a ``jobs`` argument: ``None``→1, ``"auto"``→cpu count.

    The result is clamped to ``num_items`` — extra workers would only sit
    idle — and validated to be positive.
    """
    if jobs is None:
        resolved = 1
    elif isinstance(jobs, str):
        if jobs != "auto":
            raise ValueError(f"jobs must be a positive int, None or 'auto', got {jobs!r}")
        resolved = default_jobs()
    else:
        resolved = int(jobs)
    if resolved < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    return max(1, min(resolved, num_items))


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    jobs: Union[int, str, None] = None,
    policy: Optional[RetryPolicy] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[U]:
    """Order-preserving map over a supervised process pool.

    With ``jobs in (None, 1)`` (or a single item) the map runs in-process,
    which keeps tracebacks simple and avoids pool start-up cost.  ``fn``
    must be an importable module-level function and ``items`` picklable
    when ``jobs > 1``.

    Execution is supervised (:func:`repro.resilience.supervised_map`):
    worker crashes break only the affected attempts, hung items are reaped
    under ``REPRO_TRIAL_TIMEOUT``, and failed attempts retry with
    deterministic backoff up to ``REPRO_MAX_RETRIES`` (or an explicit
    ``policy``).  ``parallel_map`` is fail-fast: an item that exhausts its
    budget raises the typed :class:`~repro.errors.TrialFailedError` /
    :class:`~repro.errors.TrialTimeoutError` carrying the full attempt
    history.  Sweeps that should degrade gracefully instead go through
    :func:`run_sweep`.
    """
    items = list(items)
    jobs = resolve_jobs(jobs, len(items))
    outcome = supervised_map(fn, items, jobs, policy=policy, keys=keys, fail_fast=True)
    return outcome.results


# ----------------------------------------------------------------------
# spec-based trial execution
# ----------------------------------------------------------------------
def _normalise_spec(spec: Any) -> Dict[str, Any]:
    """Coerce a RunSpec / dict / JSON string into a plain spec dict."""
    from repro.api.spec import RunSpec

    if isinstance(spec, RunSpec):
        return spec.to_dict()
    if isinstance(spec, str):
        return RunSpec.from_json(spec).to_dict()
    if isinstance(spec, dict):
        # Validate eagerly so malformed specs fail in the caller's process
        # with a clean SpecError instead of inside a pool worker.
        return RunSpec.from_dict(spec).to_dict()
    from repro.errors import SpecError

    raise SpecError(f"cannot execute a trial from {type(spec).__name__}")


def _execute_spec(spec_dict: Dict[str, Any]) -> Any:
    """Pool worker: run one spec and return a process-portable result.

    The trained model is dropped: its autograd tensors hold backward
    closures that cannot be pickled, and keeping the serial path identical
    to the parallel one is what makes ``jobs`` a pure throughput knob.

    With ``REPRO_SANITIZE=1`` exported (workers inherit the environment)
    the trial runs under the runtime sanitizers, including the check that
    it never consumes this worker's process-global RNG — the invariant the
    bitwise any-``jobs`` determinism guarantee rests on.

    With ``REPRO_TRACE`` / ``REPRO_METRICS`` exported, the trial runs under
    a *fresh* tracer/metrics pair (:func:`repro.observability.trial_telemetry`)
    whose export is shipped back in ``result.extra['telemetry']`` — the only
    way span trees cross the process boundary.  Telemetry never consumes
    RNG, so traced sweeps stay bitwise identical to untraced ones.
    """
    from repro.analysis.sanitizers import install_from_env, rng_isolation_check
    from repro.api.pipeline import Pipeline
    from repro.observability.collect import trial_telemetry

    install_from_env()
    with rng_isolation_check(f"trial {spec_dict.get('model')}/{spec_dict.get('dataset')}"):
        with trial_telemetry() as telemetry:
            result = Pipeline.from_spec(spec_dict).run()
    result.model = None
    if telemetry is not None:
        result.extra["telemetry"] = telemetry.export()
    return result


def run_sweep(
    specs: Iterable[Any],
    jobs: Union[int, str, None] = None,
    store_dir: Optional[str] = None,
    resume: bool = False,
    policy: Optional[RetryPolicy] = None,
    fail_fast: bool = False,
) -> SweepOutcome:
    """Execute specs under supervision; the full-fidelity sweep entry point.

    Returns a :class:`~repro.resilience.SweepOutcome`: ordered per-spec
    results, quarantined :class:`~repro.resilience.TrialFailure` entries
    for trials that exhausted their retry budget (``fail_fast=True``
    instead raises the typed error on the first quarantine), and a
    JSON-serialisable failure report (:meth:`SweepOutcome.report`).

    When an artifact store is configured (``store_dir`` or
    ``REPRO_STORE_DIR``), every finished trial is **journaled** into it as
    it completes, keyed by ``RunSpec.store_key()`` under a sweep key hashed
    from the ordered trial list.  ``resume=True`` replays those journal
    entries — finished trials are skipped, and because each trial is
    bitwise-reproducible from its spec, the resumed sweep's results equal
    an uninterrupted run's bit for bit (``SweepOutcome.resumed`` counts the
    replayed trials).  Corrupt journal entries are quarantined by the store
    and simply re-run.  After a journaled sweep, the store is
    garbage-collected when ``REPRO_STORE_MAX_BYTES`` sets a budget.

    With ``REPRO_TRACE`` / ``REPRO_METRICS`` enabled the per-trial span
    forests shipped back by the workers are merged (deterministically, by
    trial key) with the supervisor's own spans into
    :attr:`SweepOutcome.telemetry`; when a store is configured the merged
    document is also written as a Chrome trace under ``<store>/traces/``.
    """
    from repro.observability.collect import merge_sweep_telemetry, trial_telemetry
    from repro.observability.exporters import store_trace_path, write_chrome_trace
    from repro.resilience.journal import open_journal, sweep_key
    from repro.store import active_store, store_env

    spec_dicts = [_normalise_spec(spec) for spec in specs]
    trial_keys = [_spec_key(d) for d in spec_dicts]
    with store_env(store_dir):
        store = active_store()
        journal = open_journal(store, trial_keys)
        completed: Dict[int, Any] = {}
        if journal is not None and resume:
            completed = journal.load()
        remaining = [i for i in range(len(spec_dicts)) if i not in completed]

        on_result: Optional[Callable[[int, Any], None]] = None
        if journal is not None:
            def on_result(sub_index: int, value: Any) -> None:
                journal.record(remaining[sub_index], value)

        resolved = resolve_jobs(jobs, len(remaining))
        # The supervisor gets its own tracer/metrics pair for the sweep:
        # attempt spans, backoff waits, pool respawns and journal/store
        # traffic land here, while each trial captures (and ships back) its
        # own forest — see ``_execute_spec``.
        with trial_telemetry() as supervisor_telemetry:
            outcome = supervised_map(
                _execute_spec,
                [spec_dicts[i] for i in remaining],
                resolved,
                policy=policy,
                keys=[trial_keys[i] for i in remaining],
                fail_fast=fail_fast,
                on_result=on_result,
            )

        results: List[Any] = [None] * len(spec_dicts)
        for index, value in completed.items():
            results[index] = value
        for sub_index, index in enumerate(remaining):
            slot = outcome.results[sub_index]
            if isinstance(slot, TrialFailure):
                slot.index = index  # re-anchor to the caller's spec order
            results[index] = slot

        telemetry: Optional[Dict[str, Any]] = None
        if supervisor_telemetry is not None:
            # Merge order is (trial key, spec index) — never pool arrival
            # order — so the document is identical for any ``jobs``.
            triples = []
            for index, value in enumerate(results):
                extra = getattr(value, "extra", None)
                payload = extra.get("telemetry") if isinstance(extra, dict) else None
                triples.append((trial_keys[index], index, payload))
            telemetry = merge_sweep_telemetry(
                triples, supervisor=supervisor_telemetry.export()
            )
            if store is not None:
                write_chrome_trace(
                    store_trace_path(store.root, sweep_key(trial_keys)), telemetry
                )

        if store is not None and repro_env.env_int(repro_env.STORE_MAX_BYTES_ENV, 0) > 0:
            store.gc()

    return SweepOutcome(
        results=results,
        failures=sorted(outcome.failures, key=lambda failure: failure.index),
        resumed=len(completed),
        policy=outcome.policy,
        telemetry=telemetry,
    )


def _spec_key(spec_dict: Dict[str, Any]) -> str:
    """The trial's store identity — the same key warm starts use."""
    from repro.store.keys import run_key

    return run_key(spec_dict)


def run_trials(
    specs: Iterable[Any],
    jobs: Union[int, str, None] = None,
    store_dir: Optional[str] = None,
    resume: bool = False,
    policy: Optional[RetryPolicy] = None,
    fail_fast: bool = False,
) -> List[Any]:
    """Execute specs (RunSpec / dict / JSON) and return results in order.

    Each trial is seeded entirely by its spec, so the per-spec results are
    bitwise identical regardless of ``jobs``; only wall-clock time changes.
    ``store_dir`` points ``REPRO_STORE_DIR`` at a warm-start artifact store
    for the duration of the sweep — pool workers inherit the environment,
    so every trial consults the same pretraining cache
    (``RunResult.extra['pretrain_cache']`` records the hit/miss per trial).

    This is :func:`run_sweep` returning just the ordered result list: by
    default the sweep degrades gracefully, leaving a
    :class:`~repro.resilience.TrialFailure` in the slot of any trial that
    exhausted its retries (``fail_fast=True`` raises instead); with a store
    configured, completions are journaled and ``resume=True`` skips trials
    a previous interrupted sweep already finished.
    """
    return run_sweep(
        specs,
        jobs=jobs,
        store_dir=store_dir,
        resume=resume,
        policy=policy,
        fail_fast=fail_fast,
    ).results


def run_seeded(
    spec: Any,
    seeds: Sequence[int],
    jobs: Union[int, str, None] = None,
    store_dir: Optional[str] = None,
    resume: bool = False,
    policy: Optional[RetryPolicy] = None,
    fail_fast: bool = False,
) -> List[Any]:
    """Run one spec once per seed (in ``seeds`` order), optionally pooled."""
    base = _normalise_spec(spec)
    expanded = []
    for seed in seeds:
        spec_dict = copy.deepcopy(base)
        spec_dict["seed"] = int(seed)
        expanded.append(spec_dict)
    return run_trials(
        expanded,
        jobs=jobs,
        store_dir=store_dir,
        resume=resume,
        policy=policy,
        fail_fast=fail_fast,
    )
