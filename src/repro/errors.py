"""Exception hierarchy shared across the repro package.

Every error raised by the public API derives from :class:`ReproError` so
callers can catch one base class.  The concrete classes additionally derive
from the builtin exception users would naturally expect (``KeyError`` for
failed registry lookups, ``ValueError`` for bad configuration), which keeps
pre-existing ``except KeyError`` / ``except ValueError`` call sites working.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple


class ReproError(Exception):
    """Base class of every repro-specific error."""


class UnknownEntryError(ReproError, KeyError):
    """A registry lookup failed: the name is not registered.

    Subclasses ``KeyError`` because registries behave like mappings.
    """

    def __init__(self, kind: str, name: str, available: Iterable[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = list(available)
        message = (
            f"unknown {kind} {name!r}; available: {', '.join(self.available) or '(none)'}"
        )
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def __reduce__(self) -> Tuple[Any, ...]:
        # Exception.__reduce__ would replay __init__ with self.args (the
        # message alone) and fail; pool workers pickle raised errors back to
        # the parent, so spell out the real constructor arguments.
        return (type(self), (self.kind, self.name, self.available))


class ConfigError(ReproError, ValueError):
    """A configuration object failed validation."""


class UnknownVariantError(ReproError, ValueError):
    """A trial variant other than "base" or "rethink" was requested."""

    def __init__(self, variant: str) -> None:
        self.variant = variant
        super().__init__(
            f"unknown variant {variant!r}; expected 'base' or 'rethink'"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        # See UnknownEntryError.__reduce__: keep the pickle round-trip from
        # re-wrapping the formatted message as if it were the variant.
        return (type(self), (self.variant,))


class SpecError(ReproError, ValueError):
    """A run specification is malformed or cannot be deserialised."""


class InternalInvariantError(ReproError, RuntimeError):
    """An internal invariant the library relies on was violated.

    Replaces bare ``assert`` statements in library code (REP006): unlike an
    assert it survives ``python -O``, carries a message explaining the
    broken invariant, and is catchable as :class:`ReproError`.
    """


class AnalysisError(ReproError):
    """Base class of every :mod:`repro.analysis` error."""


class LintConfigError(AnalysisError, ValueError):
    """The linter was invoked with unknown rules, paths or options."""


class SanitizerError(AnalysisError):
    """Base class of every runtime-sanitizer failure."""


class NonFiniteTensorError(SanitizerError, FloatingPointError):
    """A sanitized tensor operation produced NaN or Inf values."""


class AutogradLeakError(SanitizerError):
    """Autograd graph nodes survived past the scope that should release them.

    This is the PR-4 leak class: ``_backward`` closures form reference
    cycles, so an unreleased step graph keeps every intermediate array of
    that step alive until the cyclic garbage collector happens to run.
    """

    def __init__(self, count: int, scope: str) -> None:
        self.count = int(count)
        self.scope = str(scope)
        super().__init__(
            f"{count} autograd graph node(s) created inside {scope!r} still "
            f"hold backward closures at scope exit; call release_graph() on "
            f"every backward() root (or build them under no_grad())"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        # See UnknownEntryError.__reduce__: keep the pickle round-trip from
        # replaying __init__ with the formatted message.
        return (type(self), (self.count, self.scope))


class RngIsolationError(SanitizerError):
    """Library code consumed the process-global numpy RNG.

    Every source of randomness must flow from explicitly seeded
    ``np.random.Generator`` objects (REP001); touching the global stream
    breaks the bitwise ``--jobs`` determinism guarantee of
    :mod:`repro.parallel`.
    """


class ResilienceError(ReproError):
    """Base class of every :mod:`repro.resilience` error."""


class FaultPlanError(ResilienceError, ValueError):
    """A ``REPRO_FAULTS`` fault-injection plan string is malformed."""


class InjectedFaultError(ResilienceError, RuntimeError):
    """A deterministic fault-injection rule fired at a choke point.

    Raised by :mod:`repro.resilience.faults` for ``trial_error`` rules (and
    for crash/hang rules degraded to errors when executing in-process); the
    supervised pool treats it like any other trial failure, so retries and
    quarantine apply.
    """

    def __init__(self, kind: str, site: str, key: str) -> None:
        self.kind = kind
        self.site = site
        self.key = key
        super().__init__(
            f"injected fault {kind!r} fired at site {site!r} (key {key!r})"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        # See UnknownEntryError.__reduce__: pool workers pickle raised
        # errors back to the parent; replay the real constructor arguments.
        return (type(self), (self.kind, self.site, self.key))


class TrialFailedError(ResilienceError, RuntimeError):
    """A supervised trial exhausted its retry budget.

    ``attempts`` is the full attempt history (outcome, error text and
    timing per attempt) assembled by the supervising pool; the last
    worker-side exception is chained as ``__cause__`` where available.
    """

    def __init__(self, key: str, attempts: Any) -> None:
        self.key = key
        self.attempts = list(attempts)
        outcomes = ", ".join(
            str(a.get("outcome", "?")) if isinstance(a, dict) else str(a)
            for a in self.attempts
        )
        super().__init__(
            f"trial {key!r} failed permanently after "
            f"{len(self.attempts)} attempt(s) [{outcomes}]"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        return (type(self), (self.key, self.attempts))


class TrialTimeoutError(TrialFailedError):
    """A supervised trial exceeded its per-attempt timeout on every attempt.

    Carries the same attempt history as :class:`TrialFailedError`; the
    timed-out worker process is killed and the pool respawned, so a hung
    trial can never wedge the sweep.
    """

    def __init__(self, key: str, attempts: Any, timeout: float) -> None:
        self.timeout = float(timeout)
        super().__init__(key, attempts)
        self.args = (
            f"trial {key!r} timed out (> {timeout:g}s per attempt) after "
            f"{len(self.attempts)} attempt(s)",
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        return (type(self), (self.key, self.attempts, self.timeout))


class StoreError(ReproError):
    """Base class of every :mod:`repro.store` error."""


class SnapshotSchemaError(StoreError):
    """A snapshot file is not a snapshot, or its schema version is unsupported."""


class SnapshotMismatchError(StoreError, ValueError):
    """A snapshot does not fit the model (or optimizer) it is applied to."""


class ArtifactCorruptError(StoreError):
    """A stored artifact failed its integrity checks.

    Raised when an object's bytes no longer match the SHA-256 recorded at
    write time, or when the payload cannot be unpickled at all (truncated
    file, flipped bits).  The offending path is carried so operators can
    inspect the quarantined file; :class:`~repro.store.store.ArtifactStore`
    moves corrupt objects into its ``quarantine/`` area before re-raising.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = str(path)
        self.reason = str(reason)
        super().__init__(f"corrupt store artifact {self.path!r}: {self.reason}")

    def __reduce__(self) -> Tuple[Any, ...]:
        return (type(self), (self.path, self.reason))


class ArtifactNotFoundError(StoreError, KeyError):
    """An artifact-store lookup failed: no snapshot stored under the key."""

    def __init__(self, key: str, root: str) -> None:
        self.key = key
        self.root = root
        super().__init__(f"no artifact stored under key {key!r} in {root!r}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def __reduce__(self) -> Tuple[Any, ...]:
        # Exception.__reduce__ would replay __init__ with self.args (the
        # formatted message alone); spell out the real constructor arguments
        # so pool workers can pickle the error back to the parent.
        return (type(self), (self.key, self.root))
