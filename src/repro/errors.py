"""Exception hierarchy shared across the repro package.

Every error raised by the public API derives from :class:`ReproError` so
callers can catch one base class.  The concrete classes additionally derive
from the builtin exception users would naturally expect (``KeyError`` for
failed registry lookups, ``ValueError`` for bad configuration), which keeps
pre-existing ``except KeyError`` / ``except ValueError`` call sites working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every repro-specific error."""


class UnknownEntryError(ReproError, KeyError):
    """A registry lookup failed: the name is not registered.

    Subclasses ``KeyError`` because registries behave like mappings.
    """

    def __init__(self, kind: str, name: str, available) -> None:
        self.kind = kind
        self.name = name
        self.available = list(available)
        message = (
            f"unknown {kind} {name!r}; available: {', '.join(self.available) or '(none)'}"
        )
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with self.args (the
        # message alone) and fail; pool workers pickle raised errors back to
        # the parent, so spell out the real constructor arguments.
        return (type(self), (self.kind, self.name, self.available))


class ConfigError(ReproError, ValueError):
    """A configuration object failed validation."""


class UnknownVariantError(ReproError, ValueError):
    """A trial variant other than "base" or "rethink" was requested."""

    def __init__(self, variant: str) -> None:
        self.variant = variant
        super().__init__(
            f"unknown variant {variant!r}; expected 'base' or 'rethink'"
        )

    def __reduce__(self):
        # See UnknownEntryError.__reduce__: keep the pickle round-trip from
        # re-wrapping the formatted message as if it were the variant.
        return (type(self), (self.variant,))


class SpecError(ReproError, ValueError):
    """A run specification is malformed or cannot be deserialised."""


class StoreError(ReproError):
    """Base class of every :mod:`repro.store` error."""


class SnapshotSchemaError(StoreError):
    """A snapshot file is not a snapshot, or its schema version is unsupported."""


class SnapshotMismatchError(StoreError, ValueError):
    """A snapshot does not fit the model (or optimizer) it is applied to."""


class ArtifactNotFoundError(StoreError, KeyError):
    """An artifact-store lookup failed: no snapshot stored under the key."""

    def __init__(self, key: str, root: str) -> None:
        self.key = key
        self.root = root
        super().__init__(f"no artifact stored under key {key!r} in {root!r}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with self.args (the
        # formatted message alone); spell out the real constructor arguments
        # so pool workers can pickle the error back to the parent.
        return (type(self), (self.key, self.root))
