"""Exception hierarchy shared across the repro package.

Every error raised by the public API derives from :class:`ReproError` so
callers can catch one base class.  The concrete classes additionally derive
from the builtin exception users would naturally expect (``KeyError`` for
failed registry lookups, ``ValueError`` for bad configuration), which keeps
pre-existing ``except KeyError`` / ``except ValueError`` call sites working.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple


class ReproError(Exception):
    """Base class of every repro-specific error."""


class UnknownEntryError(ReproError, KeyError):
    """A registry lookup failed: the name is not registered.

    Subclasses ``KeyError`` because registries behave like mappings.
    """

    def __init__(self, kind: str, name: str, available: Iterable[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = list(available)
        message = (
            f"unknown {kind} {name!r}; available: {', '.join(self.available) or '(none)'}"
        )
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def __reduce__(self) -> Tuple[Any, ...]:
        # Exception.__reduce__ would replay __init__ with self.args (the
        # message alone) and fail; pool workers pickle raised errors back to
        # the parent, so spell out the real constructor arguments.
        return (type(self), (self.kind, self.name, self.available))


class ConfigError(ReproError, ValueError):
    """A configuration object failed validation."""


class UnknownVariantError(ReproError, ValueError):
    """A trial variant other than "base" or "rethink" was requested."""

    def __init__(self, variant: str) -> None:
        self.variant = variant
        super().__init__(
            f"unknown variant {variant!r}; expected 'base' or 'rethink'"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        # See UnknownEntryError.__reduce__: keep the pickle round-trip from
        # re-wrapping the formatted message as if it were the variant.
        return (type(self), (self.variant,))


class SpecError(ReproError, ValueError):
    """A run specification is malformed or cannot be deserialised."""


class InternalInvariantError(ReproError, RuntimeError):
    """An internal invariant the library relies on was violated.

    Replaces bare ``assert`` statements in library code (REP006): unlike an
    assert it survives ``python -O``, carries a message explaining the
    broken invariant, and is catchable as :class:`ReproError`.
    """


class AnalysisError(ReproError):
    """Base class of every :mod:`repro.analysis` error."""


class LintConfigError(AnalysisError, ValueError):
    """The linter was invoked with unknown rules, paths or options."""


class SanitizerError(AnalysisError):
    """Base class of every runtime-sanitizer failure."""


class NonFiniteTensorError(SanitizerError, FloatingPointError):
    """A sanitized tensor operation produced NaN or Inf values."""


class AutogradLeakError(SanitizerError):
    """Autograd graph nodes survived past the scope that should release them.

    This is the PR-4 leak class: ``_backward`` closures form reference
    cycles, so an unreleased step graph keeps every intermediate array of
    that step alive until the cyclic garbage collector happens to run.
    """

    def __init__(self, count: int, scope: str) -> None:
        self.count = int(count)
        self.scope = str(scope)
        super().__init__(
            f"{count} autograd graph node(s) created inside {scope!r} still "
            f"hold backward closures at scope exit; call release_graph() on "
            f"every backward() root (or build them under no_grad())"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        # See UnknownEntryError.__reduce__: keep the pickle round-trip from
        # replaying __init__ with the formatted message.
        return (type(self), (self.count, self.scope))


class RngIsolationError(SanitizerError):
    """Library code consumed the process-global numpy RNG.

    Every source of randomness must flow from explicitly seeded
    ``np.random.Generator`` objects (REP001); touching the global stream
    breaks the bitwise ``--jobs`` determinism guarantee of
    :mod:`repro.parallel`.
    """


class StoreError(ReproError):
    """Base class of every :mod:`repro.store` error."""


class SnapshotSchemaError(StoreError):
    """A snapshot file is not a snapshot, or its schema version is unsupported."""


class SnapshotMismatchError(StoreError, ValueError):
    """A snapshot does not fit the model (or optimizer) it is applied to."""


class ArtifactNotFoundError(StoreError, KeyError):
    """An artifact-store lookup failed: no snapshot stored under the key."""

    def __init__(self, key: str, root: str) -> None:
        self.key = key
        self.root = root
        super().__init__(f"no artifact stored under key {key!r} in {root!r}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]

    def __reduce__(self) -> Tuple[Any, ...]:
        # Exception.__reduce__ would replay __init__ with self.args (the
        # formatted message alone); spell out the real constructor arguments
        # so pool workers can pickle the error back to the parent.
        return (type(self), (self.key, self.root))
