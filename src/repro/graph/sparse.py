"""CSR sparse adjacency backend for the propagation hot path.

Every GCN propagation, adjacency normalisation and Laplacian quadratic form
in this code base was originally computed over dense ``(N, N)`` matrices,
which costs O(N² d) time and O(N²) memory per step.  Real attributed graphs
are extremely sparse (|E| ≪ N²), so this module provides a compressed
sparse row (CSR) representation — :class:`SparseAdjacency` — together with
the handful of operations the hot path needs:

* construction from a dense matrix, a COO triple or an undirected edge list,
* symmetric normalisation ``D^{-1/2} (A + I) D^{-1/2}`` with the same
  isolated-node handling as the dense :func:`repro.graph.laplacian.normalize_adjacency`,
* sparse @ dense multiplication (``spmm``) in O(|E| d),
* cached degrees and a cached transpose (for the autograd backward pass).

The class is deliberately numpy-only: the library has no scipy dependency
and the CI image installs numpy + pytest alone.  Everything downstream
dispatches on the adjacency type, so dense arrays keep working unchanged;
:func:`propagation_matrix` is the single place that decides which backend a
model uses.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

__all__ = [
    "SparseAdjacency",
    "as_sparse_adjacency",
    "propagation_matrix",
    "SPARSE_NODE_THRESHOLD",
    "SPARSE_DENSITY_THRESHOLD",
]

#: below this many nodes the dense BLAS path is at least as fast as CSR, and
#: keeping the tiny seed graphs dense preserves bit-identical seed behaviour.
SPARSE_NODE_THRESHOLD = 256

#: above this edge density CSR stops paying for itself.
SPARSE_DENSITY_THRESHOLD = 0.25


class SparseAdjacency:
    """A CSR-format sparse square matrix specialised for graph adjacencies.

    Attributes
    ----------
    data:
        (nnz,) float64 non-zero values, row-major.
    indices:
        (nnz,) int64 column index of each value.
    indptr:
        (N + 1,) int64 row pointer: row ``i`` owns ``data[indptr[i]:indptr[i+1]]``.
    shape:
        ``(N, N)``.

    Instances are immutable by convention: every edit operation returns a new
    object so cached degrees/transposes can never go stale.
    """

    __slots__ = (
        "data",
        "indices",
        "indptr",
        "shape",
        "_out_degrees",
        "_in_degrees",
        "_transpose",
        "_row_indices",
    )

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.shape[0] != self.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {self.shape}")
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError(
                f"indptr must have N + 1 = {self.shape[0] + 1} entries, "
                f"got {self.indptr.shape[0]}"
            )
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have the same length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column indices out of range")
        self._out_degrees: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None
        self._transpose: Optional["SparseAdjacency"] = None
        self._row_indices: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseAdjacency":
        """Build from a dense (N, N) matrix, keeping only non-zero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls._from_sorted_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        num_nodes: int,
    ) -> "SparseAdjacency":
        """Build from coordinate triples; duplicate coordinates are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have the same length")
        n = int(num_nodes)
        if rows.size and (
            rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n
        ):
            raise ValueError("coordinates out of range")
        keys = rows * n + cols
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.bincount(inverse, weights=values, minlength=unique_keys.shape[0])
        return cls._from_sorted_coo(
            unique_keys // n, unique_keys % n, summed, (n, n)
        )

    @classmethod
    def from_edges(
        cls,
        edges: np.ndarray,
        num_nodes: int,
        weights: Optional[np.ndarray] = None,
        undirected: bool = True,
    ) -> "SparseAdjacency":
        """Build from an (E, 2) edge list.

        With ``undirected=True`` (default) each listed edge ``(i, j)`` also
        inserts ``(j, i)``; self loops are inserted once.  Duplicate edges
        are summed (see :meth:`from_coo`).
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (E, 2), got shape {edges.shape}")
        rows, cols = edges[:, 0], edges[:, 1]
        if weights is None:
            values = np.ones(rows.shape[0], dtype=np.float64)
        else:
            values = np.asarray(weights, dtype=np.float64)
            if values.shape != rows.shape:
                raise ValueError("weights must align with edges")
        if undirected:
            off_diagonal = rows != cols
            reverse_rows, reverse_cols = cols[off_diagonal], rows[off_diagonal]
            rows = np.concatenate([rows, reverse_rows])
            cols = np.concatenate([cols, reverse_cols])
            values = np.concatenate([values, values[off_diagonal]])
        return cls.from_coo(rows, cols, values, num_nodes)

    @classmethod
    def _from_sorted_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "SparseAdjacency":
        """Internal: build from coordinates already sorted by (row, col)."""
        counts = np.bincount(rows, minlength=shape[0])
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(values, cols, indptr, shape)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """nnz / N² (0.0 for the empty graph)."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def __repr__(self) -> str:
        return f"SparseAdjacency(shape={self.shape}, nnz={self.nnz})"

    def coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` coordinate views of the matrix."""
        return self.row_indices(), self.indices, self.data

    def row_indices(self) -> np.ndarray:
        """Expanded (nnz,) row index of every stored entry (cached)."""
        if self._row_indices is None:
            self._row_indices = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_indices

    def to_dense(self) -> np.ndarray:
        """Materialise the dense (N, N) matrix."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.row_indices(), self.indices] = self.data
        return dense

    def copy(self) -> "SparseAdjacency":
        return SparseAdjacency(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Row sums (cached) — the degree vector for symmetric adjacencies."""
        if self._out_degrees is None:
            self._out_degrees = np.bincount(
                self.row_indices(), weights=self.data, minlength=self.shape[0]
            )
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """Column sums (cached)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.indices, weights=self.data, minlength=self.shape[1]
            )
        return self._in_degrees

    # ------------------------------------------------------------------
    # structural edits (each returns a new instance)
    # ------------------------------------------------------------------
    def add_self_loops(self, value: float = 1.0) -> "SparseAdjacency":
        """Return ``A + value·I`` (existing diagonal entries are summed)."""
        n = self.shape[0]
        diag = np.arange(n, dtype=np.int64)
        rows = np.concatenate([self.row_indices(), diag])
        cols = np.concatenate([self.indices, diag])
        values = np.concatenate([self.data, np.full(n, float(value))])
        return SparseAdjacency.from_coo(rows, cols, values, n)

    def scale(self, row_factors: np.ndarray, col_factors: np.ndarray) -> "SparseAdjacency":
        """Return ``diag(row_factors) @ A @ diag(col_factors)``."""
        row_factors = np.asarray(row_factors, dtype=np.float64)
        col_factors = np.asarray(col_factors, dtype=np.float64)
        data = self.data * row_factors[self.row_indices()] * col_factors[self.indices]
        return SparseAdjacency(data, self.indices.copy(), self.indptr.copy(), self.shape)

    def normalize(self, self_loops: bool = True) -> "SparseAdjacency":
        """Symmetric normalisation ``D^{-1/2} A D^{-1/2}``.

        Mirrors :func:`repro.graph.laplacian.normalize_adjacency` exactly:
        self loops are added first when requested and isolated nodes keep a
        zero row/column instead of producing NaNs.
        """
        matrix = self.add_self_loops() if self_loops else self
        degrees = matrix.out_degrees()
        inv_sqrt = np.zeros_like(degrees)
        nonzero = degrees > 0
        inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
        return matrix.scale(inv_sqrt, inv_sqrt)

    def transpose(self) -> "SparseAdjacency":
        """CSR transpose (cached both ways)."""
        if self._transpose is None:
            order = np.argsort(self.indices, kind="stable")
            t_rows = self.indices[order]
            t_cols = self.row_indices()[order]
            t_data = self.data[order]
            counts = np.bincount(t_rows, minlength=self.shape[1])
            indptr = np.concatenate([[0], np.cumsum(counts)])
            transposed = SparseAdjacency(
                t_data, t_cols, indptr, (self.shape[1], self.shape[0])
            )
            transposed._transpose = self
            self._transpose = transposed
        return self._transpose

    @property
    def T(self) -> "SparseAdjacency":
        return self.transpose()

    # ------------------------------------------------------------------
    # products
    # ------------------------------------------------------------------
    def matmul(self, dense: np.ndarray) -> np.ndarray:
        """``A @ X`` for a dense (N, d) matrix or (N,) vector in O(nnz · d).

        Each output column is a weighted scatter-add over the stored entries,
        computed with ``np.bincount`` — column-wise keeps every intermediate
        1-D and contiguous, which benchmarks ~3× faster than reducing a
        (nnz, d) product matrix with ``np.add.reduceat``.
        """
        dense = np.asarray(dense, dtype=np.float64)
        is_vector = dense.ndim == 1
        if is_vector:
            dense = dense[:, None]
        if dense.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {dense.shape}"
            )
        n, d = self.shape[0], dense.shape[1]
        if not self.nnz:
            out = np.zeros((n, d))
            return out[:, 0] if is_vector else out
        rows = self.row_indices()
        out_t = np.empty((d, n))
        for column in range(d):
            out_t[column] = np.bincount(
                rows,
                weights=self.data * dense[:, column][self.indices],
                minlength=n,
            )
        out = np.ascontiguousarray(out_t.T)
        return out[:, 0] if is_vector else out

    def __matmul__(self, other) -> np.ndarray:
        return self.matmul(other)

    def quadratic_form_cross_term(self, embeddings: np.ndarray) -> float:
        """``Σ_ij a_ij (z_i · z_j)`` computed edge-wise, never forming Z Zᵀ."""
        if not self.nnz:
            return 0.0
        z = np.asarray(embeddings, dtype=np.float64)
        rows = self.row_indices()
        total = 0.0
        # Chunk the (nnz, d) gather so huge graphs stay memory-bounded.
        chunk = max(1, 1 << 18)
        for start in range(0, self.nnz, chunk):
            stop = min(start + chunk, self.nnz)
            dots = np.einsum(
                "ij,ij->i", z[rows[start:stop]], z[self.indices[start:stop]]
            )
            total += float(self.data[start:stop] @ dots)
        return total


def as_sparse_adjacency(
    adjacency: Union[np.ndarray, SparseAdjacency]
) -> SparseAdjacency:
    """Coerce to :class:`SparseAdjacency` (no copy if already sparse)."""
    if isinstance(adjacency, SparseAdjacency):
        return adjacency
    return SparseAdjacency.from_dense(adjacency)


def propagation_matrix(
    adjacency: Union[np.ndarray, SparseAdjacency],
    self_loops: bool = True,
    node_threshold: Optional[int] = None,
    density_threshold: Optional[float] = None,
) -> Union[np.ndarray, SparseAdjacency]:
    """Normalised GCN propagation matrix with automatic backend choice.

    Sparse input stays sparse.  Dense input is promoted to
    :class:`SparseAdjacency` when the graph is large (≥ ``node_threshold``
    nodes) and sparse (density ≤ ``density_threshold``); otherwise the dense
    :func:`~repro.graph.laplacian.normalize_adjacency` result is returned, so
    small graphs keep the exact BLAS code path (and bit-identical results).

    The thresholds default to the module-level ``SPARSE_NODE_THRESHOLD`` and
    ``SPARSE_DENSITY_THRESHOLD``, read at call time so they can be
    reconfigured globally (e.g. forced dense for an A/B comparison).
    """
    from repro.graph.laplacian import normalize_adjacency

    if node_threshold is None:
        node_threshold = SPARSE_NODE_THRESHOLD
    if density_threshold is None:
        density_threshold = SPARSE_DENSITY_THRESHOLD
    if isinstance(adjacency, SparseAdjacency):
        return adjacency.normalize(self_loops=self_loops)
    dense = np.asarray(adjacency, dtype=np.float64)
    n = dense.shape[0]
    density = float(np.count_nonzero(dense)) / (n * n) if n else 0.0
    if n >= node_threshold and density <= density_threshold:
        return SparseAdjacency.from_dense(dense).normalize(self_loops=self_loops)
    return normalize_adjacency(dense, self_loops=self_loops)
