"""CSR sparse adjacency backend for the propagation hot path.

Every GCN propagation, adjacency normalisation and Laplacian quadratic form
in this code base was originally computed over dense ``(N, N)`` matrices,
which costs O(N² d) time and O(N²) memory per step.  Real attributed graphs
are extremely sparse (|E| ≪ N²), so this module provides a compressed
sparse row (CSR) representation — :class:`SparseAdjacency` — together with
the handful of operations the hot path needs:

* construction from a dense matrix, a COO triple or an undirected edge list,
* symmetric normalisation ``D^{-1/2} (A + I) D^{-1/2}`` with the same
  isolated-node handling as the dense :func:`repro.graph.laplacian.normalize_adjacency`,
* sparse @ dense multiplication (``spmm``) in O(|E| d),
* cached degrees and a cached transpose (for the autograd backward pass).

The class is deliberately numpy-only: the library has no scipy dependency
and the CI image installs numpy + pytest alone.  Everything downstream
dispatches on the adjacency type, so dense arrays keep working unchanged;
:func:`propagation_matrix` is the single place that decides which backend a
model uses.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Tuple, Union

import numpy as np

from repro import env as repro_env

__all__ = [
    "SparseAdjacency",
    "as_sparse_adjacency",
    "adjacency_backend",
    "propagation_matrix",
    "resolved_sparse_thresholds",
    "sparse_threshold_overrides",
    "SPARSE_NODE_THRESHOLD",
    "SPARSE_DENSITY_THRESHOLD",
]

#: below this many nodes the dense BLAS path is at least as fast as CSR, and
#: keeping the tiny seed graphs dense preserves bit-identical seed behaviour.
SPARSE_NODE_THRESHOLD = 256

#: above this edge density CSR stops paying for itself.
SPARSE_DENSITY_THRESHOLD = 0.25

#: environment variables overriding the two constants above (read per call,
#: so a worker process can be reconfigured without touching code).  Declared
#: in :mod:`repro.env`; re-exported here for backwards compatibility.
SPARSE_NODE_THRESHOLD_ENV = repro_env.SPARSE_NODE_THRESHOLD_ENV
SPARSE_DENSITY_THRESHOLD_ENV = repro_env.SPARSE_DENSITY_THRESHOLD_ENV

# Process-wide programmatic overrides, set via sparse_threshold_overrides().
# Resolution order: explicit argument > override > environment > constant.
_node_threshold_override: Optional[int] = None
_density_threshold_override: Optional[float] = None


def resolved_sparse_thresholds() -> Tuple[int, float]:
    """The effective (node, density) auto-promotion thresholds.

    Each threshold resolves, in order, from the programmatic override
    (:func:`sparse_threshold_overrides`), the ``REPRO_SPARSE_NODE_THRESHOLD``
    / ``REPRO_SPARSE_DENSITY_THRESHOLD`` environment variables, and finally
    the module constants.
    """
    node = _node_threshold_override
    if node is None:
        node = repro_env.env_int(SPARSE_NODE_THRESHOLD_ENV, SPARSE_NODE_THRESHOLD)  # repro: noqa[REP104] documented dynamic threshold; workers inherit the parent env
    density = _density_threshold_override
    if density is None:
        density = repro_env.env_float(  # repro: noqa[REP104] documented dynamic threshold; workers inherit the parent env
            SPARSE_DENSITY_THRESHOLD_ENV, SPARSE_DENSITY_THRESHOLD
        )
    return int(node), float(density)


@contextmanager
def sparse_threshold_overrides(
    node_threshold: Optional[int] = None,
    density_threshold: Optional[float] = None,
):
    """Temporarily override the auto-promotion thresholds process-wide.

    ``None`` leaves the corresponding threshold untouched, so the context is
    a no-op unless at least one value is given.  Used by the trainers to
    apply :class:`~repro.core.rethink.RethinkConfig` threshold settings to
    every ``propagation_matrix`` call made during a fit (including the ones
    inside ``model.embed`` / ``model.pretrain``).
    """
    global _node_threshold_override, _density_threshold_override
    previous = (_node_threshold_override, _density_threshold_override)
    if node_threshold is not None:
        _node_threshold_override = int(node_threshold)  # repro: noqa[REP102] test-only override, per process, restored in finally
    if density_threshold is not None:
        _density_threshold_override = float(density_threshold)  # repro: noqa[REP102] test-only override, per process, restored in finally
    try:
        yield
    finally:
        _node_threshold_override, _density_threshold_override = previous


class SparseAdjacency:
    """A CSR-format sparse square matrix specialised for graph adjacencies.

    Attributes
    ----------
    data:
        (nnz,) float64 non-zero values, row-major.
    indices:
        (nnz,) int64 column index of each value.
    indptr:
        (N + 1,) int64 row pointer: row ``i`` owns ``data[indptr[i]:indptr[i+1]]``.
    shape:
        ``(N, N)``.

    Instances are immutable by convention: every edit operation returns a new
    object so cached degrees/transposes can never go stale.
    """

    __slots__ = (
        "data",
        "indices",
        "indptr",
        "shape",
        "_out_degrees",
        "_in_degrees",
        "_transpose",
        "_row_indices",
    )

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.shape[0] != self.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {self.shape}")
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError(
                f"indptr must have N + 1 = {self.shape[0] + 1} entries, "
                f"got {self.indptr.shape[0]}"
            )
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have the same length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column indices out of range")
        self._out_degrees: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None
        self._transpose: Optional["SparseAdjacency"] = None
        self._row_indices: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseAdjacency":
        """Build from a dense (N, N) matrix, keeping only non-zero entries."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls._from_sorted_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        num_nodes: int,
    ) -> "SparseAdjacency":
        """Build from coordinate triples; duplicate coordinates are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have the same length")
        n = int(num_nodes)
        if rows.size and (
            rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n
        ):
            raise ValueError("coordinates out of range")
        keys = rows * n + cols
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.bincount(inverse, weights=values, minlength=unique_keys.shape[0])
        return cls._from_sorted_coo(
            unique_keys // n, unique_keys % n, summed, (n, n)
        )

    @classmethod
    def from_edges(
        cls,
        edges: np.ndarray,
        num_nodes: int,
        weights: Optional[np.ndarray] = None,
        undirected: bool = True,
    ) -> "SparseAdjacency":
        """Build from an (E, 2) edge list.

        With ``undirected=True`` (default) each listed edge ``(i, j)`` also
        inserts ``(j, i)``; self loops are inserted once.  Duplicate edges
        are summed (see :meth:`from_coo`).
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (E, 2), got shape {edges.shape}")
        rows, cols = edges[:, 0], edges[:, 1]
        if weights is None:
            values = np.ones(rows.shape[0], dtype=np.float64)
        else:
            values = np.asarray(weights, dtype=np.float64)
            if values.shape != rows.shape:
                raise ValueError("weights must align with edges")
        if undirected:
            off_diagonal = rows != cols
            reverse_rows, reverse_cols = cols[off_diagonal], rows[off_diagonal]
            rows = np.concatenate([rows, reverse_rows])
            cols = np.concatenate([cols, reverse_cols])
            values = np.concatenate([values, values[off_diagonal]])
        return cls.from_coo(rows, cols, values, num_nodes)

    @classmethod
    def _from_sorted_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "SparseAdjacency":
        """Internal: build from coordinates already sorted by (row, col)."""
        counts = np.bincount(rows, minlength=shape[0])
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(values, cols, indptr, shape)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """nnz / N² (0.0 for the empty graph)."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def __repr__(self) -> str:
        return f"SparseAdjacency(shape={self.shape}, nnz={self.nnz})"

    def coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` coordinate views of the matrix."""
        return self.row_indices(), self.indices, self.data

    def row_indices(self) -> np.ndarray:
        """Expanded (nnz,) row index of every stored entry (cached)."""
        if self._row_indices is None:
            self._row_indices = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
        return self._row_indices

    def to_dense(self) -> np.ndarray:
        """Materialise the dense (N, N) matrix."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.row_indices(), self.indices] = self.data
        return dense

    def copy(self) -> "SparseAdjacency":
        return SparseAdjacency(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Row sums (cached) — the degree vector for symmetric adjacencies."""
        if self._out_degrees is None:
            self._out_degrees = np.bincount(
                self.row_indices(), weights=self.data, minlength=self.shape[0]
            )
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """Column sums (cached)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.indices, weights=self.data, minlength=self.shape[1]
            )
        return self._in_degrees

    # ------------------------------------------------------------------
    # structural edits (each returns a new instance)
    # ------------------------------------------------------------------
    def add_self_loops(self, value: float = 1.0) -> "SparseAdjacency":
        """Return ``A + value·I`` (existing diagonal entries are summed)."""
        n = self.shape[0]
        diag = np.arange(n, dtype=np.int64)
        rows = np.concatenate([self.row_indices(), diag])
        cols = np.concatenate([self.indices, diag])
        values = np.concatenate([self.data, np.full(n, float(value))])
        return SparseAdjacency.from_coo(rows, cols, values, n)

    def scale(self, row_factors: np.ndarray, col_factors: np.ndarray) -> "SparseAdjacency":
        """Return ``diag(row_factors) @ A @ diag(col_factors)``."""
        row_factors = np.asarray(row_factors, dtype=np.float64)
        col_factors = np.asarray(col_factors, dtype=np.float64)
        data = self.data * row_factors[self.row_indices()] * col_factors[self.indices]
        return SparseAdjacency(data, self.indices.copy(), self.indptr.copy(), self.shape)

    def normalize(self, self_loops: bool = True) -> "SparseAdjacency":
        """Symmetric normalisation ``D^{-1/2} A D^{-1/2}``.

        Mirrors :func:`repro.graph.laplacian.normalize_adjacency` exactly:
        self loops are added first when requested and isolated nodes keep a
        zero row/column instead of producing NaNs.
        """
        matrix = self.add_self_loops() if self_loops else self
        degrees = matrix.out_degrees()
        inv_sqrt = np.zeros_like(degrees)
        nonzero = degrees > 0
        inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
        return matrix.scale(inv_sqrt, inv_sqrt)

    def transpose(self) -> "SparseAdjacency":
        """CSR transpose (cached both ways)."""
        if self._transpose is None:
            order = np.argsort(self.indices, kind="stable")
            t_rows = self.indices[order]
            t_cols = self.row_indices()[order]
            t_data = self.data[order]
            counts = np.bincount(t_rows, minlength=self.shape[1])
            indptr = np.concatenate([[0], np.cumsum(counts)])
            transposed = SparseAdjacency(
                t_data, t_cols, indptr, (self.shape[1], self.shape[0])
            )
            transposed._transpose = self
            self._transpose = transposed
        return self._transpose

    @property
    def T(self) -> "SparseAdjacency":
        return self.transpose()

    # ------------------------------------------------------------------
    # products
    # ------------------------------------------------------------------
    def matmul(self, dense: np.ndarray) -> np.ndarray:
        """``A @ X`` for a dense (N, d) matrix or (N,) vector in O(nnz · d).

        Each output column is a weighted scatter-add over the stored entries,
        computed with ``np.bincount`` — column-wise keeps every intermediate
        1-D and contiguous, which benchmarks ~3× faster than reducing a
        (nnz, d) product matrix with ``np.add.reduceat``.
        """
        dense = np.asarray(dense, dtype=np.float64)
        is_vector = dense.ndim == 1
        if is_vector:
            dense = dense[:, None]
        if dense.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {dense.shape}"
            )
        n, d = self.shape[0], dense.shape[1]
        if not self.nnz:
            out = np.zeros((n, d))
            return out[:, 0] if is_vector else out
        rows = self.row_indices()
        out_t = np.empty((d, n))
        for column in range(d):
            out_t[column] = np.bincount(
                rows,
                weights=self.data * dense[:, column][self.indices],
                minlength=n,
            )
        out = np.ascontiguousarray(out_t.T)
        return out[:, 0] if is_vector else out

    def __matmul__(self, other) -> np.ndarray:
        return self.matmul(other)

    # ------------------------------------------------------------------
    # subgraph extraction and neighbour sampling (minibatch substrate)
    # ------------------------------------------------------------------
    def _gather_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Positions, per-row counts and local row ids of the entries stored
        in the given rows, gathered without any python-level loop."""
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, counts, empty
        # offset of each gathered entry inside its own row slice
        ends = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        positions = np.repeat(starts, counts) + offsets
        local_rows = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
        return positions, counts, local_rows

    def induced_subgraph(self, nodes: np.ndarray) -> "SparseAdjacency":
        """The subgraph induced by ``nodes``, renumbered to ``0..len(nodes)-1``.

        Row/column ``i`` of the result corresponds to ``nodes[i]`` (the given
        order defines the renumbering, so callers control the block layout).
        Every stored entry whose endpoints both lie in ``nodes`` is kept with
        its value; everything else is dropped.  Cost is O(deg(nodes) + B log B).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 1:
            raise ValueError(f"nodes must be a 1-D index array, got shape {nodes.shape}")
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.shape[0]):
            raise ValueError("node indices out of range")
        if np.unique(nodes).shape[0] != nodes.shape[0]:
            raise ValueError("nodes must not contain duplicates")
        local = np.full(self.shape[0], -1, dtype=np.int64)
        local[nodes] = np.arange(nodes.shape[0], dtype=np.int64)
        positions, _, local_rows = self._gather_rows(nodes)
        cols = self.indices[positions]
        keep = local[cols] >= 0
        return SparseAdjacency.from_coo(
            local_rows[keep], local[cols[keep]], self.data[positions[keep]], nodes.shape[0]
        )

    def sample_neighbors(
        self,
        seeds: np.ndarray,
        fanout: int,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample up to ``fanout`` neighbours of each seed without replacement.

        Returns ``(sources, targets)`` — global node ids of the sampled
        edges, grouped by seed.  Seeds with degree ≤ ``fanout`` keep all
        their neighbours.  Sampling is fully vectorised (a random key per
        candidate edge, ranked within each seed's slice) and deterministic
        for a given ``rng`` state, which is what makes minibatch sequences
        reproducible across processes.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if seeds.size and (seeds.min() < 0 or seeds.max() >= self.shape[0]):
            raise ValueError("seed indices out of range")
        positions, counts, local_rows = self._gather_rows(seeds)
        if positions.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        keys = rng.random(positions.shape[0])
        # Stable group-by-seed sort with random order inside each group.
        order = np.lexsort((keys, local_rows))
        ends = np.cumsum(counts)
        rank_in_group = np.arange(positions.shape[0], dtype=np.int64) - np.repeat(
            ends - counts, counts
        )
        chosen = order[rank_in_group < fanout]
        return seeds[local_rows[chosen]], self.indices[positions[chosen]]

    def quadratic_form_cross_term(self, embeddings: np.ndarray) -> float:
        """``Σ_ij a_ij (z_i · z_j)`` computed edge-wise, never forming Z Zᵀ."""
        if not self.nnz:
            return 0.0
        z = np.asarray(embeddings, dtype=np.float64)
        rows = self.row_indices()
        total = 0.0
        # Chunk the (nnz, d) gather so huge graphs stay memory-bounded.
        chunk = max(1, 1 << 18)
        for start in range(0, self.nnz, chunk):
            stop = min(start + chunk, self.nnz)
            dots = np.einsum(
                "ij,ij->i", z[rows[start:stop]], z[self.indices[start:stop]]
            )
            total += float(self.data[start:stop] @ dots)
        return total


def as_sparse_adjacency(
    adjacency: Union[np.ndarray, SparseAdjacency]
) -> SparseAdjacency:
    """Coerce to :class:`SparseAdjacency` (no copy if already sparse)."""
    if isinstance(adjacency, SparseAdjacency):
        return adjacency
    return SparseAdjacency.from_dense(adjacency)


def _should_promote(
    dense: np.ndarray,
    node_threshold: Optional[int],
    density_threshold: Optional[float],
) -> bool:
    """Whether a dense adjacency crosses the CSR auto-promotion thresholds."""
    resolved_node, resolved_density = resolved_sparse_thresholds()
    if node_threshold is None:
        node_threshold = resolved_node
    if density_threshold is None:
        density_threshold = resolved_density
    n = dense.shape[0]
    if n == 0:
        return False
    density = float(np.count_nonzero(dense)) / (n * n)
    return n >= node_threshold and density <= density_threshold


def adjacency_backend(
    adjacency: Union[np.ndarray, SparseAdjacency],
    node_threshold: Optional[int] = None,
    density_threshold: Optional[float] = None,
) -> Union[np.ndarray, SparseAdjacency]:
    """The *unnormalised* adjacency in the backend the thresholds pick.

    Sparse input stays sparse; dense input is converted to CSR exactly when
    :func:`propagation_matrix` would promote it (same thresholds, same
    resolution order), and returned unchanged otherwise.  This is how the
    minibatch trainer chooses the representation of the self-supervision
    graph it slices per batch.
    """
    if isinstance(adjacency, SparseAdjacency):
        return adjacency
    dense = np.asarray(adjacency, dtype=np.float64)
    if _should_promote(dense, node_threshold, density_threshold):
        return SparseAdjacency.from_dense(dense)
    return dense


def propagation_matrix(
    adjacency: Union[np.ndarray, SparseAdjacency],
    self_loops: bool = True,
    node_threshold: Optional[int] = None,
    density_threshold: Optional[float] = None,
) -> Union[np.ndarray, SparseAdjacency]:
    """Normalised GCN propagation matrix with automatic backend choice.

    Sparse input stays sparse.  Dense input is promoted to
    :class:`SparseAdjacency` when the graph is large (≥ ``node_threshold``
    nodes) and sparse (density ≤ ``density_threshold``); otherwise the dense
    :func:`~repro.graph.laplacian.normalize_adjacency` result is returned, so
    small graphs keep the exact BLAS code path (and bit-identical results).

    The thresholds resolve at call time through
    :func:`resolved_sparse_thresholds` — explicit arguments beat the
    :func:`sparse_threshold_overrides` context (set e.g. from
    ``RethinkConfig``), which beats the ``REPRO_SPARSE_*`` environment
    variables, which beat the module constants.
    """
    from repro.graph.laplacian import normalize_adjacency

    if isinstance(adjacency, SparseAdjacency):
        return adjacency.normalize(self_loops=self_loops)
    dense = np.asarray(adjacency, dtype=np.float64)
    if _should_promote(dense, node_threshold, density_threshold):
        return SparseAdjacency.from_dense(dense).normalize(self_loops=self_loops)
    return normalize_adjacency(dense, self_loops=self_loops)
