"""The :class:`AttributedGraph` container used across the library.

The paper works with a non-directed attributed graph ``G = (V, E, X)`` with
adjacency matrix ``A`` (binary, symmetric, zero diagonal), node feature
matrix ``X`` and, for evaluation only, ground-truth cluster labels ``y``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class AttributedGraph:
    """An undirected attributed graph with optional ground-truth labels.

    Attributes
    ----------
    adjacency:
        (N, N) binary symmetric matrix with zero diagonal.
    features:
        (N, J) node feature matrix.
    labels:
        Optional (N,) integer array of ground-truth cluster labels, used only
        to *evaluate* clustering (never during training).
    name:
        Human readable identifier (e.g. ``"cora_sim"``).
    metadata:
        Free-form dictionary (generator parameters, number of clusters, ...).
    """

    adjacency: np.ndarray
    features: np.ndarray
    labels: Optional[np.ndarray] = None
    name: str = "graph"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = np.asarray(self.adjacency, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.int64)
        self.validate()

    # ------------------------------------------------------------------
    # shape helpers
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(np.triu(self.adjacency, k=1).sum())

    @property
    def num_clusters(self) -> int:
        """Number of ground-truth clusters.

        Falls back to ``metadata['num_clusters']`` when labels are absent.
        """
        if self.labels is not None:
            return int(len(np.unique(self.labels)))
        if "num_clusters" in self.metadata:
            return int(self.metadata["num_clusters"])
        raise ValueError("graph has neither labels nor metadata['num_clusters']")

    # ------------------------------------------------------------------
    # validation and edits
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        a = self.adjacency
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {a.shape}")
        if self.features.ndim != 2 or self.features.shape[0] != a.shape[0]:
            raise ValueError(
                "features must be (N, J) with N matching the adjacency "
                f"(got {self.features.shape} vs N={a.shape[0]})"
            )
        if not np.allclose(a, a.T):
            raise ValueError("adjacency must be symmetric (undirected graph)")
        if np.any(np.diag(a) != 0):
            raise ValueError("adjacency must have a zero diagonal (no self loops)")
        if np.any((a != 0) & (a != 1)):
            raise ValueError("adjacency must be binary")
        if self.labels is not None and self.labels.shape[0] != a.shape[0]:
            raise ValueError("labels length must match the number of nodes")

    def copy(self) -> "AttributedGraph":
        """Deep copy of the graph."""
        return AttributedGraph(
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=None if self.labels is None else self.labels.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_adjacency(self, adjacency: np.ndarray) -> "AttributedGraph":
        """Return a copy of the graph with a replacement adjacency matrix."""
        return AttributedGraph(
            adjacency=np.asarray(adjacency, dtype=np.float64).copy(),
            features=self.features.copy(),
            labels=None if self.labels is None else self.labels.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def with_features(self, features: np.ndarray) -> "AttributedGraph":
        """Return a copy of the graph with a replacement feature matrix."""
        return AttributedGraph(
            adjacency=self.adjacency.copy(),
            features=np.asarray(features, dtype=np.float64).copy(),
            labels=None if self.labels is None else self.labels.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def neighbors(self, node: int) -> np.ndarray:
        """Indices of nodes adjacent to ``node``."""
        return np.flatnonzero(self.adjacency[node])

    def edge_list(self) -> np.ndarray:
        """(E, 2) array of undirected edges with i < j."""
        rows, cols = np.nonzero(np.triu(self.adjacency, k=1))
        return np.stack([rows, cols], axis=1)

    def row_normalized_features(self) -> np.ndarray:
        """Features row-normalised by their Euclidean norm (paper Section 5.1)."""
        norms = np.linalg.norm(self.features, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return self.features / norms
