"""Adjacency normalisation and graph Laplacian utilities.

The GCN layers use the symmetric normalisation
``A_norm = D^{-1/2} (A + I) D^{-1/2}`` of Kipf & Welling; the theoretical
analysis additionally needs the normalised adjacency *without* self loops
(``~A_self`` in the paper) and the Laplacian quadratic form
``L_C(Z, A') = 1/2 sum_ij a'_ij ||z_i - z_j||^2``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def degree_vector(adjacency: np.ndarray) -> np.ndarray:
    """Row-sum degree vector of an adjacency matrix."""
    return np.asarray(adjacency, dtype=np.float64).sum(axis=1)


def degree_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Diagonal degree matrix."""
    return np.diag(degree_vector(adjacency))


def add_self_loops(adjacency: np.ndarray) -> np.ndarray:
    """Return ``A + I`` (without modifying the input)."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    return adjacency + np.eye(adjacency.shape[0])


def normalize_adjacency(adjacency: np.ndarray, self_loops: bool = True) -> np.ndarray:
    """Symmetrically normalised adjacency ``D^{-1/2} A D^{-1/2}``.

    Parameters
    ----------
    adjacency:
        Binary (or weighted) symmetric adjacency matrix.
    self_loops:
        If True (default), self loops are added before normalisation, giving
        the GCN propagation matrix.  If False the paper's ``~A_self`` matrix
        is returned (used by the FD analysis).
    Isolated nodes (zero degree) receive a zero row/column instead of NaNs.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if self_loops:
        adjacency = add_self_loops(adjacency)
    degrees = adjacency.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


def graph_laplacian(adjacency: np.ndarray, normalized: bool = False) -> np.ndarray:
    """Combinatorial (``D - A``) or symmetric normalised Laplacian."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if not normalized:
        return degree_matrix(adjacency) - adjacency
    norm = normalize_adjacency(adjacency, self_loops=False)
    return np.eye(adjacency.shape[0]) - norm


def laplacian_quadratic_form(embeddings: np.ndarray, adjacency: np.ndarray) -> float:
    """The paper's graph-weighted loss ``L_C(Z, A') = 1/2 Σ a'_ij ||z_i - z_j||²``.

    Computed via the Laplacian identity ``tr(Z^T L Z)`` for efficiency; works
    for arbitrary non-negative weight matrices ``A'`` (clustering graph,
    supervision graph, normalised self-supervision graph, or any linear
    combination of them).
    """
    z = np.asarray(embeddings, dtype=np.float64)
    a = np.asarray(adjacency, dtype=np.float64)
    # 1/2 Σ_ij a_ij (||z_i||² + ||z_j||² - 2 z_i·z_j), valid for arbitrary
    # (possibly asymmetric) non-negative weight matrices.
    sq_norms = np.sum(z ** 2, axis=1)
    row_deg = a.sum(axis=1)
    col_deg = a.sum(axis=0)
    cross = float(np.sum(a * (z @ z.T)))
    return float(0.5 * (row_deg @ sq_norms + col_deg @ sq_norms) - cross)
