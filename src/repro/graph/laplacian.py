"""Adjacency normalisation and graph Laplacian utilities.

The GCN layers use the symmetric normalisation
``A_norm = D^{-1/2} (A + I) D^{-1/2}`` of Kipf & Welling; the theoretical
analysis additionally needs the normalised adjacency *without* self loops
(``~A_self`` in the paper) and the Laplacian quadratic form
``L_C(Z, A') = 1/2 sum_ij a'_ij ||z_i - z_j||^2``.

Every public function accepts either a dense ``(N, N)`` array or a
:class:`~repro.graph.sparse.SparseAdjacency` and dispatches on the type, so
callers never need to materialise dense matrices to use the hot path.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.graph.sparse import SparseAdjacency

AdjacencyLike = Union[np.ndarray, SparseAdjacency]


def degree_vector(adjacency: AdjacencyLike) -> np.ndarray:
    """Row-sum degree vector of an adjacency matrix."""
    if isinstance(adjacency, SparseAdjacency):
        return adjacency.out_degrees().copy()
    return np.asarray(adjacency, dtype=np.float64).sum(axis=1)


def degree_matrix(adjacency: AdjacencyLike) -> np.ndarray:
    """Diagonal degree matrix."""
    return np.diag(degree_vector(adjacency))


def add_self_loops(adjacency: AdjacencyLike) -> AdjacencyLike:
    """Return ``A + I`` (without modifying the input); preserves the backend."""
    if isinstance(adjacency, SparseAdjacency):
        return adjacency.add_self_loops()
    dense = np.asarray(adjacency, dtype=np.float64)
    return dense + np.eye(dense.shape[0])


def normalize_adjacency(adjacency: AdjacencyLike, self_loops: bool = True) -> AdjacencyLike:
    """Symmetrically normalised adjacency ``D^{-1/2} A D^{-1/2}``.

    Parameters
    ----------
    adjacency:
        Binary (or weighted) symmetric adjacency matrix — dense array or
        :class:`~repro.graph.sparse.SparseAdjacency` (the result matches the
        input backend).
    self_loops:
        If True (default), self loops are added before normalisation, giving
        the GCN propagation matrix.  If False the paper's ``~A_self`` matrix
        is returned (used by the FD analysis).
    Isolated nodes (zero degree) receive a zero row/column instead of NaNs.
    """
    if isinstance(adjacency, SparseAdjacency):
        return adjacency.normalize(self_loops=self_loops)
    dense = np.asarray(adjacency, dtype=np.float64)
    if self_loops:
        dense = dense + np.eye(dense.shape[0])
    degrees = dense.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    return dense * inv_sqrt[:, None] * inv_sqrt[None, :]


def graph_laplacian(adjacency: AdjacencyLike, normalized: bool = False) -> np.ndarray:
    """Combinatorial (``D - A``) or symmetric normalised Laplacian (dense)."""
    if isinstance(adjacency, SparseAdjacency):
        adjacency = adjacency.to_dense()
    dense = np.asarray(adjacency, dtype=np.float64)
    if not normalized:
        return degree_matrix(dense) - dense
    norm = np.asarray(normalize_adjacency(dense, self_loops=False))
    return np.eye(dense.shape[0]) - norm


def laplacian_quadratic_form(embeddings: np.ndarray, adjacency: AdjacencyLike) -> float:
    """The paper's graph-weighted loss ``L_C(Z, A') = 1/2 Σ a'_ij ||z_i - z_j||²``.

    Sparse inputs (and sparse-enough dense matrices) are computed *edge-wise*
    in O(|E| d): the cross term ``Σ a_ij z_i·z_j`` is accumulated over the
    non-zero entries only, so the dense ``Z Zᵀ`` Gram matrix is never built.
    Dense weight matrices above ``SPARSE_DENSITY_THRESHOLD`` (e.g. the
    membership graphs of Proposition 2, nnz ≈ N²/K) keep the Gram-identity
    path, which is faster and lighter when most entries are non-zero.

    Works for arbitrary (possibly asymmetric) non-negative weight matrices
    ``A'`` — the clustering graph, supervision graph, normalised
    self-supervision graph, or any linear combination of them.
    """
    from repro.graph.sparse import SPARSE_DENSITY_THRESHOLD

    z = np.asarray(embeddings, dtype=np.float64)
    # 1/2 Σ_ij a_ij (||z_i||² + ||z_j||² - 2 z_i·z_j)
    sq_norms = np.sum(z ** 2, axis=1)
    if not isinstance(adjacency, SparseAdjacency):
        a = np.asarray(adjacency, dtype=np.float64)
        n = a.shape[0]
        density = float(np.count_nonzero(a)) / (n * n) if n else 0.0
        if density > SPARSE_DENSITY_THRESHOLD:
            return laplacian_quadratic_form_dense(z, a)
        adjacency = SparseAdjacency.from_dense(a)
    row_deg = adjacency.out_degrees()
    col_deg = adjacency.in_degrees()
    cross = adjacency.quadratic_form_cross_term(z)
    return float(0.5 * (row_deg @ sq_norms + col_deg @ sq_norms) - cross)


def laplacian_quadratic_form_dense(embeddings: np.ndarray, adjacency: AdjacencyLike) -> float:
    """Reference O(N² d) implementation via the dense Gram matrix ``Z Zᵀ``.

    Kept for the equivalence tests and the dense baseline of
    ``benchmarks/bench_sparse.py``; production code should call
    :func:`laplacian_quadratic_form`.
    """
    z = np.asarray(embeddings, dtype=np.float64)
    if isinstance(adjacency, SparseAdjacency):
        adjacency = adjacency.to_dense()
    a = np.asarray(adjacency, dtype=np.float64)
    sq_norms = np.sum(z ** 2, axis=1)
    row_deg = a.sum(axis=1)
    col_deg = a.sum(axis=0)
    cross = float(np.sum(a * (z @ z.T)))
    return float(0.5 * (row_deg @ sq_norms + col_deg @ sq_norms) - cross)
