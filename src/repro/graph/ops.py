"""Graph and feature perturbation operations.

Used by the robustness experiments (Figures 7-8 of the paper): adding noisy
edges, dropping existing edges, adding Gaussian feature noise and dropping
feature columns.  Also provides :func:`edge_difference` which the learning
dynamics experiments use to count added/deleted links of the operator-built
self-supervision graph (Figure 9).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graph.graph import AttributedGraph


def add_random_edges(
    graph: AttributedGraph, num_edges: int, rng: np.random.Generator
) -> AttributedGraph:
    """Connect ``num_edges`` uniformly random, currently unlinked node pairs."""
    adjacency = graph.adjacency.copy()
    n = adjacency.shape[0]
    candidates = np.argwhere(np.triu(adjacency == 0, k=1))
    if candidates.shape[0] < num_edges:
        raise ValueError("not enough unlinked pairs to add the requested edges")
    chosen = candidates[rng.choice(candidates.shape[0], size=num_edges, replace=False)]
    adjacency[chosen[:, 0], chosen[:, 1]] = 1.0
    adjacency[chosen[:, 1], chosen[:, 0]] = 1.0
    return graph.with_adjacency(adjacency)


def drop_random_edges(
    graph: AttributedGraph, num_edges: int, rng: np.random.Generator
) -> AttributedGraph:
    """Remove ``num_edges`` uniformly random existing edges."""
    adjacency = graph.adjacency.copy()
    existing = np.argwhere(np.triu(adjacency == 1, k=1))
    if existing.shape[0] < num_edges:
        raise ValueError("graph does not have enough edges to drop")
    chosen = existing[rng.choice(existing.shape[0], size=num_edges, replace=False)]
    adjacency[chosen[:, 0], chosen[:, 1]] = 0.0
    adjacency[chosen[:, 1], chosen[:, 0]] = 0.0
    return graph.with_adjacency(adjacency)


def add_feature_noise(
    graph: AttributedGraph, variance: float, rng: np.random.Generator
) -> AttributedGraph:
    """Add zero-mean Gaussian noise with the given variance to all features."""
    if variance < 0.0:
        raise ValueError("variance must be non-negative")
    if variance == 0.0:
        return graph.copy()
    noise = rng.normal(0.0, np.sqrt(variance), size=graph.features.shape)
    return graph.with_features(graph.features + noise)


def drop_random_features(
    graph: AttributedGraph, num_columns: int, rng: np.random.Generator
) -> AttributedGraph:
    """Zero out ``num_columns`` randomly chosen feature columns."""
    num_features = graph.features.shape[1]
    if num_columns > num_features:
        raise ValueError("cannot drop more columns than the graph has features")
    columns = rng.choice(num_features, size=num_columns, replace=False)
    features = graph.features.copy()
    features[:, columns] = 0.0
    return graph.with_features(features)


def edge_difference(
    original: np.ndarray, modified: np.ndarray, labels: np.ndarray
) -> Dict[str, int]:
    """Compare two adjacency matrices and classify added/deleted links.

    Returns the counts the paper plots in Figure 9 (d)-(f): total links of
    the modified graph, links added relative to ``original`` and links
    deleted, each split into *true* (same ground-truth label) and *false*
    (different labels) links.
    """
    original = np.triu(np.asarray(original) > 0, k=1)
    modified = np.triu(np.asarray(modified) > 0, k=1)
    labels = np.asarray(labels)
    same_label = labels[:, None] == labels[None, :]

    added = modified & ~original
    deleted = original & ~modified

    def _split(mask: np.ndarray) -> Tuple[int, int]:
        true_links = int(np.sum(mask & same_label))
        false_links = int(np.sum(mask & ~same_label))
        return true_links, false_links

    total_true, total_false = _split(modified)
    added_true, added_false = _split(added)
    deleted_true, deleted_false = _split(deleted)
    return {
        "total_links": int(modified.sum()),
        "total_true_links": total_true,
        "total_false_links": total_false,
        "added_links": int(added.sum()),
        "added_true_links": added_true,
        "added_false_links": added_false,
        "deleted_links": int(deleted.sum()),
        "deleted_true_links": deleted_true,
        "deleted_false_links": deleted_false,
    }
