"""Persistence of attributed graphs as compressed ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.graph import AttributedGraph

PathLike = Union[str, Path]


def save_graph_npz(graph: AttributedGraph, path: PathLike) -> None:
    """Serialise a graph (adjacency, features, labels, metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        "adjacency": graph.adjacency,
        "features": graph.features,
        "name": np.array(graph.name),
        "metadata_json": np.array(json.dumps(graph.metadata, default=str)),
    }
    if graph.labels is not None:
        arrays["labels"] = graph.labels
    np.savez_compressed(path, **arrays)


def load_graph_npz(path: PathLike) -> AttributedGraph:
    """Load a graph previously written by :func:`save_graph_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        labels = archive["labels"] if "labels" in archive.files else None
        metadata = json.loads(str(archive["metadata_json"]))
        return AttributedGraph(
            adjacency=archive["adjacency"],
            features=archive["features"],
            labels=labels,
            name=str(archive["name"]),
            metadata=metadata,
        )
