"""Descriptive statistics of attributed graphs.

These back the dataset documentation, sanity tests on the synthetic
generators, and the Figure 4 analysis of the operator-built
self-supervision graph (star-shaped sub-graph structure).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.graph import AttributedGraph


def edge_count(adjacency: np.ndarray) -> int:
    """Number of undirected edges."""
    return int(np.triu(np.asarray(adjacency) > 0, k=1).sum())


def density(adjacency: np.ndarray) -> float:
    """Fraction of possible undirected edges that are present."""
    adjacency = np.asarray(adjacency)
    n = int(adjacency.shape[0])
    possible = n * (n - 1) / 2
    if possible == 0:
        return 0.0
    return float(edge_count(adjacency) / possible)


def homophily(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of edges connecting nodes with the same label."""
    adjacency = np.asarray(adjacency)
    labels = np.asarray(labels)
    upper = np.triu(adjacency > 0, k=1)
    total = int(upper.sum())
    if total == 0:
        return 0.0
    same = labels[:, None] == labels[None, :]
    return float((upper & same).sum() / total)


def intra_cluster_edge_fraction(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """Alias of :func:`homophily` with the paper's terminology."""
    return homophily(adjacency, labels)


def connected_components(adjacency: np.ndarray) -> List[np.ndarray]:
    """Connected components as lists of node indices (BFS, no networkx needed)."""
    adjacency = np.asarray(adjacency) > 0
    n = int(adjacency.shape[0])
    unvisited = np.ones(n, dtype=bool)
    components: List[np.ndarray] = []
    for start in range(n):
        if not unvisited[start]:
            continue
        frontier = [start]
        unvisited[start] = False
        members = [start]
        while frontier:
            node = frontier.pop()
            neighbors = np.flatnonzero(adjacency[node] & unvisited)
            for neighbor in neighbors:
                unvisited[neighbor] = False
                members.append(int(neighbor))
                frontier.append(int(neighbor))
        components.append(np.array(sorted(members)))
    return components


def star_subgraph_count(adjacency: np.ndarray, min_leaves: int = 2) -> int:
    """Count star-shaped sub-structures (hub nodes with >= ``min_leaves`` leaf neighbours).

    Figure 4 of the paper shows that the operator Υ turns the
    self-supervision graph into K star-shaped sub-graphs; this statistic lets
    the benchmark verify that structure quantitatively.
    """
    adjacency = np.asarray(adjacency) > 0
    degrees = adjacency.sum(axis=1)
    stars = 0
    for hub in np.flatnonzero(degrees >= min_leaves):
        neighbors = np.flatnonzero(adjacency[hub])
        leaves = [n for n in neighbors if degrees[n] == 1]
        if len(leaves) >= min_leaves:
            stars += 1
    return int(stars)


def describe(graph: AttributedGraph) -> Dict[str, object]:
    """Summary dictionary used in dataset documentation and tests."""
    summary: Dict[str, object] = {
        "name": graph.name,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_features": graph.num_features,
        "density": density(graph.adjacency),
    }
    if graph.labels is not None:
        summary["num_clusters"] = graph.num_clusters
        summary["homophily"] = homophily(graph.adjacency, graph.labels)
        _, counts = np.unique(graph.labels, return_counts=True)
        summary["cluster_sizes"] = counts.tolist()
    return summary
