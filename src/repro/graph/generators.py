"""Synthetic attributed-graph generators.

The paper evaluates on public citation networks (Cora, Citeseer, Pubmed) and
air-traffic networks (USA, Europe, Brazil).  Those datasets cannot be
downloaded in this offline environment, so this module provides stochastic
block model (SBM) generators that preserve the properties the R-GAE
operators interact with:

* planted clusters of realistic (imbalanced) sizes,
* sparse topology with noisy inter-cluster links (source of
  under-segmentation / Feature Drift),
* poor intra-cluster connectivity (source of over-segmentation),
* class-correlated but noisy sparse binary features (citation networks) or
  no features at all (air-traffic networks use one-hot degree encodings),
* heavy-tailed degree distributions for the air-traffic surrogates
  (degree-corrected SBM).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import AttributedGraph


def _cluster_sizes(num_nodes: int, proportions: Sequence[float]) -> np.ndarray:
    """Turn cluster proportions into integer sizes that sum to ``num_nodes``."""
    proportions = np.asarray(proportions, dtype=np.float64)
    proportions = proportions / proportions.sum()
    sizes = np.floor(proportions * num_nodes).astype(int)
    remainder = num_nodes - sizes.sum()
    # Distribute the remainder to the largest clusters first.
    order = np.argsort(-proportions)
    for index in range(remainder):
        sizes[order[index % len(sizes)]] += 1
    return sizes


def stochastic_block_model(
    num_nodes: int,
    proportions: Sequence[float],
    p_intra: float,
    p_inter: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample an undirected SBM adjacency matrix and its label vector.

    Returns ``(adjacency, labels)`` where ``adjacency`` is binary symmetric
    with zero diagonal.
    """
    if not (0.0 <= p_inter <= p_intra <= 1.0):
        raise ValueError("expected 0 <= p_inter <= p_intra <= 1")
    sizes = _cluster_sizes(num_nodes, proportions)
    labels = np.repeat(np.arange(len(sizes)), sizes)
    same = labels[:, None] == labels[None, :]
    probs = np.where(same, p_intra, p_inter)
    upper = rng.random((num_nodes, num_nodes)) < probs
    upper = np.triu(upper, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    return adjacency, labels


def degree_corrected_sbm(
    num_nodes: int,
    proportions: Sequence[float],
    p_intra: float,
    p_inter: float,
    rng: np.random.Generator,
    degree_exponent: float = 2.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """SBM with heavy-tailed node propensities (hub structure).

    The air-traffic networks used in the paper have hub airports with very
    high degree; a degree-corrected SBM with Pareto-distributed propensities
    reproduces that structural-role heterogeneity, which matters because the
    air-traffic features are one-hot encodings of node degree.
    """
    sizes = _cluster_sizes(num_nodes, proportions)
    labels = np.repeat(np.arange(len(sizes)), sizes)
    propensity = rng.pareto(degree_exponent, size=num_nodes) + 1.0
    propensity = propensity / propensity.mean()
    same = labels[:, None] == labels[None, :]
    base = np.where(same, p_intra, p_inter)
    probs = np.clip(base * propensity[:, None] * propensity[None, :], 0.0, 1.0)
    upper = rng.random((num_nodes, num_nodes)) < probs
    upper = np.triu(upper, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    return adjacency, labels


def planted_partition_features(
    labels: np.ndarray,
    num_features: int,
    active_per_class: int,
    signal: float,
    noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sparse binary bag-of-words-like features correlated with the labels.

    Each class owns ``active_per_class`` "topic words"; a node activates each
    of its class words with probability ``signal`` and every other word with
    probability ``noise``.  The result mimics the sparse binary features of
    citation networks.
    """
    labels = np.asarray(labels)
    num_nodes = labels.shape[0]
    num_classes = int(labels.max()) + 1
    if active_per_class * num_classes > num_features:
        raise ValueError("num_features too small for the requested class vocabulary")
    features = (rng.random((num_nodes, num_features)) < noise).astype(np.float64)
    for klass in range(num_classes):
        members = np.flatnonzero(labels == klass)
        start = klass * active_per_class
        stop = start + active_per_class
        activations = rng.random((members.shape[0], active_per_class)) < signal
        features[np.ix_(members, np.arange(start, stop))] = np.maximum(
            features[np.ix_(members, np.arange(start, stop))], activations
        )
    # Guarantee no all-zero rows (every document has at least one word).
    empty = features.sum(axis=1) == 0
    if np.any(empty):
        cols = rng.integers(0, num_features, size=int(empty.sum()))
        features[np.flatnonzero(empty), cols] = 1.0
    return features


def attributed_sbm_graph(
    num_nodes: int,
    proportions: Sequence[float],
    p_intra: float,
    p_inter: float,
    num_features: int,
    active_per_class: int,
    signal: float,
    noise: float,
    seed: int,
    name: str = "attributed_sbm",
    degree_corrected: bool = False,
    degree_exponent: float = 2.5,
    features: str = "planted",
) -> AttributedGraph:
    """Build a full :class:`AttributedGraph` from SBM topology + features.

    ``features`` may be ``"planted"`` (class-correlated sparse binary
    features) or ``"degree_onehot"`` (the construction the paper uses for the
    attribute-free air-traffic networks).
    """
    rng = np.random.default_rng(seed)
    if degree_corrected:
        adjacency, labels = degree_corrected_sbm(
            num_nodes, proportions, p_intra, p_inter, rng, degree_exponent
        )
    else:
        adjacency, labels = stochastic_block_model(
            num_nodes, proportions, p_intra, p_inter, rng
        )
    if features == "planted":
        x = planted_partition_features(
            labels, num_features, active_per_class, signal, noise, rng
        )
    elif features == "degree_onehot":
        # Imported here to avoid a circular import at module load time.
        from repro.datasets.features import degree_one_hot_features

        x = degree_one_hot_features(adjacency, max_degree=num_features - 1)
    else:
        raise ValueError(f"unknown feature mode: {features!r}")
    graph = AttributedGraph(
        adjacency=adjacency,
        features=x,
        labels=labels,
        name=name,
        metadata={
            "num_clusters": len(list(proportions)),
            "p_intra": p_intra,
            "p_inter": p_inter,
            "seed": seed,
            "feature_mode": features,
            "degree_corrected": degree_corrected,
        },
    )
    return graph
