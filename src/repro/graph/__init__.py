"""Graph substrate: containers, normalisation, generators and graph edits."""

from repro.graph.graph import AttributedGraph
from repro.graph.sparse import (
    SparseAdjacency,
    as_sparse_adjacency,
    propagation_matrix,
)
from repro.graph.laplacian import (
    degree_vector,
    degree_matrix,
    normalize_adjacency,
    add_self_loops,
    graph_laplacian,
    laplacian_quadratic_form,
    laplacian_quadratic_form_dense,
)
from repro.graph.generators import (
    stochastic_block_model,
    degree_corrected_sbm,
    planted_partition_features,
    attributed_sbm_graph,
)
from repro.graph.ops import (
    add_random_edges,
    drop_random_edges,
    add_feature_noise,
    drop_random_features,
    edge_difference,
)
from repro.graph.stats import (
    edge_count,
    density,
    homophily,
    intra_cluster_edge_fraction,
    connected_components,
    star_subgraph_count,
)
from repro.graph.io import save_graph_npz, load_graph_npz

__all__ = [
    "AttributedGraph",
    "SparseAdjacency",
    "as_sparse_adjacency",
    "propagation_matrix",
    "laplacian_quadratic_form_dense",
    "degree_vector",
    "degree_matrix",
    "normalize_adjacency",
    "add_self_loops",
    "graph_laplacian",
    "laplacian_quadratic_form",
    "stochastic_block_model",
    "degree_corrected_sbm",
    "planted_partition_features",
    "attributed_sbm_graph",
    "add_random_edges",
    "drop_random_edges",
    "add_feature_noise",
    "drop_random_features",
    "edge_difference",
    "edge_count",
    "density",
    "homophily",
    "intra_cluster_edge_fraction",
    "connected_components",
    "star_subgraph_count",
    "save_graph_npz",
    "load_graph_npz",
]
