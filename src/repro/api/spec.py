"""Serializable run specifications: experiments as declarative data.

Every trial of the paper is fully described by *what* to run — a dataset,
a model, a variant (the base model D or its R- version), a seed, the
training budgets, any R- hyper-parameter overrides and the tracking
callbacks.  :class:`RunSpec` captures exactly that and round-trips to and
from plain dicts / JSON, so a Table-1 cell, an ablation row or a tracked
dynamics run is a small JSON document instead of bespoke runner code::

    {"dataset": "cora_sim", "model": "gmm_vgae", "variant": "rethink",
     "seed": 0, "rethink": {"overrides": {"alpha1": 0.7}},
     "callbacks": ["dynamics", {"name": "graph_snapshots", "every": 20}]}

``repro-run spec.json`` (see :mod:`repro.api.cli`) executes such a file;
:meth:`repro.api.Pipeline.from_spec` consumes the same structure
programmatically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Union

from repro.errors import SpecError, UnknownVariantError

#: the two trial variants: the original model D and its R- version.
VARIANTS = ("base", "rethink")


def _check_unknown_keys(data: Dict[str, Any], allowed, what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise SpecError(f"unknown {what} field(s): {', '.join(sorted(unknown))}")


def _coerce_int(value: Any, what: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise SpecError(f"{what} must be an integer, got {value!r}") from None


@dataclass
class DatasetSpec:
    """Which dataset to load (a name from the dataset registry)."""

    name: str
    seed: int = 0
    options: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Union[str, Dict[str, Any]]) -> "DatasetSpec":
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, dict):
            raise SpecError(f"dataset spec must be a name or a dict, got {data!r}")
        _check_unknown_keys(data, ("name", "seed", "options"), "dataset")
        if "name" not in data:
            raise SpecError("dataset spec requires a 'name'")
        return cls(
            name=str(data["name"]),
            seed=_coerce_int(data.get("seed", 0), "dataset seed"),
            options=dict(data.get("options", {})),
        )


@dataclass
class ModelSpec:
    """Which model to build (a name from the model registry) and its options."""

    name: str
    options: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Union[str, Dict[str, Any]]) -> "ModelSpec":
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, dict):
            raise SpecError(f"model spec must be a name or a dict, got {data!r}")
        _check_unknown_keys(data, ("name", "options"), "model")
        if "name" not in data:
            raise SpecError("model spec requires a 'name'")
        return cls(name=str(data["name"]), options=dict(data.get("options", {})))


@dataclass
class TrainingSpec:
    """Epoch budgets for the three training phases."""

    pretrain_epochs: int = 80
    clustering_epochs: int = 60
    rethink_epochs: int = 100

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainingSpec":
        if not isinstance(data, dict):
            raise SpecError(f"training spec must be a dict, got {data!r}")
        allowed = [f.name for f in fields(cls)]
        _check_unknown_keys(data, allowed, "training")
        return cls(**{key: _coerce_int(value, key) for key, value in data.items()})

    @classmethod
    def from_experiment_config(cls, config) -> "TrainingSpec":
        """Build from a legacy :class:`~repro.experiments.config.ExperimentConfig`."""
        return cls(
            pretrain_epochs=config.pretrain_epochs,
            clustering_epochs=config.clustering_epochs,
            rethink_epochs=config.rethink_epochs,
        )


@dataclass
class RethinkSpec:
    """How to configure the R- phase.

    With ``use_paper_hyperparameters=True`` the (α1, M1, M2) values come
    from the Appendix-C tables for the (dataset, model) pair
    (:func:`repro.experiments.config.rethink_hyperparameters`);
    ``overrides`` then overlays any :class:`~repro.core.rethink.RethinkConfig`
    field on top.  Unknown override names are rejected at spec-parse time.
    """

    overrides: Dict[str, Any] = field(default_factory=dict)
    use_paper_hyperparameters: bool = True

    def __post_init__(self) -> None:
        from repro.core.rethink import RethinkConfig

        allowed = {f.name for f in fields(RethinkConfig)}
        _check_unknown_keys(self.overrides, allowed, "rethink override")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RethinkSpec":
        if not isinstance(data, dict):
            raise SpecError(f"rethink spec must be a dict, got {data!r}")
        _check_unknown_keys(data, ("overrides", "use_paper_hyperparameters"), "rethink")
        return cls(
            overrides=dict(data.get("overrides", {})),
            use_paper_hyperparameters=bool(data.get("use_paper_hyperparameters", True)),
        )


@dataclass
class RunSpec:
    """A complete, serializable description of one training trial.

    ``callbacks`` holds declarative callback specs — registered names or
    ``{"name": ..., **kwargs}`` dicts — resolved by
    :func:`repro.api.callbacks.resolve_callbacks` at run time, so even a
    fully tracked dynamics run stays JSON-representable.
    """

    dataset: DatasetSpec
    model: ModelSpec
    variant: str = "rethink"
    seed: int = 0
    training: TrainingSpec = field(default_factory=TrainingSpec)
    rethink: RethinkSpec = field(default_factory=RethinkSpec)
    callbacks: List[Union[str, Dict[str, Any]]] = field(default_factory=list)
    tags: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise UnknownVariantError(self.variant)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; ``RunSpec.from_dict`` inverts it exactly."""
        return {
            "dataset": self.dataset.to_dict(),
            "model": self.model.to_dict(),
            "variant": self.variant,
            "seed": self.seed,
            "training": self.training.to_dict(),
            "rethink": self.rethink.to_dict(),
            "callbacks": list(self.callbacks),
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        if not isinstance(data, dict):
            raise SpecError(f"run spec must be a dict, got {data!r}")
        allowed = [f.name for f in fields(cls)]
        _check_unknown_keys(data, allowed, "run spec")
        for required in ("dataset", "model"):
            if required not in data:
                raise SpecError(f"run spec requires a {required!r} entry")
        return cls(
            dataset=DatasetSpec.from_dict(data["dataset"]),
            model=ModelSpec.from_dict(data["model"]),
            variant=str(data.get("variant", "rethink")),
            seed=_coerce_int(data.get("seed", 0), "seed"),
            training=TrainingSpec.from_dict(data.get("training", {})),
            rethink=RethinkSpec.from_dict(data.get("rethink", {})),
            callbacks=list(data.get("callbacks", [])),
            tags=dict(data.get("tags", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid JSON run spec: {error}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "RunSpec":
        """A copy with the given top-level fields replaced."""
        return replace(self, **changes)

    def store_key(self) -> str:
        """Stable artifact-store key of this trial.

        A SHA-256 over the canonical JSON form of the complete spec —
        dataset, model, variant, seed, budgets, overrides — so the same
        trial always maps to the same :class:`repro.store.ArtifactStore`
        entry, independent of dict ordering or process restarts.
        """
        from repro.store.keys import run_key

        return run_key(self.to_dict())

    def describe(self) -> str:
        """One-line human-readable summary of the trial."""
        prefix = "R-" if self.variant == "rethink" else ""
        return f"{prefix}{self.model.name.upper()} on {self.dataset.name} (seed {self.seed})"
