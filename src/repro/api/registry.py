"""One generic registry protocol for models, datasets, baselines and callbacks.

Before this module existed the code base carried three slightly different
registries (``models.registry``, ``datasets.registry``, ``baselines.registry``),
each a bare dict plus bespoke lookup functions.  :class:`Registry` unifies
them: a named, ordered mapping from entry name to factory, with

* decorator-style registration (``@REGISTRY.register("name", group="second")``),
* per-entry metadata that is queryable (``REGISTRY.names(group="second")``),
* uniform error reporting (:class:`~repro.errors.UnknownEntryError`, a
  ``KeyError`` subclass listing the available names).

A registry is a :class:`~collections.abc.Mapping`, so legacy code that
treated the old dicts as plain mappings (``name in BUILDERS``,
``BUILDERS[name]``, iteration) keeps working when the dict is replaced by a
``Registry`` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import UnknownEntryError


@dataclass
class RegistryEntry:
    """A registered factory plus its discoverable metadata."""

    name: str
    factory: Callable[..., Any]
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def description(self) -> str:
        """Human-readable description (metadata override, else the docstring)."""
        explicit = self.metadata.get("description")
        if explicit:
            return str(explicit)
        doc = getattr(self.factory, "__doc__", None) or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


class Registry(Mapping):
    """An ordered name → factory mapping with metadata and typed errors.

    Parameters
    ----------
    kind:
        What the registry holds ("model", "dataset", ...); used in error
        messages and introspection output.
    """

    def __init__(self, kind: str) -> None:
        self.kind = str(kind)
        self._entries: Dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: Optional[str] = None, **metadata) -> Callable:
        """Decorator registering a factory under ``name``.

        >>> MODELS = Registry("model")
        >>> @MODELS.register("gae", group="first")
        ... class GAE: ...

        Without an explicit name the factory's ``__name__`` (lower-cased)
        is used.
        """

        def decorator(factory: Callable) -> Callable:
            entry_name = name or factory.__name__.lower()
            self.add(entry_name, factory, **metadata)
            return factory

        return decorator

    def add(self, name: str, factory: Callable, **metadata) -> None:
        """Imperatively register ``factory`` under ``name``."""
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = RegistryEntry(name=name, factory=factory, metadata=dict(metadata))

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly useful in tests)."""
        self.entry(name)
        del self._entries[name]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """Full :class:`RegistryEntry` for ``name`` (typed error if unknown)."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(self.kind, name, self.names()) from None

    def get(self, name: str, default: Optional[Callable[..., Any]] = None):
        """The registered factory for ``name``, or ``default`` if unknown.

        Keeps :meth:`dict.get` semantics so the legacy ``*_BUILDERS``
        mappings remain drop-in compatible; use ``registry[name]`` or
        :meth:`entry` for a raising lookup.
        """
        try:
            return self.entry(name).factory
        except UnknownEntryError:
            return default

    def build(self, name: str, *args, **kwargs) -> Any:
        """Instantiate the entry: ``registry.build(name, ...)`` ≡ ``factory(...)``."""
        return self.entry(name).factory(*args, **kwargs)

    def metadata(self, name: str) -> Dict[str, Any]:
        """Copy of the metadata attached at registration time."""
        return dict(self.entry(name).metadata)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def names(self, **metadata_filters) -> List[str]:
        """Registered names in registration order, optionally filtered.

        ``names(group="second")`` returns only entries whose metadata
        matches every given key/value pair.
        """
        if not metadata_filters:
            return list(self._entries)
        return [
            name
            for name, entry in self._entries.items()
            if all(entry.metadata.get(key) == value for key, value in metadata_filters.items())
        ]

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Metadata (plus description) of every entry, for introspection."""
        return {
            name: {"description": entry.description, **entry.metadata}
            for name, entry in self._entries.items()
        }

    # ------------------------------------------------------------------
    # Mapping protocol (legacy dict-style access)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Callable[..., Any]:
        return self.entry(name).factory

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, entries={self.names()!r})"
