"""``repro-run``: execute a JSON :class:`~repro.api.spec.RunSpec` from the shell.

Usage::

    repro-run trial.json                # run the spec in trial.json
    repro-run -                         # read the spec from stdin
    repro-run trial.json --print-spec   # echo the normalised spec and exit
    repro-run trial.json --seeds 0 1 2 3 --jobs 4   # multi-seed, pooled
    repro-run trial.json --sampler cluster --batch-size 1024  # minibatch epochs

Multi-seed runs: pass ``--seeds``, or give the spec a JSON list as its
``"seed"`` field (``"seed": [0, 1, 2, 3]``).  ``--jobs N`` fans the seeds
out over ``N`` worker processes (``--jobs auto`` uses every core); the
per-seed results are bitwise identical to a serial ``--jobs 1`` run, only
the wall-clock time changes.

The exit status is 0 on success and 2 on a malformed spec, so the command
composes with shell pipelines and CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import ReproError, SpecError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run one (model, dataset, seed) trial described by a JSON RunSpec.",
    )
    parser.add_argument(
        "spec",
        help="path to a JSON run spec, or '-' to read the spec from stdin",
    )
    parser.add_argument(
        "--print-spec",
        action="store_true",
        help="print the normalised spec as JSON and exit without training",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result summary as JSON instead of human-readable text",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="run the spec once per seed (overrides the spec's seed field)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for multi-seed runs (an int, or 'auto' for "
        "every core); results are identical to --jobs 1",
    )
    minibatch = parser.add_argument_group(
        "minibatch training",
        "stream subgraph blocks instead of full-graph epochs (rethink "
        "trials only); overlays the spec's rethink overrides",
    )
    minibatch.add_argument(
        "--sampler",
        choices=("full", "neighbor", "cluster"),
        default=None,
        help="minibatch loader: 'cluster' (partition batches), 'neighbor' "
        "(fanout sampling) or 'full' (single batch, equals the legacy loop)",
    )
    minibatch.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help="nodes per batch (seeds for --sampler neighbor, target part "
        "size for --sampler cluster)",
    )
    minibatch.add_argument(
        "--fanout",
        type=int,
        default=None,
        metavar="F",
        help="neighbours sampled per node and hop (--sampler neighbor)",
    )
    minibatch.add_argument(
        "--num-hops",
        type=int,
        default=None,
        metavar="H",
        help="neighbourhood expansion rounds (--sampler neighbor)",
    )
    return parser


def _apply_minibatch_flags(pipeline, spec, args):
    """Overlay --sampler / --batch-size / --fanout / --num-hops on the spec."""
    overrides = {}
    if args.sampler is not None:
        overrides["sampler"] = args.sampler
    for name, value in (
        ("batch_size", args.batch_size),
        ("fanout", args.fanout),
        ("num_hops", args.num_hops),
    ):
        if value is not None:
            overrides[name] = value
    if not overrides:
        return pipeline, spec
    has_sampler = args.sampler is not None or "sampler" in spec.rethink.overrides
    if spec.variant != "rethink" or not has_sampler:
        raise SpecError(
            "--batch-size/--fanout/--num-hops/--sampler configure minibatch "
            "training, which needs a rethink trial with a sampler (pass "
            '--sampler or put "sampler" in the spec\'s rethink overrides)'
        )
    pipeline = pipeline.rethink(**overrides)
    return pipeline, pipeline.spec()


def _parse_jobs(value: str):
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise SpecError(f"--jobs must be an integer or 'auto', got {value!r}") from None
    if jobs < 1:
        raise SpecError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def _load_spec_document(text: str):
    """Parse the JSON document, extracting a ``"seed": [...]`` list if any."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecError(f"invalid JSON run spec: {error}") from None
    if not isinstance(data, dict):
        raise SpecError(f"run spec must be a JSON object, got {type(data).__name__}")
    seeds: Optional[List[int]] = None
    if isinstance(data.get("seed"), list):
        seed_list = data["seed"]
        if not seed_list:
            raise SpecError("the spec's seed list must not be empty")
        try:
            seeds = [int(seed) for seed in seed_list]
        except (TypeError, ValueError):
            raise SpecError(
                f"the spec's seed list must contain integers, got {seed_list!r}"
            ) from None
        data = dict(data)
        data["seed"] = seeds[0]
    return data, seeds


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.api.pipeline import Pipeline

    args = build_parser().parse_args(argv)
    try:
        jobs = _parse_jobs(args.jobs)
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec, "r", encoding="utf-8") as handle:
                text = handle.read()
        data, spec_seeds = _load_spec_document(text)
        pipeline = Pipeline.from_spec(data)
        spec = pipeline.spec()
        pipeline, spec = _apply_minibatch_flags(pipeline, spec, args)
    except (OSError, ReproError) as error:
        print(f"repro-run: {error}", file=sys.stderr)
        return 2

    # --seeds wins over a seed list in the spec; a plain spec runs its own seed.
    seeds = args.seeds if args.seeds is not None else spec_seeds
    multi_seed = seeds is not None
    if not multi_seed and jobs != 1:
        print(
            "repro-run: --jobs requires a multi-seed run (pass --seeds or "
            'give the spec a "seed" list)',
            file=sys.stderr,
        )
        return 2

    if args.print_spec:
        print(spec.to_json())
        return 0

    try:
        if seeds is None:
            print(f"repro-run: {spec.describe()}", file=sys.stderr)
            results = [pipeline.run()]
            seeds = [spec.seed]
        else:
            print(
                f"repro-run: {spec.describe()} over seeds {seeds} "
                f"(jobs={jobs})",
                file=sys.stderr,
            )
            results = pipeline.run_trials(seeds, jobs=jobs)
    except ReproError as error:
        # Unknown dataset / model / callback names only surface when the
        # registries are consulted at run time; report them like any other
        # bad-spec error instead of a traceback.
        print(f"repro-run: {error}", file=sys.stderr)
        return 2

    if args.json:
        summaries = [
            {"seed": seed, **result.summary()} for seed, result in zip(seeds, results)
        ]
        # Multi-seed mode always emits an array (even for one seed) so
        # consumers parse one shape; a plain run keeps the historical object.
        print(json.dumps(summaries if multi_seed else summaries[0], indent=2))
    else:
        for seed, result in zip(seeds, results):
            described = spec.replace(seed=seed).describe()
            print(f"{described}: {result.report}")
            print(f"runtime: {result.runtime_seconds:.2f}s")
            if result.history is not None:
                print(
                    f"epochs run: {result.history.epochs_run} "
                    f"(converged: {result.history.converged})"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
